//! The federation: a shared directory plus per-shard worker pipelines, with
//! [`Cluster`] as the single-caller façade.
//!
//! The concurrent machinery lives in the crate-private `Core`: a
//! [`Directory`] of placements/membership taken by `&self`, and one
//! persistent worker thread per shard draining an MPSC command queue (the
//! `worker` module). Any number of [`Gateway`] handles —
//! each a clone holding the same `Arc<Core>` — submit floor requests
//! concurrently; requests are translated to the owning shard's dense local
//! ids, queued to that shard's worker, and decisions stream back to the
//! submitting gateway.
//!
//! [`Cluster`] wraps one default gateway behind the original single-threaded
//! API so pre-refactor call sites migrate mechanically: `submit` + `flush`
//! still return decisions sorted by submission order, `request` still
//! round-trips synchronously. `flush` and `flush_parallel` are now the same
//! operation — every shard always works in parallel behind its queue — and
//! both merely await the decisions of this façade's outstanding submissions.

use std::collections::BTreeMap;
use std::sync::mpsc::channel;
use std::sync::{Arc, RwLock};

use dmps_floor::arbiter::ArbiterStats;
use dmps_floor::snapshot::EventOutcome;
use dmps_floor::{
    ArbiterEvent, ArbitrationOutcome, FcmMode, FloorArbiter, FloorRequest, FloorToken, GroupId,
    InvitationStatus, Member, MemberId, RequestKind, Resource,
};

use crate::directory::{ClusterInvitation, Directory, GroupPlacement, MemberRecord};
use crate::error::{ClusterError, Result};
use crate::gateway::Gateway;
use crate::instrument::ClusterTelemetry;
use crate::queue::{OverloadPolicy, QueueStats};

use crate::ring::{HashRing, ShardId};
use crate::session::{GroupSession, SessionDecision, SessionEvent, SessionOp, SessionOutcome};
use crate::shard::{CorruptionTarget, GlobalGroupId, GlobalMemberId, Shard, ShardView};
use crate::worker::{ReplyRegistry, ReplyTo, ShardCommand, ShardWorker};
use dmps_telemetry::Stage as TraceStage;
use dmps_telemetry::{MetricsRegistry, TraceSpan};

/// Sizing, durability and backpressure knobs of a cluster.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Number of shards.
    pub shards: usize,
    /// Virtual nodes per shard on the consistent-hash ring.
    pub vnodes: usize,
    /// Snapshot cadence per shard (events between snapshots; 0 disables).
    /// Used as the fallback cadence when [`ClusterConfig::snapshot_every_bytes`]
    /// is 0.
    pub snapshot_every: u64,
    /// Byte-driven checkpoint cadence: a shard checkpoints once the events
    /// committed since its last checkpoint exceed this many (approximate)
    /// bytes. 0 falls back to the event-count cadence of
    /// [`ClusterConfig::snapshot_every`]. Byte cadence tracks durability
    /// *work* rather than op count, so payload-heavy and payload-light
    /// workloads checkpoint at comparable cost.
    pub snapshot_every_bytes: u64,
    /// Maximum differential checkpoints chained on one full snapshot base
    /// before the next checkpoint is forced full. 0 makes every checkpoint a
    /// full snapshot (the legacy stop-the-world behavior). Longer chains
    /// shrink the steady-state checkpoint pause (each delta ships only state
    /// touched since the last checkpoint) at the cost of a longer base+chain
    /// fold at recovery.
    pub snapshot_chain: u64,
    /// Per-shard dedup window: how many recent decisions a shard remembers
    /// to answer gateway retries idempotently (0 disables dedup).
    pub dedup_window: usize,
    /// Capacity of each shard's bounded ingest queue, in commands (0 means
    /// effectively unbounded). Control-plane commands — crash/recover,
    /// handoff phases, inspection — are exempt from the bound so a storm
    /// cannot starve them.
    pub queue_capacity: usize,
    /// What a submission does when the owning shard's ingest queue is full:
    /// [`OverloadPolicy::Block`] throttles the submitter (lossless),
    /// [`OverloadPolicy::Shed`] answers it with
    /// [`ClusterError::Overloaded`] on its decision stream.
    pub overload: OverloadPolicy,
    /// How many commands a shard worker drains — and group-commits as one
    /// log append with one snapshot-cadence check — per wakeup (minimum 1).
    pub ingest_batch: usize,
    /// How many request ids a gateway leases from the shared directory
    /// counter at a time (minimum 1). Larger leases take the counter off
    /// the submit hot path at the cost of sparser id spaces.
    pub seq_lease: u64,
    /// End-to-end pipeline tracing rate: one in every `trace_sampling`
    /// submissions carries a [`crate::telemetry::TraceSpan`]
    /// stamped at each pipeline stage
    /// (`submitted → enqueued → drained → committed → replied`) and retained
    /// in [`Cluster::recent_spans`]. 0 (the default) disables tracing; the
    /// unsampled hot path then pays a single branch per submission.
    pub trace_sampling: u64,
    /// Followers per shard. 0 (the default) runs unreplicated — the local
    /// group commit is the durability point, exactly the pre-replication
    /// behavior. With `N > 0` followers each batch needs a write quorum of
    /// `(N + 1) / 2 + 1` copies (counting the leader) before its decisions
    /// release, failover promotes the most caught-up follower instead of
    /// replaying the full log, and `session_view`-style reads are served
    /// from followers under a read-your-writes bound.
    pub replicas: usize,
    /// The simulated link between a shard leader and each of its followers
    /// (defaults to [`dmps_simnet::Link::replica`], an intra-datacenter
    /// profile). Loss on this link is healed by leader retransmission.
    pub replica_link: dmps_simnet::Link,
    /// Maximum group-committed batches a worker keeps in flight awaiting
    /// quorum acks before it stalls on the oldest (minimum 1). This is the
    /// quorum pipeline's depth: higher tolerates more ack latency before
    /// ingest stalls, at the cost of decision-release latency under loss.
    pub replica_pipeline: usize,
}

impl ClusterConfig {
    /// A config with `shards` shards and the default ring/durability/
    /// backpressure knobs.
    pub fn with_shards(shards: usize) -> Self {
        ClusterConfig {
            shards,
            vnodes: 64,
            snapshot_every: 256,
            snapshot_every_bytes: 256 * 1024,
            snapshot_chain: 24,
            dedup_window: 1024,
            queue_capacity: 4096,
            overload: OverloadPolicy::Block,
            ingest_batch: 64,
            seq_lease: 64,
            trace_sampling: 0,
            replicas: 0,
            replica_link: dmps_simnet::Link::replica(),
            replica_pipeline: 4,
        }
    }

    /// Builder-style replica-count override (keeps the default link and
    /// pipeline depth).
    pub fn with_replicas(mut self, replicas: usize) -> Self {
        self.replicas = replicas;
        self
    }
}

/// A floor request addressed with cluster-wide ids.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GlobalRequest {
    /// The group the request concerns.
    pub group: GlobalGroupId,
    /// The requesting member.
    pub member: GlobalMemberId,
    /// What the member wants to do.
    pub kind: GlobalRequestKind,
}

impl GlobalRequest {
    /// A speak request.
    pub fn speak(group: GlobalGroupId, member: GlobalMemberId) -> Self {
        GlobalRequest {
            group,
            member,
            kind: GlobalRequestKind::Speak,
        }
    }

    /// A release-floor request.
    pub fn release_floor(group: GlobalGroupId, member: GlobalMemberId) -> Self {
        GlobalRequest {
            group,
            member,
            kind: GlobalRequestKind::ReleaseFloor,
        }
    }

    /// A pass-floor request.
    pub fn pass_floor(group: GlobalGroupId, member: GlobalMemberId, to: GlobalMemberId) -> Self {
        GlobalRequest {
            group,
            member,
            kind: GlobalRequestKind::PassFloor { to },
        }
    }

    /// A direct-contact request.
    pub fn direct_contact(
        group: GlobalGroupId,
        member: GlobalMemberId,
        to: GlobalMemberId,
    ) -> Self {
        GlobalRequest {
            group,
            member,
            kind: GlobalRequestKind::DirectContact { to },
        }
    }
}

/// The request kinds, addressed with cluster-wide member ids.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GlobalRequestKind {
    /// Deliver under the group's mode.
    Speak,
    /// Open a direct-contact channel.
    DirectContact {
        /// The destination member.
        to: GlobalMemberId,
    },
    /// Release the floor token.
    ReleaseFloor,
    /// Pass the floor token.
    PassFloor {
        /// The member to pass to.
        to: GlobalMemberId,
    },
}

impl GlobalRequestKind {
    /// Stable lowercase label used in metric names and trace spans.
    pub fn label(&self) -> &'static str {
        match self {
            GlobalRequestKind::Speak => "speak",
            GlobalRequestKind::DirectContact { .. } => "direct_contact",
            GlobalRequestKind::ReleaseFloor => "release_floor",
            GlobalRequestKind::PassFloor { .. } => "pass_floor",
        }
    }
}

/// The arbitration decision for one submitted request.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// The request id ([`Gateway::submit`](crate::Gateway::submit) /
    /// [`Cluster::submit`] sequence number).
    pub seq: u64,
    /// The group the request addressed.
    pub group: GlobalGroupId,
    /// The outcome, or the routing/shard error that prevented arbitration.
    /// The outcome is shared (`Arc`) with the owning shard's dedup journal:
    /// recording and replaying a decision never deep-copies its payload.
    pub outcome: Result<Arc<ArbitrationOutcome>>,
    /// Whether the decision was answered from the shard's dedup window (a
    /// retry of an already-applied request) rather than freshly arbitrated.
    pub replayed: bool,
    /// The shard that answered, or `None` when routing failed before a shard
    /// was resolved (unknown group / member).
    pub shard: Option<ShardId>,
    /// The shard log position this decision was (quorum-)committed at — the
    /// client's read-your-writes bound: a follower may serve its reads of
    /// this shard once its applied position reaches this. `0` means the
    /// decision carries no durability information (a routing error or shed).
    pub commit: u64,
    /// The leader epoch under which this decision quorum-committed. `0`
    /// means the decision carries no fencing information — an unreplicated
    /// shard, a routing error, or a shed. Two successful decisions for the
    /// same shard with different epochs straddle a failover.
    pub epoch: u64,
}

/// What a rebalancing pass ([`Cluster::rebalance_idle`] /
/// [`Cluster::rebalance_active`]) did: which groups moved and which are
/// pinned for now.
///
/// `rebalance_idle` defers every floor-active group; `rebalance_active`
/// drains exactly that list by migrating active groups through the two-phase
/// live handoff, so on a healthy cluster its `deferred` comes back empty:
///
/// ```
/// use dmps_cluster::{Cluster, ClusterConfig, GlobalRequest};
/// use dmps_floor::{FcmMode, Member, Role};
///
/// let mut cluster = Cluster::new(ClusterConfig::with_shards(2));
/// let mut busy = Vec::new();
/// for g in 0..16 {
///     let gid = cluster.create_group(format!("g{g}"), FcmMode::EqualControl).unwrap();
///     let m = cluster.register_member(Member::new(format!("m{g}"), Role::Chair));
///     cluster.join_group(gid, m).unwrap();
///     // Every group holds its token, so none of them is idle.
///     assert!(cluster.request(GlobalRequest::speak(gid, m)).unwrap().is_granted());
///     busy.push(gid);
/// }
/// cluster.add_shard();
/// let idle_pass = cluster.rebalance_idle().unwrap();
/// assert!(idle_pass.migrated.is_empty(), "every group is token-pinned");
/// let live_pass = cluster.rebalance_active().unwrap();
/// assert_eq!(live_pass.migrated, idle_pass.deferred, "the handoff drains the deferred list");
/// assert!(live_pass.deferred.is_empty());
/// cluster.check_invariants().unwrap();
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RebalanceReport {
    /// Groups migrated to their new ring placement.
    pub migrated: Vec<GlobalGroupId>,
    /// Groups whose ring placement changed but which could not move in this
    /// pass. For [`Cluster::rebalance_idle`] that is every floor-active
    /// group (token held or requesters queued) — drain them with
    /// [`Cluster::rebalance_active`], which migrates live floor state
    /// through the two-phase handoff. For `rebalance_active` itself the list
    /// only holds groups whose source or target shard is down (or which are
    /// already mid-handoff); retry once the shard recovers.
    pub deferred: Vec<GlobalGroupId>,
}

/// Phase-1 output of a live group handoff: the frozen group's complete
/// exported state plus the routing facts the commit/abort phases need.
///
/// Produced by [`Cluster::handoff_prepare`], consumed by exactly one of
/// [`Cluster::handoff_commit`] (install on the destination, flip the
/// directory, retire the source copy) or [`Cluster::handoff_abort`]
/// (unfreeze the source and resume serving there). While a ticket is
/// outstanding, streamed submissions for the group are parked at the
/// gateways and re-driven after the commit or abort; synchronous requests
/// fail fast with [`ClusterError::GroupFrozen`].
///
/// Deliberately neither `Clone` nor re-issuable: the by-value
/// commit/abort signatures make the type system enforce that each
/// prepared handoff is resolved exactly once — committing a stale copy
/// after an abort would install a pre-abort export over state the source
/// has since mutated.
#[derive(Debug)]
pub struct HandoffTicket {
    group: GlobalGroupId,
    source: ShardId,
    source_local: GroupId,
    target: ShardId,
    parent: Option<GlobalGroupId>,
    name: String,
    mode: FcmMode,
    roster: Vec<GlobalMemberId>,
    chair: Option<GlobalMemberId>,
    holder: Option<GlobalMemberId>,
    queue: Vec<GlobalMemberId>,
    grants: u64,
    content: GroupSession,
    floor_journal: Vec<(u64, Arc<ArbitrationOutcome>)>,
    session_journal: Vec<(u64, Arc<SessionOutcome>)>,
    pinned_seq: u64,
}

impl HandoffTicket {
    /// The group being handed off.
    pub fn group(&self) -> GlobalGroupId {
        self.group
    }

    /// The shard the group is leaving.
    pub fn source(&self) -> ShardId {
        self.source
    }

    /// The shard the group is moving to.
    pub fn target(&self) -> ShardId {
        self.target
    }

    /// The current token holder at freeze time, if any.
    pub fn token_holder(&self) -> Option<GlobalMemberId> {
        self.holder
    }

    /// The token's pending-request queue at freeze time, in FIFO order.
    pub fn token_queue(&self) -> &[GlobalMemberId] {
        &self.queue
    }

    /// The source log position the export covers (every earlier event is
    /// reflected in the exported state; the freeze guarantees no later event
    /// touches the group before commit or abort).
    pub fn pinned_seq(&self) -> u64 {
        self.pinned_seq
    }
}

/// A submission that arrived for a frozen group: it waits out the handoff at
/// the routing layer and is re-driven through the normal gateway path after
/// the commit (toward the new owner) or abort (back to the source).
#[derive(Debug)]
enum ParkedOp {
    Floor {
        seq: u64,
        request: GlobalRequest,
        reply: ReplyTo<Decision>,
    },
    Session {
        seq: u64,
        op: SessionOp,
        reply: ReplyTo<SessionDecision>,
    },
}

/// Position of `member` in `group`'s floor-token line on an arbiter:
/// `Some(0)` = holds the floor, `Some(n)` = waits at position `n` (1 = next),
/// `None` = neither holding nor queued. Shared by the leader and follower
/// read paths so both answer identically.
fn queue_position_in(
    arbiter: &FloorArbiter,
    group: GroupId,
    member: MemberId,
) -> Result<Option<usize>> {
    let token = arbiter.token(group)?;
    if token.holder() == Some(member) {
        return Ok(Some(0));
    }
    Ok(token.queue().position(|m| m == member).map(|i| i + 1))
}

/// The concurrent heart of the control plane: the shared [`Directory`] and
/// the per-shard worker queues. Shared via `Arc` by every [`Gateway`] and the
/// [`Cluster`] façade.
#[derive(Debug)]
pub(crate) struct Core {
    config: ClusterConfig,
    directory: Directory,
    /// Gateway reply channels, registered once per gateway; commands carry a
    /// small handle instead of a cloned `Sender`. Shared with every worker.
    registry: Arc<ReplyRegistry>,
    workers: RwLock<Vec<ShardWorker>>,
    /// Groups frozen by an in-flight live handoff, each with the streamed
    /// submissions that arrived during its frozen window. Presence of the
    /// key is the routing-level freeze; the ops are re-driven through the
    /// normal submit path when the handoff commits or aborts.
    ///
    /// An `RwLock` on purpose: the submit paths hold a *read* guard across
    /// the worker-queue send (readers never contend with each other, so
    /// multi-gateway ingest keeps scaling), while `freeze_routing` takes the
    /// *write* lock — which therefore cannot be acquired until every
    /// submission that passed the not-frozen check has finished enqueueing.
    /// That ordering is what makes the freeze race-free: a racing submission
    /// either parks, or is already in the worker queue ahead of the prepare
    /// command and is reflected in the export.
    parked: RwLock<BTreeMap<GlobalGroupId, Vec<ParkedOp>>>,
    /// Cluster-wide metrics registry, span sampler and span log, shared with
    /// every gateway and worker (see the `instrument` module for the metric
    /// namespace).
    telemetry: ClusterTelemetry,
}

impl Core {
    pub(crate) fn new(config: ClusterConfig) -> Self {
        let ring = HashRing::new(config.shards, config.vnodes);
        let registry = Arc::new(ReplyRegistry::default());
        let telemetry = ClusterTelemetry::new(config.trace_sampling);
        let workers = (0..config.shards)
            .map(|i| {
                let mut shard = Shard::new(ShardId(i), config.snapshot_every, config.dedup_window);
                shard.set_snapshot_policy(config.snapshot_every_bytes, config.snapshot_chain);
                shard.set_metrics(telemetry.shard(i));
                ShardWorker::spawn(
                    shard,
                    registry.clone(),
                    config.queue_capacity,
                    config.ingest_batch,
                    telemetry.worker(i),
                    config.replicas,
                    config.replica_link,
                    config.replica_pipeline,
                    telemetry.replica(i),
                )
            })
            .collect();
        Core {
            config,
            directory: Directory::new(ring),
            registry,
            workers: RwLock::new(workers),
            parked: RwLock::new(BTreeMap::new()),
            telemetry,
        }
    }

    /// The shared telemetry state (metrics registry, span sampler, span
    /// log).
    pub(crate) fn telemetry(&self) -> &ClusterTelemetry {
        &self.telemetry
    }

    pub(crate) fn directory(&self) -> &Directory {
        &self.directory
    }

    pub(crate) fn config(&self) -> &ClusterConfig {
        &self.config
    }

    pub(crate) fn registry(&self) -> &Arc<ReplyRegistry> {
        &self.registry
    }

    /// Occupancy statistics of one shard's bounded ingest queue.
    ///
    /// # Panics
    ///
    /// Panics for an out-of-range id (shard ids come from this cluster).
    pub(crate) fn queue_stats(&self, shard: ShardId) -> QueueStats {
        let workers = self.workers.read().expect("workers lock");
        workers
            .get(shard.0)
            .unwrap_or_else(|| panic!("shard {shard} out of range"))
            .stats()
    }

    /// Restarts the peak-occupancy window of one shard's ingest queue.
    ///
    /// # Panics
    ///
    /// Panics for an out-of-range id (shard ids come from this cluster).
    pub(crate) fn reset_queue_peak(&self, shard: ShardId) {
        let workers = self.workers.read().expect("workers lock");
        workers
            .get(shard.0)
            .unwrap_or_else(|| panic!("shard {shard} out of range"))
            .reset_peak();
    }

    /// Answers a floor submission on its reply route without involving a
    /// shard — the path for routing errors and shed submissions.
    fn answer_floor(&self, reply: &ReplyTo<Decision>, decision: Decision) {
        match reply {
            ReplyTo::Gateway(handle) => self.registry.send_decisions(*handle, vec![decision]),
            ReplyTo::Direct(tx) => {
                let _ = tx.send(decision);
            }
        }
    }

    /// Answers a session submission on its reply route without involving a
    /// shard.
    fn answer_session(&self, reply: &ReplyTo<SessionDecision>, decision: SessionDecision) {
        match reply {
            ReplyTo::Gateway(handle) => {
                self.registry
                    .send_session_decisions(*handle, vec![decision]);
            }
            ReplyTo::Direct(tx) => {
                let _ = tx.send(decision);
            }
        }
    }

    pub(crate) fn shard_count(&self) -> usize {
        self.workers.read().expect("workers lock").len()
    }

    /// Runs `f` on the worker thread owning `shard` and returns its result.
    ///
    /// # Panics
    ///
    /// Panics for an out-of-range id (shard ids come from this cluster).
    pub(crate) fn with_shard<R: Send + 'static>(
        &self,
        shard: ShardId,
        f: impl FnOnce(&mut Shard) -> R + Send + 'static,
    ) -> R {
        let (tx, rx) = channel();
        {
            let workers = self.workers.read().expect("workers lock");
            let worker = workers
                .get(shard.0)
                .unwrap_or_else(|| panic!("shard {shard} out of range"));
            // Control commands are exempt from the ingest bound: a saturated
            // queue must never starve (or deadlock) the control plane.
            worker.send_control(ShardCommand::With(Box::new(move |s, _| {
                let _ = tx.send(f(s));
            })));
        }
        rx.recv().expect("shard worker answers")
    }

    /// Like [`Core::with_shard`], but the closure also gets the shard's
    /// replica set — the promotion path needs both halves.
    pub(crate) fn with_shard_replicas<R: Send + 'static>(
        &self,
        shard: ShardId,
        f: impl FnOnce(&mut Shard, &mut crate::replication::ReplicaSet) -> R + Send + 'static,
    ) -> R {
        let (tx, rx) = channel();
        {
            let workers = self.workers.read().expect("workers lock");
            let worker = workers
                .get(shard.0)
                .unwrap_or_else(|| panic!("shard {shard} out of range"));
            worker.send_control(ShardCommand::With(Box::new(move |s, r| {
                let _ = tx.send(f(s, r));
            })));
        }
        rx.recv().expect("shard worker answers")
    }

    /// Like [`Core::with_shard_replicas`], but through the **non-barrier**
    /// [`ShardCommand::Fault`] path: the closure runs with the pipeline left
    /// exactly as it is — batches still parked mid-quorum-write — which is
    /// what lets an injected partition or corruption land *inside* a quorum
    /// write instead of between two fully settled batches.
    pub(crate) fn with_shard_fault<R: Send + 'static>(
        &self,
        shard: ShardId,
        f: impl FnOnce(&mut Shard, &mut crate::replication::ReplicaSet) -> R + Send + 'static,
    ) -> R {
        let (tx, rx) = channel();
        {
            let workers = self.workers.read().expect("workers lock");
            let worker = workers
                .get(shard.0)
                .unwrap_or_else(|| panic!("shard {shard} out of range"));
            worker.send_control(ShardCommand::Fault(Box::new(move |s, r| {
                let _ = tx.send(f(s, r));
            })));
        }
        rx.recv().expect("shard worker answers")
    }

    /// Translates a global request to the owning shard's local ids.
    fn translate(&self, request: &GlobalRequest) -> Result<(GroupPlacement, FloorRequest)> {
        let placement = self.directory.placement(request.group)?;
        Ok((placement, self.localize(request, placement)?))
    }

    /// Translates a request whose group placement is already resolved — the
    /// vectored path memoizes placements per batch so consecutive requests
    /// against the same group pay one directory lookup, not one each.
    fn localize(&self, request: &GlobalRequest, placement: GroupPlacement) -> Result<FloorRequest> {
        let member = self
            .directory
            .local_member(request.member, placement.shard)?;
        let kind = match request.kind {
            GlobalRequestKind::Speak => RequestKind::Speak,
            GlobalRequestKind::ReleaseFloor => RequestKind::ReleaseFloor,
            GlobalRequestKind::PassFloor { to } => RequestKind::PassFloor {
                to: self.directory.local_member(to, placement.shard)?,
            },
            GlobalRequestKind::DirectContact { to } => RequestKind::DirectContact {
                to: self.directory.local_member(to, placement.shard)?,
            },
        };
        Ok(FloorRequest {
            group: placement.local,
            member,
            kind,
        })
    }

    /// Whether the group is frozen by an in-flight handoff at the routing
    /// layer.
    fn is_routing_frozen(&self, group: GlobalGroupId) -> bool {
        self.parked
            .read()
            .expect("parking lot")
            .contains_key(&group)
    }

    /// Routes a request to its shard's bounded queue under the given request
    /// id; the decision will stream to `reply`. A request for a group frozen
    /// by an in-flight handoff is parked and re-driven (still toward
    /// `reply`) after the handoff commits or aborts. When the queue is full,
    /// the configured [`OverloadPolicy`] decides: `Block` waits for space
    /// (lossless backpressure), `Shed` answers the submission with
    /// [`ClusterError::Overloaded`] on its reply route — nothing is ever
    /// dropped silently.
    ///
    /// The routing happens under the parking lot's read guard: a concurrent
    /// `freeze_routing` (write lock) cannot interleave between the
    /// not-frozen check and the worker-queue send, so every accepted
    /// submission either parks or lands ahead of the handoff's prepare
    /// command — never behind the freeze where it would bounce with
    /// [`ClusterError::GroupFrozen`]. (Holding the read guard across a
    /// `Block` wait is deadlock-free: the worker draining the queue never
    /// takes routing locks.)
    pub(crate) fn submit_as(
        &self,
        seq: u64,
        request: GlobalRequest,
        reply: ReplyTo<Decision>,
    ) -> Result<()> {
        // Sampled 1-in-N: almost every submission skips straight past this.
        let mut span = self.telemetry.begin_span(seq, request.kind.label());
        if let (Some(span), ReplyTo::Gateway(handle)) = (&mut span, &reply) {
            span.set_gateway(handle.index());
        }
        loop {
            {
                let parked = self.parked.read().expect("parking lot");
                if !parked.contains_key(&request.group) {
                    let (placement, local) = self.translate(&request)?;
                    let workers = self.workers.read().expect("workers lock");
                    if let Some(span) = &mut span {
                        // Under `Block` the push below may wait for queue
                        // space; that wait shows up in the enqueued→drained
                        // interval (it is all time spent waiting for the
                        // shard).
                        span.stamp(TraceStage::Enqueued);
                    }
                    let command = ShardCommand::Request {
                        seq,
                        group: request.group,
                        request: local,
                        reply,
                        span: span.take(),
                    };
                    if let Err(ShardCommand::Request { reply, .. }) =
                        workers[placement.shard.0].push_ingest(command, self.config.overload)
                    {
                        self.telemetry.sheds.incr();
                        self.answer_floor(
                            &reply,
                            Decision {
                                seq,
                                group: request.group,
                                outcome: Err(ClusterError::Overloaded(placement.shard)),
                                replayed: false,
                                shard: Some(placement.shard),
                                commit: 0,
                                epoch: 0,
                            },
                        );
                    }
                    return Ok(());
                }
            }
            let mut parked = self.parked.write().expect("parking lot");
            if let Some(waiting) = parked.get_mut(&request.group) {
                // The span (if any) does not wait out the handoff with the
                // op; a re-driven submission is traced as unsampled.
                self.telemetry.parked.incr();
                waiting.push(ParkedOp::Floor {
                    seq,
                    request,
                    reply,
                });
                return Ok(());
            }
            // Unfrozen between the two lock acquisitions: retry the send.
        }
    }

    /// Synchronously arbitrates under the given request id, returning the
    /// outcome and whether it was replayed from the dedup window.
    ///
    /// Unlike the streaming path, a frozen group fails fast with
    /// [`ClusterError::GroupFrozen`] instead of parking — a synchronous
    /// caller blocked on a parked decision could be the very thread that has
    /// to finish the handoff. The fail-fast is best-effort: a request that
    /// races the freeze itself may instead park and block until the handoff
    /// resolves, which is safe (the coordinator is necessarily another
    /// thread in that interleaving).
    /// Synchronous arbitration returning the whole released [`Decision`], so
    /// callers that track read-your-writes bounds (the gateways) can observe
    /// its [`Decision::commit`] position even when the outcome is an error.
    pub(crate) fn request_raw(&self, seq: u64, request: GlobalRequest) -> Result<Decision> {
        if self.is_routing_frozen(request.group) {
            return Err(ClusterError::GroupFrozen(request.group));
        }
        let (tx, rx) = channel();
        self.submit_as(seq, request, ReplyTo::Direct(tx))?;
        rx.recv().map_err(|_| ClusterError::Disconnected)
    }

    // ----- session operations ----------------------------------------------

    /// Translates a session operation to the owning shard's local ids.
    fn translate_session(&self, op: &SessionOp) -> Result<(GroupPlacement, SessionEvent)> {
        let placement = self.directory.placement(op.group)?;
        let local_from = self.directory.local_member(op.from, placement.shard)?;
        Ok((
            placement,
            SessionEvent {
                group: op.group,
                local_group: placement.local,
                from: op.from,
                local_from,
                kind: op.kind.clone(),
            },
        ))
    }

    /// Routes a session operation to its shard's bounded queue under the
    /// given request id; the decision will stream to `reply`. Operations for
    /// a frozen group are parked exactly like floor requests, with the same
    /// read-guard-across-send freedom from the check/enqueue race; a full
    /// queue blocks or sheds per the configured [`OverloadPolicy`], exactly
    /// like [`Core::submit_as`].
    pub(crate) fn submit_session_as(
        &self,
        seq: u64,
        op: SessionOp,
        reply: ReplyTo<SessionDecision>,
    ) -> Result<()> {
        let mut span = self.telemetry.begin_span(seq, op.kind.label());
        if let (Some(span), ReplyTo::Gateway(handle)) = (&mut span, &reply) {
            span.set_gateway(handle.index());
        }
        loop {
            {
                let parked = self.parked.read().expect("parking lot");
                if !parked.contains_key(&op.group) {
                    let (placement, event) = self.translate_session(&op)?;
                    let workers = self.workers.read().expect("workers lock");
                    if let Some(span) = &mut span {
                        span.stamp(TraceStage::Enqueued);
                    }
                    let command = ShardCommand::Session {
                        seq,
                        event,
                        reply,
                        span: span.take(),
                    };
                    if let Err(ShardCommand::Session { reply, .. }) =
                        workers[placement.shard.0].push_ingest(command, self.config.overload)
                    {
                        self.telemetry.sheds.incr();
                        self.answer_session(
                            &reply,
                            SessionDecision {
                                seq,
                                group: op.group,
                                outcome: Err(ClusterError::Overloaded(placement.shard)),
                                replayed: false,
                                shard: Some(placement.shard),
                                commit: 0,
                                epoch: 0,
                            },
                        );
                    }
                    return Ok(());
                }
            }
            let mut parked = self.parked.write().expect("parking lot");
            match parked.get_mut(&op.group) {
                Some(waiting) => {
                    self.telemetry.parked.incr();
                    waiting.push(ParkedOp::Session { seq, op, reply });
                    return Ok(());
                }
                // Unfrozen between the two lock acquisitions: retry the send.
                None => continue,
            }
        }
    }

    /// Synchronously applies a session operation under the given request id,
    /// returning the whole released [`SessionDecision`] — the session twin
    /// of [`Core::request_raw`]. Frozen groups fail fast with
    /// [`ClusterError::GroupFrozen`].
    pub(crate) fn session_raw(&self, seq: u64, op: SessionOp) -> Result<SessionDecision> {
        if self.is_routing_frozen(op.group) {
            return Err(ClusterError::GroupFrozen(op.group));
        }
        let (tx, rx) = channel();
        self.submit_session_as(seq, op, ReplyTo::Direct(tx))?;
        rx.recv().map_err(|_| ClusterError::Disconnected)
    }

    // ----- follower-served reads ---------------------------------------------

    /// Attempts to serve a read of `shard` from one of its followers under a
    /// read-your-writes `bound`: a round-robin-picked follower serves iff its
    /// applied log position has reached the bound; otherwise (or with no
    /// followers at all) the caller falls back to the leader. The
    /// follower/forwarded split is recorded in the shard's
    /// `replica.follower_reads` / `replica.forwarded_reads` counters.
    fn try_follower_read<R>(
        &self,
        shard: ShardId,
        bound: u64,
        f: impl FnOnce(&crate::replication::FollowerCore) -> R,
    ) -> Option<R> {
        let workers = self.workers.read().expect("workers lock");
        let worker = workers.get(shard.0)?;
        let followers = worker.followers();
        if followers.is_empty() {
            return None;
        }
        let pick = (self.directory.read_ticket() % followers.len() as u64) as usize;
        let mut core = followers[pick].lock().expect("follower core");
        // Followers ack durability and apply lazily: drain the pending tail
        // so the state served (and the bound check) reflect everything this
        // follower durably holds.
        core.catch_up_for_read();
        if core.applied() >= bound {
            worker.replica_metrics().follower_reads.incr();
            Some(f(&core))
        } else {
            worker.replica_metrics().forwarded_reads.incr();
            None
        }
    }

    /// The recorded session state of a group under a read-your-writes bound:
    /// served from a follower when one has applied up to `bound`, else from
    /// the leader.
    pub(crate) fn session_view_bounded(
        &self,
        group: GlobalGroupId,
        bound: u64,
    ) -> Result<GroupSession> {
        let placement = self.directory.placement(group)?;
        if let Some(view) =
            self.try_follower_read(placement.shard, bound, |c| c.session_view(group))
        {
            return Ok(view);
        }
        Ok(self.with_shard(placement.shard, move |s| s.session().view(group)))
    }

    /// A shard health view under a read-your-writes bound. A follower-served
    /// view reports the *follower's* live state (see
    /// `FollowerCore::view` for which leader-only storage fields read as
    /// zero); the leader fallback is the exact [`Core::shard_view`].
    pub(crate) fn shard_view_bounded(&self, shard: ShardId, bound: u64) -> ShardView {
        if let Some(view) = self.try_follower_read(shard, bound, |c| c.view(shard)) {
            return view;
        }
        self.shard_view(shard)
    }

    /// A member's floor-token queue position in a group, under a
    /// read-your-writes bound: `Some(0)` when the member holds the floor,
    /// `Some(n)` when they wait at position `n` (1 = next), `None` when they
    /// are neither. The hot poll of an Equal Control session — every waiting
    /// student asking "how far am I?" — which is exactly the read that must
    /// scale with followers instead of contending on the owning worker.
    pub(crate) fn queue_position_bounded(
        &self,
        group: GlobalGroupId,
        member: GlobalMemberId,
        bound: u64,
    ) -> Result<Option<usize>> {
        let placement = self.directory.placement(group)?;
        let local_group = placement.local;
        let local_member = self.directory.local_member(member, placement.shard)?;
        if let Some(result) = self.try_follower_read(placement.shard, bound, |c| {
            queue_position_in(c.arbiter(), local_group, local_member)
        }) {
            return result;
        }
        self.with_shard(placement.shard, move |s| {
            queue_position_in(s.arbiter(), local_group, local_member)
        })
    }

    // ----- vectored (batched) submission -------------------------------------

    /// Submits a whole batch of floor requests with amortized costs: one
    /// request-id lease for the batch (allocated by the calling gateway so
    /// its ids stay monotone across interleaved scalar submissions), one
    /// pass over the routing directory, one parking-lot guard, and one queue
    /// reservation per owning shard. Returns the batch's request ids
    /// (`start_seq..start_seq + len`) in submission order.
    ///
    /// Every returned id resolves to exactly one decision on `reply` — a
    /// real arbitration, [`ClusterError::Overloaded`] if its shard shed it,
    /// or the routing error that made it unroutable — so callers can account
    /// for batches exactly. Requests for frozen groups park individually and
    /// re-drive after the handoff, like single submissions.
    pub(crate) fn submit_batch_as(
        &self,
        start_seq: u64,
        requests: &[GlobalRequest],
        reply: &ReplyTo<Decision>,
    ) -> Vec<u64> {
        let n = requests.len() as u64;
        if n == 0 {
            return Vec::new();
        }
        let seqs: Vec<u64> = (start_seq..start_seq + n).collect();
        // One sampling-tick reservation covers the whole batch, so the
        // per-request trace decision below is pure arithmetic.
        let trace_run = self.telemetry.reserve_span_run(n);
        let mut per_shard: BTreeMap<ShardId, Vec<ShardCommand>> = BTreeMap::new();
        // Requests that must park (their group is frozen) fall back to the
        // single-submission path below, outside the read guard.
        let mut frozen: Vec<(u64, GlobalRequest)> = Vec::new();
        {
            let parked = self.parked.read().expect("parking lot");
            // The "one directory pass": batches are typically group-major
            // (a burst of requests against the same group), so a one-entry
            // placement cache removes most striped read-lock lookups.
            let mut last: Option<(GlobalGroupId, GroupPlacement)> = None;
            for (&seq, &request) in seqs.iter().zip(requests) {
                if parked.contains_key(&request.group) {
                    frozen.push((seq, request));
                    continue;
                }
                let placement = match last {
                    Some((group, placement)) if group == request.group => Ok(placement),
                    _ => self.directory.placement(request.group).inspect(|&p| {
                        last = Some((request.group, p));
                    }),
                };
                match placement.and_then(|p| Ok((p, self.localize(&request, p)?))) {
                    Ok((placement, local)) => {
                        // Sampled spans ride inside the batch; "enqueued" is
                        // stamped at command build, one reservation before
                        // the actual push.
                        let span = self
                            .telemetry
                            .begin_span_in_run(
                                trace_run,
                                seq - start_seq,
                                seq,
                                request.kind.label(),
                            )
                            .map(|mut span| {
                                if let ReplyTo::Gateway(handle) = reply {
                                    span.set_gateway(handle.index());
                                }
                                span.stamp(TraceStage::Enqueued);
                                span
                            });
                        per_shard
                            .entry(placement.shard)
                            .or_default()
                            .push(ShardCommand::Request {
                                seq,
                                group: request.group,
                                request: local,
                                reply: reply.clone(),
                                span,
                            });
                    }
                    Err(e) => self.answer_floor(
                        reply,
                        Decision {
                            seq,
                            group: request.group,
                            outcome: Err(e),
                            replayed: false,
                            shard: None,
                            commit: 0,
                            epoch: 0,
                        },
                    ),
                }
            }
            // One queue reservation per shard, still under the read guard so
            // a racing freeze orders before or after the whole batch.
            let workers = self.workers.read().expect("workers lock");
            for (shard, commands) in per_shard {
                for rejected in workers[shard.0].push_ingest_many(commands, self.config.overload) {
                    let ShardCommand::Request {
                        seq, group, reply, ..
                    } = rejected
                    else {
                        continue;
                    };
                    self.telemetry.sheds.incr();
                    self.answer_floor(
                        &reply,
                        Decision {
                            seq,
                            group,
                            outcome: Err(ClusterError::Overloaded(shard)),
                            replayed: false,
                            shard: Some(shard),
                            commit: 0,
                            epoch: 0,
                        },
                    );
                }
            }
        }
        for (seq, request) in frozen {
            if let Err(e) = self.submit_as(seq, request, reply.clone()) {
                self.answer_floor(
                    reply,
                    Decision {
                        seq,
                        group: request.group,
                        outcome: Err(e),
                        replayed: false,
                        shard: None,
                        commit: 0,
                        epoch: 0,
                    },
                );
            }
        }
        seqs
    }

    /// Submits a whole batch of session operations; the vectored twin of
    /// [`Core::submit_batch_as`] with the same exactly-one-decision-per-id
    /// contract on the session stream.
    pub(crate) fn submit_session_batch_as(
        &self,
        start_seq: u64,
        ops: Vec<SessionOp>,
        reply: &ReplyTo<SessionDecision>,
    ) -> Vec<u64> {
        let n = ops.len() as u64;
        if n == 0 {
            return Vec::new();
        }
        let seqs: Vec<u64> = (start_seq..start_seq + n).collect();
        let trace_run = self.telemetry.reserve_span_run(n);
        let mut per_shard: BTreeMap<ShardId, Vec<ShardCommand>> = BTreeMap::new();
        let mut frozen: Vec<(u64, SessionOp)> = Vec::new();
        {
            let parked = self.parked.read().expect("parking lot");
            for (&seq, op) in seqs.iter().zip(ops) {
                if parked.contains_key(&op.group) {
                    frozen.push((seq, op));
                    continue;
                }
                match self.translate_session(&op) {
                    Ok((placement, event)) => {
                        let span = self
                            .telemetry
                            .begin_span_in_run(trace_run, seq - start_seq, seq, op.kind.label())
                            .map(|mut span| {
                                if let ReplyTo::Gateway(handle) = reply {
                                    span.set_gateway(handle.index());
                                }
                                span.stamp(TraceStage::Enqueued);
                                span
                            });
                        per_shard
                            .entry(placement.shard)
                            .or_default()
                            .push(ShardCommand::Session {
                                seq,
                                event,
                                reply: reply.clone(),
                                span,
                            });
                    }
                    Err(e) => self.answer_session(
                        reply,
                        SessionDecision {
                            seq,
                            group: op.group,
                            outcome: Err(e),
                            replayed: false,
                            shard: None,
                            commit: 0,
                            epoch: 0,
                        },
                    ),
                }
            }
            let workers = self.workers.read().expect("workers lock");
            for (shard, commands) in per_shard {
                for rejected in workers[shard.0].push_ingest_many(commands, self.config.overload) {
                    let ShardCommand::Session {
                        seq, event, reply, ..
                    } = rejected
                    else {
                        continue;
                    };
                    self.telemetry.sheds.incr();
                    self.answer_session(
                        &reply,
                        SessionDecision {
                            seq,
                            group: event.group,
                            outcome: Err(ClusterError::Overloaded(shard)),
                            replayed: false,
                            shard: Some(shard),
                            commit: 0,
                            epoch: 0,
                        },
                    );
                }
            }
        }
        for (seq, op) in frozen {
            let group = op.group;
            if let Err(e) = self.submit_session_as(seq, op, reply.clone()) {
                self.answer_session(
                    reply,
                    SessionDecision {
                        seq,
                        group,
                        outcome: Err(e),
                        replayed: false,
                        shard: None,
                        commit: 0,
                        epoch: 0,
                    },
                );
            }
        }
        seqs
    }

    // ----- membership and groups -------------------------------------------

    fn create_group_on(
        &self,
        id: GlobalGroupId,
        shard: ShardId,
        name: String,
        mode: FcmMode,
        parent: Option<GlobalGroupId>,
    ) -> Result<()> {
        let outcome = self.with_shard(shard, move |s| {
            s.apply(ArbiterEvent::CreateGroup { name, mode })
        })?;
        let EventOutcome::GroupCreated(local) = outcome else {
            unreachable!("CreateGroup yields GroupCreated");
        };
        self.directory.place_group(
            id,
            GroupPlacement {
                shard,
                local,
                parent,
            },
        );
        Ok(())
    }

    pub(crate) fn create_group(&self, name: String, mode: FcmMode) -> Result<GlobalGroupId> {
        let id = GlobalGroupId(self.directory.alloc_group());
        let shard = self.directory.shard_for(id.0);
        self.create_group_on(id, shard, name, mode, None)?;
        Ok(id)
    }

    /// Ensures the member exists on the shard (instantiating it into `group`
    /// if it is new there) and returns its local id.
    ///
    /// The member's directory stripe stays write-locked across the AddMember
    /// round-trip so two gateways racing to instantiate the same member
    /// cannot register it twice; shard workers never take directory locks,
    /// so no cycle can form.
    fn ensure_on_shard(
        &self,
        member: GlobalMemberId,
        shard: ShardId,
        group: GroupId,
    ) -> Result<MemberId> {
        let stripe = self.directory.member_stripe(member);
        let mut guard = stripe.write().expect("member stripe");
        let record: &mut MemberRecord = guard
            .get_mut(&member)
            .ok_or(ClusterError::UnknownMember(member))?;
        if let Some(&local) = record.locals.get(&shard) {
            drop(guard);
            self.with_shard(shard, move |s| {
                s.apply(ArbiterEvent::JoinGroup {
                    group,
                    member: local,
                })
            })?;
            return Ok(local);
        }
        let template = record.template.clone();
        let outcome = self.with_shard(shard, move |s| {
            s.apply(ArbiterEvent::AddMember {
                group,
                member: template,
            })
        })?;
        let EventOutcome::MemberAdded(local) = outcome else {
            unreachable!("AddMember yields MemberAdded");
        };
        // Reverse mapping first: the invariant "every forward `locals` entry
        // has its reverse mapping" must hold at every instant a concurrent
        // `check_invariants` can observe.
        self.directory.record_local(shard, local, member);
        record.locals.insert(shard, local);
        drop(guard);
        Ok(local)
    }

    pub(crate) fn join_group(&self, group: GlobalGroupId, member: GlobalMemberId) -> Result<()> {
        // Membership mutations must not slip into a handoff's frozen window:
        // the export captures the roster, so a join applied on the source
        // mid-handoff would be lost by the commit's install/purge. Frozen
        // groups fail fast and retryable, like the synchronous request
        // paths; the read guard stays held across the worker round-trip so
        // a freeze racing this join must wait until the mutation is ordered
        // before the handoff's prepare command (and thus in the export).
        let parked = self.parked.read().expect("parking lot");
        if parked.contains_key(&group) {
            return Err(ClusterError::GroupFrozen(group));
        }
        let placement = self.directory.placement(group)?;
        self.ensure_on_shard(member, placement.shard, placement.local)?;
        drop(parked);
        Ok(())
    }

    pub(crate) fn leave_group(&self, group: GlobalGroupId, member: GlobalMemberId) -> Result<()> {
        // Mirrors `join_group`: a leave slipping into the frozen window
        // would be resurrected by the commit's install on the destination.
        let parked = self.parked.read().expect("parking lot");
        if parked.contains_key(&group) {
            return Err(ClusterError::GroupFrozen(group));
        }
        let placement = self.directory.placement(group)?;
        let local = self.directory.local_member(member, placement.shard)?;
        self.with_shard(placement.shard, move |s| {
            s.apply(ArbiterEvent::LeaveGroup {
                group: placement.local,
                member: local,
            })
        })?;
        drop(parked);
        Ok(())
    }

    pub(crate) fn set_shard_resource(&self, shard: ShardId, resource: Resource) -> Result<()> {
        self.with_shard(shard, move |s| {
            s.apply(ArbiterEvent::SetResource { resource })
        })?;
        Ok(())
    }

    // ----- cross-shard invitations -----------------------------------------

    pub(crate) fn invite(
        &self,
        parent: GlobalGroupId,
        from: GlobalMemberId,
        to: GlobalMemberId,
        mode: FcmMode,
        target: Option<ShardId>,
    ) -> Result<(GlobalGroupId, u64)> {
        let parent_placement = self.directory.placement(parent)?;
        let parent_local = parent_placement.local;
        // Membership checks against the parent shard's arbiter.
        let locals = [
            self.directory.local_member(from, parent_placement.shard)?,
            self.directory.local_member(to, parent_placement.shard)?,
        ];
        self.with_shard(parent_placement.shard, move |s| -> Result<()> {
            let parent_group = s.arbiter().group(parent_local)?;
            for local in locals {
                if !parent_group.contains(local) {
                    return Err(ClusterError::Floor(dmps_floor::FloorError::NotAMember {
                        member: local,
                        group: parent_local,
                    }));
                }
            }
            Ok(())
        })?;
        let sub = GlobalGroupId(self.directory.alloc_group());
        let shard = target.unwrap_or_else(|| self.directory.shard_for(sub.0));
        let from_name = self.directory.member_name(from)?;
        self.create_group_on(
            sub,
            shard,
            format!("{from_name}-{mode}"),
            mode,
            Some(parent),
        )?;
        // The inviter joins (and chairs, by first-join convention) the
        // sub-group immediately; the invitee joins on acceptance.
        let placement = self.directory.placement(sub)?;
        self.ensure_on_shard(from, placement.shard, placement.local)?;
        let invitation = self.directory.push_invitation(ClusterInvitation {
            from,
            to,
            subgroup: sub,
            status: InvitationStatus::Pending,
        });
        Ok((sub, invitation))
    }

    pub(crate) fn respond_invitation(
        &self,
        invitation: u64,
        responder: GlobalMemberId,
        accept: bool,
    ) -> Result<InvitationStatus> {
        // The invitations lock is held across the join so two racing answers
        // serialize; join only takes member-stripe and worker resources,
        // never the invitations lock again.
        self.directory
            .with_invitations_mut(|invitations| -> Result<InvitationStatus> {
                let inv = invitations
                    .get(invitation as usize)
                    .cloned()
                    .ok_or(ClusterError::UnknownInvitation(invitation))?;
                if inv.to != responder {
                    return Err(ClusterError::NotTheInvitee(responder));
                }
                if inv.status != InvitationStatus::Pending {
                    return Err(ClusterError::AlreadyAnswered(invitation));
                }
                let status = if accept {
                    self.join_group(inv.subgroup, responder)?;
                    InvitationStatus::Accepted
                } else {
                    InvitationStatus::Declined
                };
                invitations[invitation as usize].status = status;
                Ok(status)
            })
    }

    // ----- failure, recovery, scale-out ------------------------------------

    pub(crate) fn crash_shard(&self, shard: ShardId) {
        self.with_shard(shard, |s| s.crash());
    }

    /// Brings a crashed shard back: with followers configured the most
    /// caught-up one is promoted (tail-catch-up), otherwise the standby
    /// replays snapshot-plus-log-suffix.
    pub(crate) fn recover_shard(&self, shard: ShardId) -> Result<()> {
        self.with_shard_replicas(shard, |s, r| r.promote(s))
    }

    pub(crate) fn is_shard_active(&self, shard: ShardId) -> bool {
        self.with_shard(shard, |s| s.is_active())
    }

    pub(crate) fn isolate_shard_leader(&self, shard: ShardId) {
        self.with_shard_fault(shard, |_, r| r.partition_leader());
    }

    pub(crate) fn heal_shard_partition(&self, shard: ShardId) {
        self.with_shard_fault(shard, |_, r| r.heal_partition());
    }

    pub(crate) fn inject_corruption(&self, shard: ShardId, target: CorruptionTarget) -> bool {
        self.with_shard_fault(shard, move |s, _| s.inject_corruption(target))
    }

    pub(crate) fn inject_follower_corruption(&self, shard: ShardId, follower: usize) -> bool {
        self.with_shard_fault(shard, move |_, r| r.inject_follower_corruption(follower))
    }

    pub(crate) fn arbiter(&self, shard: ShardId) -> FloorArbiter {
        self.with_shard(shard, |s| s.arbiter().clone())
    }

    pub(crate) fn shard_view(&self, shard: ShardId) -> ShardView {
        self.with_shard(shard, |s| s.view())
    }

    pub(crate) fn shard_stats(&self) -> Vec<(ShardId, ArbiterStats)> {
        (0..self.shard_count())
            .map(|i| (ShardId(i), self.shard_view(ShardId(i)).stats))
            .collect()
    }

    pub(crate) fn add_shard(&self) -> ShardId {
        let mut workers = self.workers.write().expect("workers lock");
        let id = self.directory.grow_ring();
        debug_assert_eq!(id.0, workers.len());
        let mut shard = Shard::new(id, self.config.snapshot_every, self.config.dedup_window);
        shard.set_snapshot_policy(self.config.snapshot_every_bytes, self.config.snapshot_chain);
        shard.set_metrics(self.telemetry.shard(id.0));
        workers.push(ShardWorker::spawn(
            shard,
            self.registry.clone(),
            self.config.queue_capacity,
            self.config.ingest_batch,
            self.telemetry.worker(id.0),
            self.config.replicas,
            self.config.replica_link,
            self.config.replica_pipeline,
            self.telemetry.replica(id.0),
        ));
        id
    }

    /// Every group whose current placement differs from its ring placement —
    /// the candidate set both rebalancing passes work from.
    fn displaced_groups(&self) -> Vec<(GlobalGroupId, GroupPlacement, ShardId)> {
        self.directory
            .placements_snapshot()
            .into_iter()
            .filter_map(|(g, p)| {
                let target = self.directory.shard_for(g.0);
                (target != p.shard).then_some((g, p, target))
            })
            .collect()
    }

    pub(crate) fn rebalance_idle(&self) -> Result<RebalanceReport> {
        let candidates = self.displaced_groups();
        let mut report = RebalanceReport::default();
        for (group, placement, target) in candidates {
            if !self.is_shard_active(placement.shard) || !self.is_shard_active(target) {
                report.deferred.push(group);
                continue;
            }
            let local = placement.local;
            // One worker round-trip inspects the floor state and, when idle,
            // captures the roster atomically with respect to that shard.
            let idle_roster: Result<Option<(String, FcmMode, Vec<MemberId>)>> =
                self.with_shard(placement.shard, move |s| {
                    let token = s.arbiter().token(local)?;
                    if token.holder().is_some() || token.queue_len() > 0 {
                        return Ok(None); // pinned: active floor state
                    }
                    let old = s.arbiter().group(local)?;
                    Ok(Some((
                        old.name.clone(),
                        old.mode,
                        old.members().collect::<Vec<_>>(),
                    )))
                });
            let Some((name, mode, locals)) = idle_roster? else {
                report.deferred.push(group);
                continue;
            };
            // Map the group's local members back to global ids.
            let roster: Vec<GlobalMemberId> = locals
                .iter()
                .filter_map(|&m| self.directory.global_of(placement.shard, m))
                .collect();
            // Re-create on the target shard and move the roster over.
            self.create_group_on(group, target, name, mode, placement.parent)?;
            let new_local = self.directory.placement(group)?.local;
            for member in &roster {
                self.ensure_on_shard(*member, target, new_local)?;
            }
            // Empty the husk on the old shard so stale routing fails closed.
            for member in &roster {
                let local_id = self.directory.local_member(*member, placement.shard)?;
                self.with_shard(placement.shard, move |s| {
                    s.apply(ArbiterEvent::LeaveGroup {
                        group: local,
                        member: local_id,
                    })
                })?;
            }
            // The group's slice of the decision journal follows it, so a
            // gateway retry of a pre-migration request id still replays on
            // the new owner instead of double-applying.
            let journal = self.with_shard(placement.shard, move |s| s.extract_dedup(group));
            if !journal.is_empty() {
                self.with_shard(target, move |s| s.install_dedup(group, journal));
            }
            // Session state migrates too: the chat/whiteboard/annotation logs
            // and media schedule (logged as purge/install so replay on either
            // shard stays deterministic), plus the session decision journal.
            // Install on the target *before* purging the source — the purge
            // is durably logged, so the reverse order would destroy the only
            // copy if the install failed.
            let content = self.with_shard(placement.shard, move |s| s.session().view(group));
            if !content.is_empty() {
                self.with_shard(target, move |s| s.install_session(group, content))?;
                let _ = self.with_shard(placement.shard, move |s| s.extract_session(group))?;
            }
            let session_journal =
                self.with_shard(placement.shard, move |s| s.extract_session_dedup(group));
            if !session_journal.is_empty() {
                self.with_shard(target, move |s| {
                    s.install_session_dedup(group, session_journal)
                });
            }
            report.migrated.push(group);
        }
        Ok(report)
    }

    // ----- live handoff (two-phase migration of active groups) --------------

    /// Establishes the routing-level freeze: submissions for `group` park
    /// from this instant until [`Core::unfreeze_and_redrive`]. Returns
    /// `false` when the group is already frozen by another handoff — the
    /// caller must then back off *without* unfreezing, or it would clobber
    /// the in-flight handoff's freeze (and strand or leak its parked ops).
    fn freeze_routing(&self, group: GlobalGroupId) -> bool {
        let mut parked = self.parked.write().expect("parking lot");
        if parked.contains_key(&group) {
            return false;
        }
        parked.insert(group, Vec::new());
        true
    }

    /// Lifts the routing freeze and re-drives every parked submission, in
    /// arrival order. Re-driving re-resolves the directory, so after a
    /// commit the ops land on the new owner, after an abort back on the
    /// source. Routing failures — and sheds, if the destination queue is
    /// full under [`OverloadPolicy::Shed`] — are answered on the op's own
    /// reply route so no submission is ever lost silently.
    ///
    /// The write guard stays held across the whole re-drive: a fresh
    /// submission for the group cannot pass the not-frozen check (its read
    /// lock waits) until every parked op is already in its worker queue, so
    /// per-gateway arrival order is preserved across the frozen window —
    /// without this, a post-unfreeze submission could overtake older parked
    /// ops. Holding it across a `Block` wait on a full queue is safe for
    /// the same reason every submit-side wait is: the worker draining the
    /// queue never takes routing locks, so it always makes progress.
    fn unfreeze_and_redrive(&self, group: GlobalGroupId) {
        let mut parked = self.parked.write().expect("parking lot");
        for op in parked.remove(&group).unwrap_or_default() {
            self.telemetry.redriven.incr();
            match op {
                ParkedOp::Floor {
                    seq,
                    request,
                    reply,
                } => match self.translate(&request) {
                    Ok((placement, local)) => {
                        let workers = self.workers.read().expect("workers lock");
                        // Re-driven ops never carry a span: the frozen wait
                        // would dominate the pipeline-stage intervals the
                        // latency histograms are meant to measure.
                        let command = ShardCommand::Request {
                            seq,
                            group: request.group,
                            request: local,
                            reply,
                            span: None,
                        };
                        if let Err(ShardCommand::Request { reply, .. }) =
                            workers[placement.shard.0].push_ingest(command, self.config.overload)
                        {
                            self.telemetry.sheds.incr();
                            self.answer_floor(
                                &reply,
                                Decision {
                                    seq,
                                    group: request.group,
                                    outcome: Err(ClusterError::Overloaded(placement.shard)),
                                    replayed: false,
                                    shard: Some(placement.shard),
                                    commit: 0,
                                    epoch: 0,
                                },
                            );
                        }
                    }
                    Err(e) => self.answer_floor(
                        &reply,
                        Decision {
                            seq,
                            group: request.group,
                            outcome: Err(e),
                            replayed: false,
                            shard: None,
                            commit: 0,
                            epoch: 0,
                        },
                    ),
                },
                ParkedOp::Session { seq, op, reply } => match self.translate_session(&op) {
                    Ok((placement, event)) => {
                        let workers = self.workers.read().expect("workers lock");
                        let command = ShardCommand::Session {
                            seq,
                            event,
                            reply,
                            span: None,
                        };
                        if let Err(ShardCommand::Session { reply, .. }) =
                            workers[placement.shard.0].push_ingest(command, self.config.overload)
                        {
                            self.telemetry.sheds.incr();
                            self.answer_session(
                                &reply,
                                SessionDecision {
                                    seq,
                                    group: op.group,
                                    outcome: Err(ClusterError::Overloaded(placement.shard)),
                                    replayed: false,
                                    shard: Some(placement.shard),
                                    commit: 0,
                                    epoch: 0,
                                },
                            );
                        }
                    }
                    Err(e) => self.answer_session(
                        &reply,
                        SessionDecision {
                            seq,
                            group: op.group,
                            outcome: Err(e),
                            replayed: false,
                            shard: None,
                            commit: 0,
                            epoch: 0,
                        },
                    ),
                },
            }
        }
    }

    /// Phase 1: freezes the group on its source shard and exports its live
    /// state (token holder + queue, roster, session content, journal
    /// slices), translated to global ids.
    pub(crate) fn handoff_prepare(
        &self,
        group: GlobalGroupId,
        target: Option<ShardId>,
    ) -> Result<HandoffTicket> {
        let placement = self.directory.placement(group)?;
        let target = target.unwrap_or_else(|| self.directory.shard_for(group.0));
        if target == placement.shard {
            return Err(ClusterError::HandoffUnnecessary(group));
        }
        if !self.is_shard_active(target) {
            return Err(ClusterError::ShardDown(target));
        }
        // Routing freeze first, then the shard-side freeze: every submission
        // racing the handoff either parks here or reaches the source worker
        // *before* its prepare command and is therefore reflected in the
        // export.
        if !self.freeze_routing(group) {
            return Err(ClusterError::GroupFrozen(group));
        }
        let local = placement.local;
        let export = match self.with_shard(placement.shard, move |s| {
            match s.handoff_prepare(group, local) {
                // An orphaned durable freeze: a crashed handoff's prepare
                // was replayed by recovery, but no coordinator is in flight
                // (we just won the routing freeze, so any previous handoff
                // is resolved or its coordinator is gone). Lift it and
                // retry so the group cannot stay wedged forever.
                Err(ClusterError::GroupFrozen(_)) => {
                    s.handoff_abort(group)?;
                    s.handoff_prepare(group, local)
                }
                other => other,
            }
        }) {
            Ok(export) => export,
            Err(e) => {
                self.unfreeze_and_redrive(group);
                return Err(e);
            }
        };
        // Translate the exported dense ids to global ids. Every shard-local
        // member has a reverse directory mapping (a cluster invariant), so a
        // miss here is a bug, not a recoverable condition.
        let global = |m: MemberId| {
            self.directory
                .global_of(placement.shard, m)
                .expect("exported member has a reverse directory mapping")
        };
        Ok(HandoffTicket {
            group,
            source: placement.shard,
            source_local: local,
            target,
            parent: placement.parent,
            name: export.floor.name,
            mode: export.floor.mode,
            roster: export.floor.members.iter().copied().map(global).collect(),
            chair: export.floor.chair.map(global),
            holder: export.floor.token.holder().map(global),
            queue: export.floor.token.queue().map(global).collect(),
            grants: export.floor.token.grant_count(),
            content: export.content,
            floor_journal: export.floor_journal,
            session_journal: export.session_journal,
            pinned_seq: export.pinned_seq,
        })
    }

    /// Installs the ticket's state on the target shard: group + roster via
    /// the ordinary logged floor events, the token via a logged
    /// [`ArbiterEvent::RestoreToken`], session content via a logged install,
    /// journal slices into the dedup windows. Returns the group's dense id
    /// on the target.
    ///
    /// Takes the ticket mutably so the bulk payloads (session content,
    /// journal slices, name) are *moved* into the install instead of deep-
    /// copied; the scalar routing fields the commit still needs afterwards
    /// stay behind.
    fn install_handoff(&self, ticket: &mut HandoffTicket) -> Result<GroupId> {
        let target = ticket.target;
        let (name, mode) = (std::mem::take(&mut ticket.name), ticket.mode);
        let outcome = self.with_shard(target, move |s| {
            s.apply(ArbiterEvent::CreateGroup { name, mode })
        })?;
        let EventOutcome::GroupCreated(new_local) = outcome else {
            unreachable!("CreateGroup yields GroupCreated");
        };
        for &member in &ticket.roster {
            self.ensure_on_shard(member, target, new_local)?;
        }
        let holder = ticket
            .holder
            .map(|m| self.directory.local_member(m, target))
            .transpose()?;
        let queue = ticket
            .queue
            .iter()
            .map(|&m| self.directory.local_member(m, target))
            .collect::<Result<Vec<_>>>()?;
        let token = FloorToken::from_parts(holder, queue, ticket.grants);
        self.with_shard(target, move |s| {
            s.apply(ArbiterEvent::RestoreToken {
                group: new_local,
                token,
            })
        })?;
        // Re-seat the chair explicitly: the add/join path above only elects
        // chairs by role, which cannot express an inviter-chaired sub-group
        // (and elects nobody when the member was already instantiated on the
        // target and arrived via JoinGroup).
        let chair = ticket
            .chair
            .map(|m| self.directory.local_member(m, target))
            .transpose()?;
        self.with_shard(target, move |s| {
            s.apply(ArbiterEvent::RestoreChair {
                group: new_local,
                chair,
            })
        })?;
        if !ticket.content.is_empty() {
            let (group, content) = (ticket.group, std::mem::take(&mut ticket.content));
            self.with_shard(target, move |s| s.install_session(group, content))?;
        }
        if !ticket.floor_journal.is_empty() {
            let (group, journal) = (ticket.group, std::mem::take(&mut ticket.floor_journal));
            self.with_shard(target, move |s| s.install_dedup(group, journal));
        }
        if !ticket.session_journal.is_empty() {
            let (group, journal) = (ticket.group, std::mem::take(&mut ticket.session_journal));
            self.with_shard(target, move |s| s.install_session_dedup(group, journal));
        }
        Ok(new_local)
    }

    /// Retires the source copy after a successful install: empties the
    /// roster (each leave logged; the husk's token drains with the roster —
    /// the live token already moved as a copy), purges the session content
    /// (logged), drops the journal slices, and logs the source-side commit
    /// that lifts the freeze.
    fn purge_handoff_source(&self, ticket: &HandoffTicket) -> Result<()> {
        let (group, source, local) = (ticket.group, ticket.source, ticket.source_local);
        for &member in &ticket.roster {
            let member_local = self.directory.local_member(member, source)?;
            self.with_shard(source, move |s| {
                s.apply(ArbiterEvent::LeaveGroup {
                    group: local,
                    member: member_local,
                })
            })?;
        }
        let _ = self.with_shard(source, move |s| s.extract_session(group))?;
        let _ = self.with_shard(source, move |s| s.extract_dedup(group));
        let _ = self.with_shard(source, move |s| s.extract_session_dedup(group));
        self.with_shard(source, move |s| s.handoff_commit_source(group))
    }

    /// Phase 2: installs on the destination, flips the directory placement,
    /// retires the source copy, and re-drives parked submissions. On a
    /// destination failure the handoff aborts internally (the source
    /// unfreezes and resumes serving) and the error is returned.
    pub(crate) fn handoff_commit(&self, mut ticket: HandoffTicket) -> Result<()> {
        let group = ticket.group;
        match self.install_handoff(&mut ticket) {
            Ok(new_local) => {
                // The placement swap: from this instant the directory routes
                // the group to its new owner. Parked ops re-driven below (and
                // every later submission) land there.
                self.directory.place_group(
                    group,
                    GroupPlacement {
                        shard: ticket.target,
                        local: new_local,
                        parent: ticket.parent,
                    },
                );
                // Best-effort: a source that crashed mid-handoff keeps its
                // frozen husk (it fails closed until recovery; the directory
                // no longer routes to it), and a later recovery replays the
                // freeze without a commit — still exactly one serving copy.
                let _ = self.purge_handoff_source(&ticket);
                self.unfreeze_and_redrive(group);
                Ok(())
            }
            Err(e) => {
                // Destination failure: abort back to the source. A partially
                // installed destination group is an orphan its directory
                // never points at — harmless, and its shard was down anyway.
                let source = ticket.source;
                let _ = self.with_shard(source, move |s| s.handoff_abort(group));
                self.unfreeze_and_redrive(group);
                Err(e)
            }
        }
    }

    /// Abandons a prepared handoff: lifts the source freeze (logged) and
    /// re-drives parked submissions back to the source.
    pub(crate) fn handoff_abort(&self, ticket: HandoffTicket) -> Result<()> {
        let (group, source) = (ticket.group, ticket.source);
        let result = self.with_shard(source, move |s| s.handoff_abort(group));
        self.unfreeze_and_redrive(group);
        result
    }

    pub(crate) fn rebalance_active(&self) -> Result<RebalanceReport> {
        let mut report = RebalanceReport::default();
        for (group, placement, target) in self.displaced_groups() {
            if !self.is_shard_active(placement.shard) || !self.is_shard_active(target) {
                report.deferred.push(group);
                continue;
            }
            let ticket = match self.handoff_prepare(group, Some(target)) {
                Ok(ticket) => ticket,
                Err(_) => {
                    report.deferred.push(group);
                    continue;
                }
            };
            // `handoff_commit` aborts internally on failure, so a deferred
            // group is back to serving on its source and safe to retry.
            match self.handoff_commit(ticket) {
                Ok(()) => report.migrated.push(group),
                Err(_) => report.deferred.push(group),
            }
        }
        Ok(report)
    }

    // ----- invariants -------------------------------------------------------

    pub(crate) fn check_invariants(&self) -> std::result::Result<(), String> {
        // Snapshot order matters under concurrent mutation: directory
        // snapshots are taken *before* the arbiters are cloned. A group's
        // arbiter-side state always exists before its directory entry (and a
        // member's reverse mapping before its forward entry), so everything
        // the snapshots reference is guaranteed to be visible in the
        // later-cloned arbiters — a concurrent `create_group`/`join_group`
        // can therefore never produce a spurious violation.
        let placements = self.directory.placements_snapshot();
        let members = self.directory.members_snapshot();
        let shard_count = self.shard_count();
        let mut arbiters = Vec::with_capacity(shard_count);
        for i in 0..shard_count {
            let shard = ShardId(i);
            arbiters.push((
                shard,
                self.with_shard(shard, |s| (s.is_active(), s.arbiter().clone())),
            ));
        }
        for (shard, (active, arbiter)) in &arbiters {
            if *active {
                arbiter
                    .check_invariants()
                    .map_err(|e| format!("{shard}: {e}"))?;
            }
        }
        for (g, p) in placements {
            // `get`, not an index: a shard added after the placements
            // snapshot would be missing from `arbiters`.
            let Some((_, (active, arbiter))) = arbiters.get(p.shard.0) else {
                continue;
            };
            if *active && arbiter.group(p.local).is_err() {
                return Err(format!(
                    "directory entry {g} points at missing {:?}",
                    p.local
                ));
            }
        }
        for (m, locals) in members {
            for (shard, local) in locals {
                if self.directory.global_of(shard, local) != Some(m) {
                    return Err(format!("reverse directory mismatch for {m} on {shard}"));
                }
            }
        }
        Ok(())
    }
}

/// The sharded multi-arbiter control plane, single-caller façade.
///
/// For concurrent multi-gateway ingest, clone the handle returned by
/// [`Cluster::gateway`] — every clone shares this cluster's directory and
/// shard pipelines but streams decisions to its own channel.
#[derive(Debug)]
pub struct Cluster {
    core: Arc<Core>,
    gateway: Gateway,
    /// Requests submitted through this façade whose decisions have not been
    /// collected by a flush yet.
    pending: usize,
}

impl Cluster {
    /// Builds a cluster of `config.shards` active shards, spawning one
    /// persistent worker thread per shard.
    pub fn new(config: ClusterConfig) -> Self {
        let core = Arc::new(Core::new(config));
        let gateway = Gateway::new(core.clone());
        Cluster {
            core,
            gateway,
            pending: 0,
        }
    }

    /// A fresh concurrent ingest handle onto this cluster (each handle
    /// receives its own decision stream; clone it for more). Deliberately
    /// *not* a borrow of the façade's internal gateway: submissions on that
    /// channel would desynchronize the [`Cluster::pending_requests`]
    /// accounting [`Cluster::flush`] relies on.
    pub fn gateway(&self) -> Gateway {
        self.gateway.clone()
    }

    // ----- introspection ----------------------------------------------------

    /// Number of shards (active or failed).
    pub fn shard_count(&self) -> usize {
        self.core.shard_count()
    }

    /// Number of groups in the directory.
    pub fn group_count(&self) -> usize {
        self.core.directory().group_count()
    }

    /// Number of registered members.
    pub fn member_count(&self) -> usize {
        self.core.directory().member_count()
    }

    /// An owned copy of the shard's arbiter, for inspection. The shard's
    /// state lives on its worker thread, so inspection clones it out rather
    /// than borrowing.
    ///
    /// # Panics
    ///
    /// Panics for an out-of-range id (shard ids come from this cluster).
    pub fn arbiter(&self, shard: ShardId) -> FloorArbiter {
        self.core.arbiter(shard)
    }

    /// Health and counters of one shard.
    ///
    /// # Panics
    ///
    /// Panics for an out-of-range id (shard ids come from this cluster).
    pub fn shard_view(&self, shard: ShardId) -> ShardView {
        self.core.shard_view(shard)
    }

    /// Where a group currently lives.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownGroup`] for an unknown id.
    pub fn placement(&self, group: GlobalGroupId) -> Result<GroupPlacement> {
        self.core.directory().placement(group)
    }

    /// The member's dense id on a shard, if instantiated there.
    ///
    /// # Errors
    ///
    /// Returns unknown-member / not-on-shard errors.
    pub fn local_member(&self, member: GlobalMemberId, shard: ShardId) -> Result<MemberId> {
        self.core.directory().local_member(member, shard)
    }

    /// The global member a shard-local id belongs to, if instantiated there
    /// (the reverse of [`Cluster::local_member`]).
    pub fn global_member(&self, shard: ShardId, local: MemberId) -> Option<GlobalMemberId> {
        self.core.directory().global_of(shard, local)
    }

    /// Aggregate floor statistics per shard.
    pub fn shard_stats(&self) -> Vec<(ShardId, ArbiterStats)> {
        self.core.shard_stats()
    }

    /// Every group owned by a shard.
    pub fn groups_on(&self, shard: ShardId) -> Vec<GlobalGroupId> {
        self.core.directory().groups_on(shard)
    }

    /// The cluster-level invitation with the given id.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownInvitation`] for an unknown id.
    pub fn invitation(&self, id: u64) -> Result<ClusterInvitation> {
        self.core.directory().invitation(id)
    }

    // ----- membership and groups -------------------------------------------

    /// Registers a member with the cluster directory. The member is
    /// instantiated on shards lazily, the first time it joins a group there.
    pub fn register_member(&mut self, template: Member) -> GlobalMemberId {
        self.core.directory().register_member(template)
    }

    /// Creates a top-level group, placed by consistent hashing.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::ShardDown`] when the owning shard is failed.
    pub fn create_group(
        &mut self,
        name: impl Into<String>,
        mode: FcmMode,
    ) -> Result<GlobalGroupId> {
        self.core.create_group(name.into(), mode)
    }

    /// Adds a member to a group (instantiating it on the owning shard if
    /// needed).
    ///
    /// # Errors
    ///
    /// Returns unknown-id and shard-down errors.
    pub fn join_group(&mut self, group: GlobalGroupId, member: GlobalMemberId) -> Result<()> {
        self.core.join_group(group, member)
    }

    /// Removes a member from a group.
    ///
    /// # Errors
    ///
    /// Returns unknown-id and shard-down errors.
    pub fn leave_group(&mut self, group: GlobalGroupId, member: GlobalMemberId) -> Result<()> {
        self.core.leave_group(group, member)
    }

    /// Updates the resource snapshot of one shard (each shard host measures
    /// its own Network × CPU × Memory availability).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::ShardDown`] when the shard is failed.
    pub fn set_shard_resource(&mut self, shard: ShardId, resource: Resource) -> Result<()> {
        self.core.set_shard_resource(shard, resource)
    }

    // ----- cross-shard invitations -----------------------------------------

    /// A member invites another into a new private sub-group (Group
    /// Discussion / Direct Contact). The sub-group is placed by consistent
    /// hashing — typically on a *different* shard than the parent, which is
    /// what lets breakout load spread across the cluster. Pass `target` to
    /// pin the placement explicitly.
    ///
    /// Both parties must be members of the parent group.
    ///
    /// # Errors
    ///
    /// Returns unknown-id errors, [`ClusterError::Floor`] wrapping
    /// [`dmps_floor::FloorError::NotAMember`] when either party is not in the
    /// parent group, and shard-down errors.
    pub fn invite(
        &mut self,
        parent: GlobalGroupId,
        from: GlobalMemberId,
        to: GlobalMemberId,
        mode: FcmMode,
        target: Option<ShardId>,
    ) -> Result<(GlobalGroupId, u64)> {
        self.core.invite(parent, from, to, mode, target)
    }

    /// The invitee answers a cluster-level invitation; accepting joins them
    /// to the sub-group on its (possibly remote) shard.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownInvitation`],
    /// [`ClusterError::NotTheInvitee`], [`ClusterError::AlreadyAnswered`] and
    /// shard-down errors.
    pub fn respond_invitation(
        &mut self,
        invitation: u64,
        responder: GlobalMemberId,
        accept: bool,
    ) -> Result<InvitationStatus> {
        self.core.respond_invitation(invitation, responder, accept)
    }

    // ----- request routing --------------------------------------------------

    /// Allocates a cluster-unique request id without submitting anything —
    /// for callers (like the network simulator's gateway) that transport
    /// requests out-of-band and need idempotency keys for retries.
    pub fn allocate_request_id(&self) -> u64 {
        self.core.directory().alloc_seq()
    }

    /// Routes a request to its owning shard's worker queue and returns its
    /// request id. The decision streams back asynchronously; collect it with
    /// [`Cluster::flush`] / [`Cluster::flush_parallel`].
    ///
    /// # Errors
    ///
    /// Returns unknown-id errors when the request cannot be routed.
    pub fn submit(&mut self, request: GlobalRequest) -> Result<u64> {
        let seq = self.gateway.submit(request)?;
        self.pending += 1;
        Ok(seq)
    }

    /// Routes a whole batch of requests with amortized costs — one
    /// request-id lease, one directory pass, one queue reservation per
    /// owning shard — and returns their request ids in submission order.
    /// Collect the decisions with [`Cluster::flush`].
    ///
    /// Unlike [`Cluster::submit`], per-request routing failures do not fail
    /// the batch: every returned id resolves to exactly one decision, which
    /// carries the arbitration outcome, the routing error, or
    /// [`ClusterError::Overloaded`] if the owning shard shed the request
    /// under a full queue.
    ///
    /// ```
    /// use dmps_cluster::{Cluster, ClusterConfig, GlobalRequest};
    /// use dmps_floor::{FcmMode, Member, Role};
    ///
    /// let mut cluster = Cluster::new(ClusterConfig::with_shards(2));
    /// let g = cluster.create_group("lecture", FcmMode::EqualControl).unwrap();
    /// let m = cluster.register_member(Member::new("t", Role::Chair));
    /// cluster.join_group(g, m).unwrap();
    /// let seqs = cluster.submit_batch(&[
    ///     GlobalRequest::speak(g, m),
    ///     GlobalRequest::release_floor(g, m),
    /// ]);
    /// let decisions = cluster.flush();
    /// assert_eq!(decisions.len(), 2);
    /// assert_eq!(decisions[0].seq, seqs[0]);
    /// assert!(decisions.iter().all(|d| d.outcome.as_ref().unwrap().is_granted()));
    /// ```
    pub fn submit_batch(&mut self, requests: &[GlobalRequest]) -> Vec<u64> {
        let seqs = self.gateway.submit_batch(requests);
        self.pending += seqs.len();
        seqs
    }

    /// Submits and synchronously arbitrates one request (convenience wrapper
    /// for interactive paths; batched traffic should use [`Cluster::submit`]
    /// + flush).
    ///
    /// # Errors
    ///
    /// Returns routing and shard errors.
    pub fn request(&mut self, request: GlobalRequest) -> Result<ArbitrationOutcome> {
        self.gateway.request(request)
    }

    /// Synchronously arbitrates under a caller-provided request id — the
    /// retransmission path: retrying an id whose decision is still in the
    /// owning shard's dedup window returns the recorded outcome (second
    /// element `true`) without re-applying the floor event.
    ///
    /// # Errors
    ///
    /// Returns routing and shard errors.
    pub fn request_with_id(
        &mut self,
        seq: u64,
        request: GlobalRequest,
    ) -> Result<(ArbitrationOutcome, bool)> {
        self.gateway.request_as(seq, request)
    }

    // ----- session operations ----------------------------------------------

    /// Synchronously applies a session operation — a chat line, whiteboard
    /// stroke, annotation or synchronized-media schedule — on the shard
    /// owning its group. Content operations are floor-gated there exactly
    /// like a single `DmpsServer` gates them
    /// ([`dmps_floor::FloorArbiter::may_deliver`]); delivered operations are
    /// appended to the shard's durable log, so session state survives a
    /// crash-and-failover.
    ///
    /// # Errors
    ///
    /// Returns routing and shard errors.
    pub fn session(&mut self, op: SessionOp) -> Result<SessionOutcome> {
        self.gateway.session(op)
    }

    /// Synchronously applies a session operation under a caller-provided
    /// request id — the retransmission path: retrying an id whose decision
    /// is still in the owning shard's session dedup window returns the
    /// recorded outcome (second element `true`) without delivering the
    /// content twice.
    ///
    /// # Errors
    ///
    /// Returns routing and shard errors.
    pub fn session_with_id(&mut self, seq: u64, op: SessionOp) -> Result<(SessionOutcome, bool)> {
        self.gateway.session_as(seq, op)
    }

    /// The recorded session state of a group — its chat / whiteboard /
    /// annotation logs and media schedule. With replication enabled the read
    /// is served from a caught-up follower of the owning shard under this
    /// façade's read-your-writes bound (see [`Gateway::session_view`]);
    /// without replicas it reads from the leader as before.
    ///
    /// [`Gateway::session_view`]: crate::Gateway::session_view
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownGroup`] for an unknown id.
    pub fn session_view(&self, group: GlobalGroupId) -> Result<GroupSession> {
        self.gateway.session_view(group)
    }

    /// A member's current position in a group's floor queue — `Some(0)`
    /// while holding the token, `Some(n)` when waiting `n`-th in line,
    /// `None` when neither. With replication enabled the read is served from
    /// a caught-up follower under this façade's read-your-writes bound.
    ///
    /// # Errors
    ///
    /// Returns unknown-id errors, and floor errors when the group does not
    /// arbitrate a token.
    pub fn queue_position(
        &self,
        group: GlobalGroupId,
        member: GlobalMemberId,
    ) -> Result<Option<usize>> {
        self.gateway.queue_position(group, member)
    }

    // ----- backpressure -----------------------------------------------------

    /// Occupancy statistics of one shard's bounded ingest queue: current
    /// depth, configured capacity, and the high-water mark — which under a
    /// [`OverloadPolicy::Shed`] storm never exceeds the capacity (the
    /// memory bound the ROADMAP's backpressure item asked for).
    ///
    /// # Panics
    ///
    /// Panics for an out-of-range id (shard ids come from this cluster).
    pub fn queue_stats(&self, shard: ShardId) -> QueueStats {
        self.core.queue_stats(shard)
    }

    /// Restarts the peak-occupancy window of one shard's ingest queue:
    /// `peak_queued` drops to the current depth and grows from there.
    /// Sampling [`Cluster::queue_stats`] and then resetting gives long-lived
    /// clusters per-window peaks instead of one all-time high-water mark.
    ///
    /// # Panics
    ///
    /// Panics for an out-of-range id (shard ids come from this cluster).
    pub fn reset_queue_peak(&self, shard: ShardId) {
        self.core.reset_queue_peak(shard);
    }

    // ----- observability ----------------------------------------------------

    /// The cluster-wide metrics registry: lock-free counters and gauges,
    /// log-bucketed latency histograms and bounded time-series under stable
    /// names (`cluster.submit_latency_ns`, `cluster.shard.N.queue_depth`,
    /// `gateway.G.submit_batch_size`, …). Shared with every gateway and
    /// worker, so it reflects the live cluster at any moment.
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.core.telemetry().registry)
    }

    /// The registry rendered as an aligned human-readable table (one metric
    /// per line, sorted by name).
    pub fn metrics_report(&self) -> String {
        self.core.telemetry().registry.to_table()
    }

    /// The registry rendered as a JSON object keyed by metric name.
    pub fn metrics_json(&self) -> String {
        self.core.telemetry().registry.to_json()
    }

    /// The most recent completed pipeline trace spans (oldest first), each
    /// stamped `submitted → enqueued → drained → committed → replied`.
    /// Empty unless [`ClusterConfig::trace_sampling`] is non-zero.
    pub fn recent_spans(&self) -> Vec<TraceSpan> {
        self.core.telemetry().spans.snapshot()
    }

    // ----- request accounting ----------------------------------------------

    /// Number of requests submitted through this façade whose decisions have
    /// not been collected by a flush yet. (The shard pipelines may already
    /// have arbitrated them — decisions wait in this façade's results
    /// channel.)
    pub fn pending_requests(&self) -> usize {
        self.pending
    }

    /// Collects the decisions of every outstanding [`Cluster::submit`],
    /// sorted by request id (= submission order).
    pub fn flush(&mut self) -> Vec<Decision> {
        let decisions = self
            .gateway
            .collect_decisions(self.pending)
            .expect("shard pipelines are alive");
        self.pending = 0;
        decisions
    }

    /// Alias of [`Cluster::flush`], kept for pre-pipeline call sites: shards
    /// always work in parallel behind their queues now, so there is no
    /// separate parallel path to opt into.
    pub fn flush_parallel(&mut self) -> Vec<Decision> {
        self.flush()
    }

    // ----- failure and recovery --------------------------------------------

    /// Crashes a shard's primary process. Requests routed to the shard fail
    /// with [`ClusterError::ShardDown`] until recovery.
    pub fn crash_shard(&mut self, shard: ShardId) {
        self.core.crash_shard(shard);
    }

    /// A standby recovers the shard from its snapshot + log. With followers
    /// configured this promotes the most caught-up replica, bumping the
    /// shard's leader epoch so a partitioned-away old leader is fenced; a
    /// checksum-corrupt leader copy is repaired from the quorum instead of
    /// aborting.
    ///
    /// # Errors
    ///
    /// Propagates durable-state damage replication could not repair —
    /// checksum mismatches as [`ClusterError::Corrupt`], replay divergence
    /// as [`ClusterError::Floor`]. The shard stays quarantined (down, not
    /// serving) in that case.
    pub fn recover_shard(&mut self, shard: ShardId) -> Result<()> {
        self.core.recover_shard(shard)
    }

    /// Whether a shard is serving.
    pub fn is_shard_active(&self, shard: ShardId) -> bool {
        self.core.is_shard_active(shard)
    }

    /// Fault injection: partitions `shard`'s leader away from its whole
    /// follower fleet, *without* settling the pipeline first — batches
    /// already shipped stay parked mid-quorum-write, which is exactly the
    /// window a real partition hits. The leader's next forced quorum runs
    /// out its stall budget, answers every parked decision
    /// [`ClusterError::ShardDown`], and demotes itself; promote with
    /// [`Cluster::recover_shard`] (after [`Cluster::heal_shard_partition`])
    /// to fail over. A no-op on an unreplicated shard.
    pub fn isolate_shard_leader(&mut self, shard: ShardId) {
        self.core.isolate_shard_leader(shard);
    }

    /// Heals every partition on `shard`'s replication network (the inverse
    /// of [`Cluster::isolate_shard_leader`]).
    pub fn heal_shard_partition(&mut self, shard: ShardId) {
        self.core.heal_shard_partition(shard);
    }

    /// Fault injection: silently corrupts one class of `shard`'s durable
    /// state (see [`CorruptionTarget`]) so its stored checksum no longer
    /// matches — detection happens at the next recovery or resync, which
    /// repairs from the replica quorum (or quarantines the shard with
    /// [`ClusterError::Corrupt`] when unreplicated). Returns `false` when
    /// the target does not currently exist (e.g. no snapshot yet).
    pub fn inject_corruption(&mut self, shard: ShardId, target: CorruptionTarget) -> bool {
        self.core.inject_corruption(shard, target)
    }

    /// Fault injection: corrupts one **follower's** pending copy of `shard`'s
    /// newest replicated segment. The follower's next catch-up detects the
    /// mismatch, quarantines its copy and is re-shipped the segment by the
    /// leader. Returns `false` when that follower holds nothing to corrupt.
    pub fn inject_follower_corruption(&mut self, shard: ShardId, follower: usize) -> bool {
        self.core.inject_follower_corruption(shard, follower)
    }

    // ----- scale-out --------------------------------------------------------

    /// Adds a new shard (and its worker pipeline) to the ring and returns
    /// its id. Existing groups stay where they are until
    /// [`Cluster::rebalance_idle`] migrates the idle ones (and
    /// [`Cluster::rebalance_active`] live-migrates the rest); new groups
    /// hash across the enlarged ring immediately.
    pub fn add_shard(&mut self) -> ShardId {
        self.core.add_shard()
    }

    /// Migrates every group whose ring placement changed **and** whose floor
    /// state is idle (no token holder, no queued requesters) to its new
    /// shard. Groups that cannot move this way — floor-active, or with a
    /// failed source/target shard — are **not** migrated; they are reported
    /// in the result's `deferred` list, which [`Cluster::rebalance_active`]
    /// drains by moving live floor state through the two-phase handoff.
    ///
    /// Requests still queued for a migrated group keep routing to the old
    /// shard, where the group is left empty; they fail closed (aborted as
    /// not-joined) rather than double-granting. Flush before rebalancing to
    /// avoid that. A migrated group's slice of the decision journal moves
    /// with it, so gateway retries of pre-migration request ids still replay
    /// instead of double-applying.
    ///
    /// **Concurrency contract:** rebalancing is an administrative operation;
    /// gateways must stop submitting to the groups being moved until it
    /// returns. The idle check and the migration are separate steps on the
    /// source shard, so a floor granted concurrently in that window would be
    /// destroyed by the move — the concurrent-safe path is
    /// [`Cluster::rebalance_active`], whose prepare phase freezes each group
    /// before anything is copied.
    ///
    /// # Errors
    ///
    /// Returns shard errors; on error, already-migrated groups stay migrated.
    pub fn rebalance_idle(&mut self) -> Result<RebalanceReport> {
        self.core.rebalance_idle()
    }

    /// Migrates **every** group whose ring placement changed — including
    /// floor-active ones with a held token and queued requesters — via the
    /// two-phase live handoff, draining the `deferred` list
    /// [`Cluster::rebalance_idle`] reports. Each group is moved
    /// prepare-then-commit:
    ///
    /// 1. **Prepare** freezes the group on its source shard (durably
    ///    logged): streamed submissions park at the routing layer,
    ///    synchronous requests fail fast with
    ///    [`ClusterError::GroupFrozen`], and the group's complete state —
    ///    live token (holder + FIFO queue), roster, session content, and
    ///    both dedup-journal slices — is exported at a pinned log position.
    /// 2. **Commit** installs that state on the destination through ordinary
    ///    logged events (so destination replay is exactly as deterministic
    ///    as normal traffic), flips the directory placement, retires the
    ///    source copy, and re-drives the parked submissions toward the new
    ///    owner.
    ///
    /// A handoff that cannot complete — source or destination down — aborts
    /// back to the source (the group unfreezes and keeps serving there) and
    /// the group lands in `deferred` for a later retry; on a healthy cluster
    /// `deferred` comes back empty. `FloorArbiter::check_invariants` holds
    /// on both shards after every phase: the freeze guarantees at most one
    /// serving copy of the token at any instant, which is exactly the
    /// paper's one-holder-per-group invariant extended across shards.
    ///
    /// ```
    /// use dmps_cluster::{Cluster, ClusterConfig, GlobalRequest};
    /// use dmps_floor::{FcmMode, Member, Role};
    ///
    /// let mut cluster = Cluster::new(ClusterConfig::with_shards(2));
    /// let g = cluster.create_group("lecture", FcmMode::EqualControl).unwrap();
    /// let teacher = cluster.register_member(Member::new("t", Role::Chair));
    /// let student = cluster.register_member(Member::new("s", Role::Participant));
    /// cluster.join_group(g, teacher).unwrap();
    /// cluster.join_group(g, student).unwrap();
    /// // The teacher holds the token and the student queues: the group is
    /// // floor-active, so `rebalance_idle` could never move it...
    /// assert!(cluster.request(GlobalRequest::speak(g, teacher)).unwrap().is_granted());
    /// cluster.request(GlobalRequest::speak(g, student)).unwrap();
    /// cluster.add_shard();
    /// // ...but the live handoff can, token state and queue intact.
    /// let report = cluster.rebalance_active().unwrap();
    /// assert!(report.deferred.is_empty());
    /// if report.migrated.contains(&g) {
    ///     // Releasing on the new shard promotes the queued student: the
    ///     // arbitration continues exactly where the source stopped.
    ///     let next = cluster.request(GlobalRequest::release_floor(g, teacher)).unwrap();
    ///     assert!(next.is_granted());
    /// }
    /// cluster.check_invariants().unwrap();
    /// ```
    ///
    /// # Errors
    ///
    /// Returns directory errors; per-group failures are reported via
    /// `deferred`, not as errors.
    pub fn rebalance_active(&mut self) -> Result<RebalanceReport> {
        self.core.rebalance_active()
    }

    // ----- phase-level handoff (advanced; `rebalance_active` drives both
    // phases for the common case) -------------------------------------------

    /// Phase 1 of a live group handoff: freezes `group` on its current shard
    /// and exports its complete live state toward `target` (defaults to the
    /// group's ring placement). While the returned ticket is outstanding,
    /// streamed submissions for the group park and synchronous requests fail
    /// fast with [`ClusterError::GroupFrozen`] — finish the handoff with
    /// [`Cluster::handoff_commit`] or [`Cluster::handoff_abort`].
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::HandoffUnnecessary`] when the group already
    /// lives on the target, [`ClusterError::GroupFrozen`] when a handoff is
    /// already in flight for it, and shard-down / unknown-id errors.
    pub fn handoff_prepare(
        &mut self,
        group: GlobalGroupId,
        target: Option<ShardId>,
    ) -> Result<HandoffTicket> {
        self.core.handoff_prepare(group, target)
    }

    /// Phase 2 of a live group handoff: installs the ticket's state on the
    /// destination shard, flips the directory placement, retires the source
    /// copy and re-drives parked submissions toward the new owner.
    ///
    /// # Errors
    ///
    /// On a destination failure the handoff aborts internally — the source
    /// unfreezes and keeps serving the group — and the error is returned;
    /// prepare again once the destination recovers.
    pub fn handoff_commit(&mut self, ticket: HandoffTicket) -> Result<()> {
        self.core.handoff_commit(ticket)
    }

    /// Abandons a prepared handoff: the group unfreezes (durably logged) and
    /// resumes serving on its source shard; parked submissions are re-driven
    /// there.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::ShardDown`] when the source is down — its
    /// replayed freeze then outlives recovery and the group fails closed,
    /// until the next [`Cluster::handoff_prepare`] (or
    /// [`Cluster::rebalance_active`] pass) detects the orphaned freeze and
    /// lifts it automatically.
    pub fn handoff_abort(&mut self, ticket: HandoffTicket) -> Result<()> {
        self.core.handoff_abort(ticket)
    }

    // ----- invariants -------------------------------------------------------

    /// Checks the floor-state invariants on every active shard, plus the
    /// cluster-level ones: every directory entry points at an existing local
    /// group, and every global member maps to distinct local ids per shard.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> std::result::Result<(), String> {
        self.core.check_invariants()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmps_floor::Role;

    fn cluster_with_groups(
        shards: usize,
        groups: usize,
        members_per_group: usize,
        mode: FcmMode,
    ) -> (Cluster, Vec<GlobalGroupId>, Vec<Vec<GlobalMemberId>>) {
        let mut cluster = Cluster::new(ClusterConfig::with_shards(shards));
        let mut gids = Vec::new();
        let mut rosters = Vec::new();
        for g in 0..groups {
            let gid = cluster.create_group(format!("lecture-{g}"), mode).unwrap();
            let mut roster = Vec::new();
            for m in 0..members_per_group {
                let role = if m == 0 {
                    Role::Chair
                } else {
                    Role::Participant
                };
                let member = cluster.register_member(Member::new(format!("u{g}-{m}"), role));
                cluster.join_group(gid, member).unwrap();
                roster.push(member);
            }
            gids.push(gid);
            rosters.push(roster);
        }
        (cluster, gids, rosters)
    }

    #[test]
    fn groups_spread_across_shards() {
        let (cluster, gids, _) = cluster_with_groups(4, 120, 2, FcmMode::FreeAccess);
        assert_eq!(cluster.group_count(), 120);
        let mut used = std::collections::BTreeSet::new();
        for &g in &gids {
            used.insert(cluster.placement(g).unwrap().shard);
        }
        assert_eq!(used.len(), 4, "120 groups must hit all 4 shards");
        cluster.check_invariants().unwrap();
    }

    #[test]
    fn batched_flush_matches_direct_requests() {
        let (mut cluster, gids, rosters) = cluster_with_groups(3, 12, 3, FcmMode::EqualControl);
        let mut seqs = Vec::new();
        for (g, roster) in gids.iter().zip(&rosters) {
            for &m in roster {
                seqs.push(cluster.submit(GlobalRequest::speak(*g, m)).unwrap());
            }
        }
        assert_eq!(cluster.pending_requests(), 36);
        let decisions = cluster.flush();
        assert_eq!(cluster.pending_requests(), 0);
        assert_eq!(decisions.len(), 36);
        let seq_order: Vec<u64> = decisions.iter().map(|d| d.seq).collect();
        assert_eq!(seq_order, seqs, "decisions come back in submission order");
        // First requester per group granted, the rest queued.
        for (g, roster) in gids.iter().zip(&rosters) {
            let of_group: Vec<&Decision> = decisions.iter().filter(|d| d.group == *g).collect();
            assert!(matches!(
                of_group[0].outcome.as_deref(),
                Ok(ArbitrationOutcome::Granted { .. })
            ));
            for d in &of_group[1..] {
                assert!(matches!(
                    d.outcome.as_deref(),
                    Ok(ArbitrationOutcome::Queued { .. })
                ));
            }
            let placement = cluster.placement(*g).unwrap();
            let token = cluster
                .arbiter(placement.shard)
                .token(placement.local)
                .unwrap()
                .clone();
            assert_eq!(token.queue_len(), roster.len() - 1);
        }
        cluster.check_invariants().unwrap();
    }

    #[test]
    fn parallel_flush_is_equivalent_to_sequential() {
        let build = || cluster_with_groups(4, 40, 3, FcmMode::EqualControl);
        let submit_all =
            |cluster: &mut Cluster, gids: &[GlobalGroupId], rosters: &[Vec<GlobalMemberId>]| {
                for (g, roster) in gids.iter().zip(rosters) {
                    for &m in roster {
                        cluster.submit(GlobalRequest::speak(*g, m)).unwrap();
                    }
                    cluster
                        .submit(GlobalRequest::release_floor(*g, roster[0]))
                        .unwrap();
                }
            };
        let (mut sequential, gids, rosters) = build();
        submit_all(&mut sequential, &gids, &rosters);
        let seq_decisions = sequential.flush();
        let (mut parallel, gids, rosters) = build();
        submit_all(&mut parallel, &gids, &rosters);
        let par_decisions = parallel.flush_parallel();
        // `commit` is the group-commit batch boundary a decision released
        // under — a durability position, deliberately timing-dependent — so
        // equivalence is over everything but it.
        let comparable = |ds: &[Decision]| -> Vec<Decision> {
            ds.iter()
                .map(|d| Decision {
                    commit: 0,
                    epoch: 0,
                    ..d.clone()
                })
                .collect()
        };
        assert_eq!(comparable(&seq_decisions), comparable(&par_decisions));
        for (a, b) in sequential.shard_stats().iter().zip(parallel.shard_stats()) {
            assert_eq!(*a, b);
        }
        parallel.check_invariants().unwrap();
    }

    #[test]
    fn cross_shard_invitation_spawns_subgroup_elsewhere() {
        let (mut cluster, gids, rosters) = cluster_with_groups(4, 8, 4, FcmMode::FreeAccess);
        let parent = gids[0];
        let parent_shard = cluster.placement(parent).unwrap().shard;
        // Pin the sub-group to a different shard explicitly.
        let other = ShardId((parent_shard.0 + 1) % 4);
        let (sub, inv) = cluster
            .invite(
                parent,
                rosters[0][1],
                rosters[0][2],
                FcmMode::GroupDiscussion,
                Some(other),
            )
            .unwrap();
        let sub_placement = cluster.placement(sub).unwrap();
        assert_eq!(sub_placement.shard, other);
        assert_eq!(sub_placement.parent, Some(parent));
        assert_eq!(
            cluster
                .respond_invitation(inv, rosters[0][2], true)
                .unwrap(),
            InvitationStatus::Accepted
        );
        // Both parties can now speak in the sub-group on the remote shard.
        let outcome = cluster
            .request(GlobalRequest::speak(sub, rosters[0][1]))
            .unwrap();
        match outcome {
            ArbitrationOutcome::Granted { speakers, .. } => assert_eq!(speakers.len(), 2),
            other => panic!("expected grant, got {other:?}"),
        }
        // Answering twice fails; a stranger cannot answer.
        assert!(matches!(
            cluster.respond_invitation(inv, rosters[0][2], true),
            Err(ClusterError::AlreadyAnswered(_))
        ));
        // A non-member of the parent cannot be invited.
        let stranger = cluster.register_member(Member::new("x", Role::Participant));
        assert!(cluster
            .invite(
                parent,
                rosters[0][1],
                stranger,
                FcmMode::DirectContact,
                None
            )
            .is_err());
        cluster.check_invariants().unwrap();
    }

    #[test]
    fn crash_and_recovery_preserve_floor_invariants() {
        let (mut cluster, gids, rosters) = cluster_with_groups(4, 24, 4, FcmMode::EqualControl);
        // Build up token state everywhere.
        for (g, roster) in gids.iter().zip(&rosters) {
            for &m in roster {
                cluster.submit(GlobalRequest::speak(*g, m)).unwrap();
            }
        }
        cluster.flush();
        let victim = cluster.placement(gids[0]).unwrap().shard;
        let reference = cluster.arbiter(victim);
        cluster.crash_shard(victim);
        assert!(!cluster.is_shard_active(victim));
        // Requests to the dead shard fail closed.
        let d = cluster
            .submit(GlobalRequest::release_floor(gids[0], rosters[0][0]))
            .unwrap();
        let decisions = cluster.flush();
        assert_eq!(decisions[0].seq, d);
        assert!(matches!(
            decisions[0].outcome,
            Err(ClusterError::ShardDown(_))
        ));
        // Standby takeover reconstructs the exact pre-crash state.
        cluster.recover_shard(victim).unwrap();
        assert_eq!(cluster.arbiter(victim), reference);
        cluster.check_invariants().unwrap();
        // The recovered shard serves again.
        let outcome = cluster
            .request(GlobalRequest::release_floor(gids[0], rosters[0][0]))
            .unwrap();
        assert!(outcome.is_granted());
    }

    #[test]
    fn scale_out_migrates_only_idle_groups_and_reports_pinned_ones() {
        let (mut cluster, gids, rosters) = cluster_with_groups(3, 60, 2, FcmMode::EqualControl);
        // Make one third of the groups floor-active so they are pinned.
        for (g, roster) in gids.iter().zip(&rosters).take(20) {
            cluster
                .request(GlobalRequest::speak(*g, roster[0]))
                .unwrap();
        }
        let new = cluster.add_shard();
        assert_eq!(cluster.shard_count(), 4);
        let report = cluster.rebalance_idle().unwrap();
        assert!(!report.migrated.is_empty(), "some idle groups must move");
        for g in &report.migrated {
            assert_eq!(cluster.placement(*g).unwrap().shard, new);
            let roster = &rosters[g.0 as usize];
            // Members remain functional on the new shard.
            let outcome = cluster
                .request(GlobalRequest::speak(*g, roster[0]))
                .unwrap();
            assert!(outcome.is_granted());
        }
        // Active groups stayed put with their token state intact, and any of
        // them whose ring placement changed is reported as deferred rather
        // than silently skipped.
        for (g, roster) in gids.iter().zip(&rosters).take(20) {
            assert!(
                !report.migrated.contains(g),
                "active group {g} must be pinned"
            );
            let placement = cluster.placement(*g).unwrap();
            if cluster.core.directory().shard_for(g.0) != placement.shard {
                assert!(
                    report.deferred.contains(g),
                    "pinned group {g} must be reported as deferred"
                );
            }
            let token = cluster
                .arbiter(placement.shard)
                .token(placement.local)
                .unwrap()
                .clone();
            let local = cluster.local_member(roster[0], placement.shard).unwrap();
            assert_eq!(token.holder(), Some(local));
        }
        // Deferred groups migrate once their floor state quiesces.
        if let Some(&pinned) = report.deferred.first() {
            let roster = &rosters[pinned.0 as usize];
            cluster
                .request(GlobalRequest::release_floor(pinned, roster[0]))
                .unwrap();
            let second = cluster.rebalance_idle().unwrap();
            assert!(second.migrated.contains(&pinned));
            assert!(!second.deferred.contains(&pinned));
        }
        cluster.check_invariants().unwrap();
    }

    #[test]
    fn deferred_groups_migrate_after_token_release() {
        // Every group is made floor-active, so the first rebalance after
        // scale-out can move nothing: every ring-displaced group must land in
        // `deferred`. Releasing the tokens and retrying — the documented
        // contract of the `deferred` list — must then migrate exactly those
        // groups.
        let (mut cluster, gids, rosters) = cluster_with_groups(3, 40, 2, FcmMode::EqualControl);
        for (g, roster) in gids.iter().zip(&rosters) {
            cluster
                .request(GlobalRequest::speak(*g, roster[0]))
                .unwrap();
        }
        let new = cluster.add_shard();
        let report = cluster.rebalance_idle().unwrap();
        assert!(report.migrated.is_empty(), "every group is token-pinned");
        assert!(
            !report.deferred.is_empty(),
            "scale-out must displace some groups on the ring"
        );
        for g in &report.deferred {
            let roster = &rosters[g.0 as usize];
            cluster
                .request(GlobalRequest::release_floor(*g, roster[0]))
                .unwrap();
        }
        let second = cluster.rebalance_idle().unwrap();
        for g in &report.deferred {
            assert!(
                second.migrated.contains(g),
                "deferred group {g} must migrate once its token is released"
            );
            assert!(!second.deferred.contains(g));
            assert_eq!(cluster.placement(*g).unwrap().shard, new);
            // The group keeps working on its new shard.
            let roster = &rosters[g.0 as usize];
            let outcome = cluster
                .request(GlobalRequest::speak(*g, roster[1]))
                .unwrap();
            assert!(outcome.is_granted());
        }
        assert!(second.deferred.is_empty());
        cluster.check_invariants().unwrap();
    }

    #[test]
    fn live_handoff_migrates_held_token_and_queue() {
        let (mut cluster, gids, rosters) = cluster_with_groups(3, 40, 3, FcmMode::EqualControl);
        // Every group floor-active: holder + two queued requesters.
        for (g, roster) in gids.iter().zip(&rosters) {
            for &m in roster {
                cluster.request(GlobalRequest::speak(*g, m)).unwrap();
            }
        }
        let new = cluster.add_shard();
        let idle_pass = cluster.rebalance_idle().unwrap();
        assert!(idle_pass.migrated.is_empty(), "all groups token-pinned");
        assert!(!idle_pass.deferred.is_empty());
        let live_pass = cluster.rebalance_active().unwrap();
        assert_eq!(live_pass.migrated, idle_pass.deferred);
        assert!(live_pass.deferred.is_empty(), "live handoff drains it all");
        cluster.check_invariants().unwrap();
        for g in &live_pass.migrated {
            let roster = &rosters[g.0 as usize];
            let placement = cluster.placement(*g).unwrap();
            assert_eq!(placement.shard, new);
            // Token state survived the move: the original holder still holds,
            // the queue kept its FIFO order.
            let arbiter = cluster.arbiter(new);
            let token = arbiter.token(placement.local).unwrap();
            let local = |m| cluster.local_member(m, new).unwrap();
            assert_eq!(token.holder(), Some(local(roster[0])));
            assert_eq!(
                token.queue().collect::<Vec<_>>(),
                vec![local(roster[1]), local(roster[2])]
            );
            // Releasing on the new shard promotes the queued member: no lost
            // and no duplicated grant.
            let next_local = local(roster[1]);
            let next = cluster
                .request(GlobalRequest::release_floor(*g, roster[0]))
                .unwrap();
            match next {
                ArbitrationOutcome::Granted { ref speakers, .. } => {
                    assert_eq!(*speakers, vec![next_local]);
                }
                ref other => panic!("expected promotion, got {other:?}"),
            }
        }
        cluster.check_invariants().unwrap();
    }

    #[test]
    fn handoff_phases_keep_invariants_and_park_submissions() {
        let (mut cluster, gids, rosters) = cluster_with_groups(2, 20, 2, FcmMode::EqualControl);
        for (g, roster) in gids.iter().zip(&rosters) {
            cluster
                .request(GlobalRequest::speak(*g, roster[0]))
                .unwrap();
        }
        let new = cluster.add_shard();
        // Pick a group the ring wants on the new shard.
        let group = *gids
            .iter()
            .find(|g| cluster.core.directory().shard_for(g.0) == new)
            .expect("scale-out displaces some group");
        let idx = group.0 as usize;
        let source = cluster.placement(group).unwrap().shard;
        let gateway = cluster.gateway();

        let ticket = cluster.handoff_prepare(group, None).unwrap();
        assert_eq!(ticket.group(), group);
        assert_eq!(ticket.source(), source);
        assert_eq!(ticket.target(), new);
        assert_eq!(ticket.token_holder(), Some(rosters[idx][0]));
        // Invariants hold on every shard with the group frozen.
        cluster.check_invariants().unwrap();
        // A second prepare is refused while the first is outstanding.
        assert!(matches!(
            cluster.handoff_prepare(group, None),
            Err(ClusterError::GroupFrozen(_))
        ));
        // Synchronous requests fail fast during the frozen window...
        assert!(matches!(
            cluster.request(GlobalRequest::release_floor(group, rosters[idx][0])),
            Err(ClusterError::GroupFrozen(_))
        ));
        // ...and so do membership mutations — a join or leave slipping into
        // the window would be lost (or resurrected) by the commit's
        // install/purge.
        let newcomer = cluster.register_member(Member::new("late", Role::Participant));
        assert!(matches!(
            cluster.join_group(group, newcomer),
            Err(ClusterError::GroupFrozen(_))
        ));
        assert!(matches!(
            cluster.leave_group(group, rosters[idx][1]),
            Err(ClusterError::GroupFrozen(_))
        ));
        // ...while streamed submissions park (no decision yet).
        let parked_seq = gateway
            .submit(GlobalRequest::speak(group, rosters[idx][1]))
            .unwrap();
        let parked_session = gateway
            .submit_session(SessionOp::chat(group, rosters[idx][0], "mid-handoff"))
            .unwrap();
        assert!(gateway.try_recv_decision().is_none(), "frozen: parked");

        cluster.handoff_commit(ticket).unwrap();
        cluster.check_invariants().unwrap();
        assert_eq!(cluster.placement(group).unwrap().shard, new);
        // The parked floor request was re-driven to the new owner: the
        // holder migrated with the group, so the student queues behind them.
        let decision = gateway.recv_decision().unwrap();
        assert_eq!(decision.seq, parked_seq);
        assert!(matches!(
            decision.outcome.as_deref(),
            Ok(ArbitrationOutcome::Queued { .. })
        ));
        // The parked chat line was re-driven too and delivered under the
        // migrated token.
        let session_decision = gateway.recv_session_decision().unwrap();
        assert_eq!(session_decision.seq, parked_session);
        assert!(session_decision.outcome.unwrap().is_delivered());
        assert_eq!(cluster.session_view(group).unwrap().chat.len(), 1);
        // The source husk is empty and unfrozen; its view reflects that.
        assert_eq!(cluster.shard_view(source).frozen_groups, 0);
        cluster.check_invariants().unwrap();
    }

    #[test]
    fn chair_survives_live_handoff_even_via_the_join_path() {
        let mut cluster = Cluster::new(ClusterConfig::with_shards(2));
        let g = cluster
            .create_group("lecture", FcmMode::EqualControl)
            .unwrap();
        let chair = cluster.register_member(Member::new("chair", Role::Chair));
        let other = cluster.register_member(Member::new("p", Role::Participant));
        cluster.join_group(g, chair).unwrap();
        cluster.join_group(g, other).unwrap();
        let source = cluster.placement(g).unwrap().shard;
        let target = ShardId((source.0 + 1) % 2);
        // Instantiate the chair member on the target shard beforehand (via a
        // pinned sub-group), so the handoff install adds them with JoinGroup
        // — the path that never elects a chair by role.
        cluster
            .invite(g, chair, other, FcmMode::GroupDiscussion, Some(target))
            .unwrap();
        cluster.request(GlobalRequest::speak(g, chair)).unwrap();
        let ticket = cluster.handoff_prepare(g, Some(target)).unwrap();
        cluster.handoff_commit(ticket).unwrap();
        let placement = cluster.placement(g).unwrap();
        assert_eq!(placement.shard, target);
        let local_chair = cluster.local_member(chair, target).unwrap();
        assert_eq!(
            cluster
                .arbiter(target)
                .group(placement.local)
                .unwrap()
                .chair,
            Some(local_chair),
            "the migrated group must keep its session chair"
        );
        cluster.check_invariants().unwrap();
    }

    #[test]
    fn handoff_commit_aborts_cleanly_when_destination_is_down() {
        let (mut cluster, gids, rosters) = cluster_with_groups(2, 20, 2, FcmMode::EqualControl);
        for (g, roster) in gids.iter().zip(&rosters) {
            cluster
                .request(GlobalRequest::speak(*g, roster[0]))
                .unwrap();
        }
        let new = cluster.add_shard();
        let group = *gids
            .iter()
            .find(|g| cluster.core.directory().shard_for(g.0) == new)
            .expect("scale-out displaces some group");
        let idx = group.0 as usize;
        let source = cluster.placement(group).unwrap().shard;

        let ticket = cluster.handoff_prepare(group, None).unwrap();
        // The destination dies between the phases.
        cluster.crash_shard(new);
        let err = cluster.handoff_commit(ticket).unwrap_err();
        assert!(matches!(err, ClusterError::ShardDown(s) if s == new));
        // The abort path unfroze the source: the group serves there again
        // with its token state untouched.
        assert_eq!(cluster.placement(group).unwrap().shard, source);
        assert_eq!(cluster.shard_view(source).frozen_groups, 0);
        let outcome = cluster
            .request(GlobalRequest::release_floor(group, rosters[idx][0]))
            .unwrap();
        assert!(outcome.is_granted());
        cluster.check_invariants().unwrap();
        // After the destination recovers, the handoff succeeds.
        cluster.recover_shard(new).unwrap();
        cluster
            .request(GlobalRequest::speak(group, rosters[idx][1]))
            .unwrap();
        let report = cluster.rebalance_active().unwrap();
        assert!(report.migrated.contains(&group));
        assert_eq!(cluster.placement(group).unwrap().shard, new);
        cluster.check_invariants().unwrap();
    }

    #[test]
    fn explicit_abort_resumes_the_source() {
        let (mut cluster, gids, rosters) = cluster_with_groups(2, 10, 2, FcmMode::EqualControl);
        let group = gids[0];
        cluster
            .request(GlobalRequest::speak(group, rosters[0][0]))
            .unwrap();
        let source = cluster.placement(group).unwrap().shard;
        let other = ShardId((source.0 + 1) % 2);
        let gateway = cluster.gateway();
        let ticket = cluster.handoff_prepare(group, Some(other)).unwrap();
        let parked = gateway
            .submit(GlobalRequest::speak(group, rosters[0][1]))
            .unwrap();
        cluster.handoff_abort(ticket).unwrap();
        // The group never moved; the parked request was re-driven to the
        // source and queued behind the untouched holder.
        assert_eq!(cluster.placement(group).unwrap().shard, source);
        let decision = gateway.recv_decision().unwrap();
        assert_eq!(decision.seq, parked);
        assert!(matches!(
            decision.outcome.as_deref(),
            Ok(ArbitrationOutcome::Queued { .. })
        ));
        // Handoff toward the current owner is refused outright.
        assert!(matches!(
            cluster.handoff_prepare(group, Some(source)),
            Err(ClusterError::HandoffUnnecessary(_))
        ));
        cluster.check_invariants().unwrap();
    }

    #[test]
    fn orphaned_freeze_is_lifted_by_the_next_prepare() {
        let (mut cluster, gids, rosters) = cluster_with_groups(2, 10, 2, FcmMode::EqualControl);
        let group = gids[0];
        cluster
            .request(GlobalRequest::speak(group, rosters[0][0]))
            .unwrap();
        let source = cluster.placement(group).unwrap().shard;
        let other = ShardId((source.0 + 1) % 2);
        let ticket = cluster.handoff_prepare(group, Some(other)).unwrap();
        // The source dies before an abort can be logged: the ticket is
        // consumed, the routing freeze lifts, but the durable shard-level
        // freeze outlives recovery — the group fails closed...
        cluster.crash_shard(source);
        assert!(matches!(
            cluster.handoff_abort(ticket),
            Err(ClusterError::ShardDown(_))
        ));
        cluster.recover_shard(source).unwrap();
        assert_eq!(cluster.shard_view(source).frozen_groups, 1);
        assert!(matches!(
            cluster.request(GlobalRequest::speak(group, rosters[0][1])),
            Err(ClusterError::GroupFrozen(_))
        ));
        // ...until the next prepare detects the orphaned freeze, lifts it,
        // and the handoff completes — the group cannot stay wedged forever.
        let ticket = cluster.handoff_prepare(group, Some(other)).unwrap();
        cluster.handoff_commit(ticket).unwrap();
        let placement = cluster.placement(group).unwrap();
        assert_eq!(placement.shard, other);
        assert_eq!(cluster.shard_view(source).frozen_groups, 0);
        let holder_local = cluster.local_member(rosters[0][0], other).unwrap();
        assert_eq!(
            cluster
                .arbiter(other)
                .token(placement.local)
                .unwrap()
                .holder(),
            Some(holder_local),
            "the held token survived the crash-interrupted handoff"
        );
        cluster.check_invariants().unwrap();
    }

    #[test]
    fn dedup_journal_survives_a_live_handoff() {
        let (mut cluster, gids, rosters) = cluster_with_groups(3, 40, 2, FcmMode::EqualControl);
        // Journal a speak per group and keep every token held (floor-active).
        let mut speak_seqs = std::collections::BTreeMap::new();
        for (g, roster) in gids.iter().zip(&rosters) {
            let speak = GlobalRequest::speak(*g, roster[0]);
            speak_seqs.insert(*g, (cluster.submit(speak).unwrap(), speak));
        }
        let originals: std::collections::BTreeMap<u64, Decision> =
            cluster.flush().into_iter().map(|d| (d.seq, d)).collect();
        cluster.add_shard();
        let report = cluster.rebalance_active().unwrap();
        assert!(!report.migrated.is_empty());
        assert!(report.deferred.is_empty());
        let gateway = cluster.gateway();
        for g in &report.migrated {
            let (seq, speak) = speak_seqs[g];
            // A gateway retry of the pre-handoff id replays from the journal
            // slice that moved with the group — the speak is not re-applied,
            // so the holder's grant count cannot double.
            gateway.resubmit(seq, speak).unwrap();
            let retry = gateway.recv_decision().unwrap();
            assert_eq!(retry.seq, seq);
            assert!(retry.replayed, "journal slice for {g} must have migrated");
            assert_eq!(retry.outcome, originals[&seq].outcome);
        }
        cluster.check_invariants().unwrap();
    }

    #[test]
    fn session_state_and_journal_follow_rebalanced_groups() {
        let (mut cluster, gids, rosters) = cluster_with_groups(3, 60, 2, FcmMode::FreeAccess);
        let mut seqs = std::collections::BTreeMap::new();
        for (g, roster) in gids.iter().zip(&rosters) {
            let seq = cluster.allocate_request_id();
            let (outcome, replayed) = cluster
                .session_with_id(seq, SessionOp::chat(*g, roster[0], "before the move"))
                .unwrap();
            assert!(outcome.is_delivered() && !replayed);
            seqs.insert(*g, (seq, roster[0]));
        }
        cluster.add_shard();
        let report = cluster.rebalance_idle().unwrap();
        assert!(!report.migrated.is_empty());
        for g in &report.migrated {
            // The content followed the group to its new shard...
            let view = cluster.session_view(*g).unwrap();
            assert_eq!(view.chat.len(), 1, "chat log must follow {g}");
            // ...and so did its slice of the session decision journal: a
            // gateway retry of the pre-migration id replays instead of
            // appending the line twice.
            let (seq, member) = seqs[g];
            let (outcome, replayed) = cluster
                .session_with_id(seq, SessionOp::chat(*g, member, "before the move"))
                .unwrap();
            assert!(replayed, "session journal entry for {g} must have migrated");
            assert!(outcome.is_delivered());
            assert_eq!(cluster.session_view(*g).unwrap().chat.len(), 1);
        }
        cluster.check_invariants().unwrap();
    }

    #[test]
    fn dedup_journal_migrates_with_rebalanced_groups() {
        let (mut cluster, gids, rosters) = cluster_with_groups(3, 60, 2, FcmMode::EqualControl);
        // Decide (and journal) a speak + release per group, then let every
        // group go idle so rebalancing can move it.
        let mut speak_seqs = std::collections::BTreeMap::new();
        for (g, roster) in gids.iter().zip(&rosters) {
            let speak = GlobalRequest::speak(*g, roster[0]);
            speak_seqs.insert(*g, (cluster.submit(speak).unwrap(), speak));
            cluster
                .submit(GlobalRequest::release_floor(*g, roster[0]))
                .unwrap();
        }
        let originals: std::collections::BTreeMap<u64, Decision> =
            cluster.flush().into_iter().map(|d| (d.seq, d)).collect();
        cluster.add_shard();
        let report = cluster.rebalance_idle().unwrap();
        assert!(!report.migrated.is_empty());
        // Retrying a pre-migration request id must replay the journaled
        // decision from the group's *new* shard, not re-apply the speak —
        // re-applying would re-grant the (released) floor.
        let gateway = cluster.gateway();
        for g in &report.migrated {
            let (seq, speak) = speak_seqs[g];
            gateway.resubmit(seq, speak).unwrap();
            let retry = gateway.recv_decision().unwrap();
            assert_eq!(retry.seq, seq);
            assert!(retry.replayed, "journal entry for {g} must have migrated");
            assert_eq!(retry.outcome, originals[&seq].outcome);
            // The floor really was not re-granted.
            let placement = cluster.placement(*g).unwrap();
            let arbiter = cluster.arbiter(placement.shard);
            assert_eq!(arbiter.token(placement.local).unwrap().holder(), None);
        }
        cluster.check_invariants().unwrap();
    }
}
