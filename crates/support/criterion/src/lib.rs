//! Minimal stand-in for `criterion` so the benches build and run offline.
//!
//! It implements the subset of the criterion API the workspace benches use —
//! `Criterion`, `BenchmarkGroup`, `BenchmarkId`, `Throughput`, `Bencher`,
//! `black_box`, `criterion_group!` and `criterion_main!` — with a simple
//! measured loop: a short warm-up, then timed batches, reporting the mean
//! iteration time and derived throughput on stdout.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising a value away.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A case identified by function name + parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }

    /// A case identified by its parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// The measurement driver handed to benchmark closures.
pub struct Bencher {
    mean: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs the closure repeatedly and records the mean iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until ~50 ms or 10 iterations, whichever first.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_iters < 10 && warm_start.elapsed() < Duration::from_millis(50) {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        // Measure: aim for ~200 ms of work, 5..=200 iterations.
        let target = (0.2 / per_iter.max(1e-9)) as u64;
        let iters = target.clamp(5, 200);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let elapsed = start.elapsed();
        self.mean = elapsed / iters as u32;
        self.iters = iters;
    }
}

fn report(group: &str, id: &str, mean: Duration, throughput: Option<Throughput>) {
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let per_sec = if mean.as_nanos() == 0 {
        f64::INFINITY
    } else {
        1e9 / mean.as_nanos() as f64
    };
    match throughput {
        Some(Throughput::Elements(n)) => println!(
            "bench {label:<48} mean {mean:>12?}  {:>14.1} elem/s",
            per_sec * n as f64
        ),
        Some(Throughput::Bytes(n)) => println!(
            "bench {label:<48} mean {mean:>12?}  {:>14.1} B/s",
            per_sec * n as f64
        ),
        None => println!("bench {label:<48} mean {mean:>12?}  {per_sec:>14.1} iter/s"),
    }
}

/// A named group of related benchmark cases.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the criterion sample size (accepted for API compatibility).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time (accepted for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotates subsequent cases with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks a closure with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            mean: Duration::ZERO,
            iters: 0,
        };
        f(&mut b, input);
        report(&self.name, &id.to_string(), b.mean, self.throughput);
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            mean: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        report(&self.name, &id.to_string(), b.mean, self.throughput);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmarks a single closure.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            mean: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        report("", &id.to_string(), b.mean, None);
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
