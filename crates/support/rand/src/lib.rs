//! Minimal, deterministic stand-in for the `rand` crate.
//!
//! The build container has no crates.io access, so this vendored crate
//! provides exactly the API subset the workspace uses: `rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] methods `gen`, `gen_bool`
//! and `gen_range`. The generator is splitmix64 feeding xoshiro256++ — not
//! cryptographic, but high-quality and fully deterministic in the seed, which
//! is the property the simulator relies on.

#![forbid(unsafe_code)]

/// Core entropy source: yields raw 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from raw bits (the subset of
/// `rand::distributions::Standard` the workspace needs).
pub trait Standard: Sized {
    /// Draws one value from the source.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled from (the subset of `rand`'s `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for ::std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for ::std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as u128) - (start as u128) + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % span as u64) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for ::std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for ::std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128 + 1) as u64;
                (start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}

signed_sample_range!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for ::std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

/// The user-facing random-value interface.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample(self) < p
    }

    /// Draws a value uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator seeded via splitmix64 — the
    /// stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_the_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..16).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen::<u64>()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.gen::<u64>()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn unit_float_is_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1_000 {
            let v = rng.gen_range(3usize..9);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(0u64..=5);
            assert!(w <= 5);
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits = {hits}");
    }
}
