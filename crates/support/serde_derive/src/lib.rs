//! No-op derive macros standing in for `serde_derive`.
//!
//! The workspace's actual serialization (arbiter snapshots, event logs,
//! traces) goes through the hand-written `dmps-wire` codec; the
//! `#[derive(Serialize, Deserialize)]` attributes in the seed code are kept
//! for API compatibility and expand to nothing here.

use proc_macro::TokenStream;

/// Expands to nothing; kept so `#[derive(Serialize)]` compiles offline.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; kept so `#[derive(Deserialize)]` compiles offline.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
