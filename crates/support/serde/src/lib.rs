//! Minimal stand-in for `serde` so the workspace builds offline.
//!
//! The derive macros re-exported here expand to nothing; real serialization
//! in this repository is done by the hand-written `dmps-wire` codec (see
//! `crates/wire`), which the arbiter snapshot/event-log machinery uses.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no implementations needed —
/// the no-op derive does not generate any).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
