//! Minimal property-testing harness with a `proptest`-compatible API subset.
//!
//! The build container has no crates.io access, so this vendored crate
//! implements the pieces of proptest the workspace tests use: the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map`, range / tuple /
//! `Just` / boolean / `collection::vec` strategies, the `proptest!`,
//! `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!` and `prop_oneof!`
//! macros and [`ProptestConfig`]. Shrinking is not implemented: a failing
//! case reports its case number and the (deterministic) per-test seed, so
//! failures reproduce exactly on re-run.

#![forbid(unsafe_code)]

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving value generation (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds a generator from an explicit seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Builds the deterministic per-test generator from the test's full path,
    /// so every test has a distinct but reproducible stream.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::from_seed(h)
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A float uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A usize uniform in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
}

/// A failed property within a test case.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Result alias used by generated test bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Harness configuration (`cases` is the number of generated inputs).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 48 }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value and samples it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Boxes the strategy behind a trait object.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed strategy trait object.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (**self).new_value(rng)
    }
}

/// Always produces a clone of the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// Uniform choice between boxed strategies (backs `prop_oneof!`).
pub struct Union<T> {
    choices: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `choices` is empty.
    pub fn new(choices: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one choice");
        Union { choices }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let idx = rng.usize_in(0, self.choices.len());
        self.choices[idx].new_value(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty => $cast:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as $cast).wrapping_sub(self.start as $cast) as u64;
                (self.start as $cast).wrapping_add((rng.next_u64() % span) as $cast) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as $cast).wrapping_sub(start as $cast) as u64 + 1;
                (start as $cast).wrapping_add((rng.next_u64() % span) as $cast) as $t
            }
        }
    )*};
}

int_range_strategy!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! tuple_strategy {
    ($($name:ident)+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A B);
tuple_strategy!(A B C);
tuple_strategy!(A B C D);
tuple_strategy!(A B C D E);
tuple_strategy!(A B C D E F);

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// The type of [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{PhantomData, Range, RangeInclusive, Strategy, TestRng};

    /// Length specification for [`vec()`]: an exact length or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy producing vectors of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
        _marker: PhantomData<()>,
    }

    /// Vectors with lengths drawn from `size` and elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
            _marker: PhantomData,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 == self.size.hi {
                self.size.lo
            } else {
                rng.usize_in(self.size.lo, self.size.hi)
            };
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Everything a test file needs.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult, TestRng,
    };
}

/// Declares property tests.
///
/// Supports the proptest surface used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     #[test]
///     fn my_property(x in 0usize..10, flag in proptest::bool::ANY) {
///         prop_assert!(x < 10 || flag);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::std::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::new_value(&($strat), &mut rng);)*
                let result: $crate::TestCaseResult = (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = result {
                    panic!(
                        "property `{}` failed at case {}/{}: {}",
                        stringify!($name), case + 1, config.cases, e
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(
                    *left == *right,
                    "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
                    stringify!($left), stringify!($right), left, right
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (left, right) => {
                if !(*left == *right) {
                    return ::std::result::Result::Err($crate::TestCaseError(format!(
                        "{} (left: `{:?}`, right: `{:?}`)",
                        format!($($fmt)*), left, right
                    )));
                }
            }
        }
    };
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(
                    *left != *right,
                    "assertion failed: `{} != {}` (both: `{:?}`)",
                    stringify!($left),
                    stringify!($right),
                    left
                );
            }
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let choices: ::std::vec::Vec<::std::boxed::Box<dyn $crate::Strategy<Value = _>>> =
            vec![$(::std::boxed::Box::new($strategy)),+];
        $crate::Union::new(choices)
    }};
}

#[cfg(test)]
mod tests {
    use crate as proptest;
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_are_bounded(x in 3usize..9, y in -4i32..4, f in 0.25f64..0.75) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-4..4).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_spec(
            v in proptest::collection::vec(0u64..10, 2..5),
            exact in proptest::collection::vec(proptest::bool::ANY, 3usize),
        ) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert_eq!(exact.len(), 3);
        }

        #[test]
        fn oneof_and_map_compose(
            m in prop_oneof![Just(1u8), Just(2u8)],
            s in (0u64..5, 0u64..5).prop_map(|(a, b)| a + b),
        ) {
            prop_assert!(m == 1 || m == 2);
            prop_assert!(s < 10);
            prop_assert_ne!(m, 0);
        }
    }

    #[test]
    fn per_test_rng_is_deterministic() {
        let mut a = TestRng::for_test("x::y");
        let mut b = TestRng::for_test("x::y");
        let mut c = TestRng::for_test("x::z");
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }
}
