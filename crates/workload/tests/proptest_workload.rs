//! Property-based tests over the macro-workload trace generator.
//!
//! Two families of properties:
//!
//! * **Determinism** — a [`WorkloadSpec`] is a pure function of its fields:
//!   the same seed yields a byte-identical wire encoding, and distinct
//!   seeds diverge.
//! * **Well-formedness** — every generated trace, across arbitrary spec
//!   shapes, passes [`Trace::check_well_formed`] and a set of independent
//!   structural checks (no op from a member outside the roster, releases
//!   balance grants via the model re-derivation, breakout spawns reference
//!   live parents that appear earlier in the group list).

use std::collections::HashSet;

use dmps_workload::{generate, Archetype, ArchetypeMix, OpKind, WorkloadSpec};
use proptest::prelude::*;

/// An arbitrary-but-sane spec: small enough that hundreds of cases stay
/// fast, varied enough to exercise every generator branch.
fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    (
        0u64..1 << 48,
        4u32..40,
        1u32..14,
        (0.0f64..0.9, 8u16..120),
        (0u8..30, 0u8..30, 0u8..30),
    )
        .prop_map(
            |(seed, top_groups, ops_per_group, (burstiness, max_payload), mix)| {
                WorkloadSpec {
                    seed,
                    top_groups,
                    // Leftover percent falls to seminar, so any triple is valid.
                    mix: ArchetypeMix {
                        lecture: mix.0,
                        seminar: 40,
                        panel: mix.1,
                        breakout: mix.2,
                    },
                    ops_per_group,
                    virtual_window_ns: 30_000_000_000,
                    burstiness,
                    payload: (4, max_payload.max(5)),
                    lecture_size: (4, 9),
                    seminar_size: (3, 6),
                    panel_size: (4, 7),
                    breakout_size: (5, 9),
                    breakout_spawns: (1, 3),
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Same spec ⇒ byte-identical trace: generation is a pure function of
    /// the spec, independent of process state or call order.
    #[test]
    fn same_seed_is_byte_identical(spec in arb_spec()) {
        let a = generate(&spec);
        let b = generate(&spec);
        prop_assert_eq!(a.encode_wire(), b.encode_wire());
        prop_assert_eq!(a.groups.len(), b.groups.len());
        prop_assert_eq!(a.ops.len(), b.ops.len());
    }

    /// Distinct seeds with otherwise equal specs diverge — the seed really
    /// reaches every derived stream.
    #[test]
    fn distinct_seeds_diverge(spec in arb_spec()) {
        let mut other = spec.clone();
        other.seed = spec.seed.wrapping_add(1);
        let a = generate(&spec);
        let b = generate(&other);
        prop_assert_ne!(a.encode_wire(), b.encode_wire());
    }

    /// Every generated trace is well-formed: times monotone, members on
    /// the roster, expectations re-derivable from the reference token
    /// model, releases balanced by acquisitions, sub-groups spawned
    /// exactly once before their first op.
    #[test]
    fn generated_traces_are_well_formed(spec in arb_spec()) {
        let trace = generate(&spec);
        if let Err(e) = trace.check_well_formed() {
            return Err(TestCaseError(format!("seed {}: {e}", spec.seed)));
        }
    }

    /// No floor (or session) op is attributed to a member outside the
    /// group's roster — checked directly, independent of the model pass.
    #[test]
    fn ops_only_come_from_roster_members(spec in arb_spec()) {
        let trace = generate(&spec);
        for op in &trace.ops {
            let group = &trace.groups[op.group as usize];
            prop_assert!(
                op.member < group.members,
                "op by member {} but group {} has {} seats",
                op.member, op.group, group.members
            );
            if let OpKind::Pass { to } = op.kind {
                prop_assert!(to < group.members);
            }
        }
    }

    /// Breakout spawns reference live parents: every sub-group's parent is
    /// an earlier, non-sub breakout plenary, and every spawn op's target
    /// agrees with the sub-group's own parent link.
    #[test]
    fn spawns_reference_live_parents(spec in arb_spec()) {
        let trace = generate(&spec);
        for (i, g) in trace.groups.iter().enumerate() {
            if let Some((parent, inviter, invitee)) = g.parent {
                let p = &trace.groups[parent as usize];
                prop_assert!((parent as usize) < i, "parent after sub-group");
                prop_assert!(p.parent.is_none(), "parent is itself a sub-group");
                prop_assert_eq!(p.archetype, Archetype::Breakout);
                prop_assert!(inviter < p.members);
                prop_assert!(invitee < p.members);
                prop_assert_ne!(inviter, invitee);
            }
        }
        let mut spawned: HashSet<u32> = HashSet::new();
        for op in &trace.ops {
            if let OpKind::Spawn { sub } = op.kind {
                let link = trace.groups[sub as usize].parent;
                prop_assert_eq!(link.map(|(p, _, _)| p), Some(op.group));
                prop_assert!(spawned.insert(sub), "sub-group spawned twice");
            }
        }
        let subs = trace.groups.iter().filter(|g| g.parent.is_some()).count();
        prop_assert_eq!(spawned.len(), subs, "every sub-group is spawned");
    }

    /// Trace accounting is internally consistent: streamed + control ops
    /// partition the op list, per-archetype counts sum to the streamed
    /// total, and memberships cover every roster seat.
    #[test]
    fn trace_accounting_is_consistent(spec in arb_spec()) {
        let trace = generate(&spec);
        let spawns = trace
            .ops
            .iter()
            .filter(|op| matches!(op.kind, OpKind::Spawn { .. }))
            .count();
        prop_assert_eq!(trace.streamed_ops() + spawns, trace.ops.len());
        let per_arch: u64 = trace.ops_per_archetype().iter().sum();
        prop_assert_eq!(per_arch, trace.streamed_ops() as u64);
        let seats: u64 = trace.groups.iter().map(|g| u64::from(g.members)).sum();
        prop_assert_eq!(trace.memberships(), seats);
    }
}
