//! # dmps-workload
//!
//! A deterministic macro-workload harness for the sharded DMPS floor-control
//! cluster: seeded, realistic session traces — replayed against the real
//! batched gateway pipelines — with latency, throughput and memory-per-group
//! axes, doubling as an end-to-end correctness rig.
//!
//! The micro-benches measure hot paths with synthetic uniform load; this
//! crate answers the capacity question the paper's CWcollab deployment
//! raises at cluster scale: *what does a production-shaped population of
//! presentation sessions cost?* A [`WorkloadSpec`] expands (pure function of
//! its seed) into a [`Trace`] over four session archetypes:
//!
//! * **lecture** — one speaker, a large audience, rare floor churn;
//! * **seminar** — churny request / release / pass floor traffic;
//! * **panel** — chair-moderated grant queues;
//! * **breakout** — free-access plenaries mass-spawning private
//!   sub-sessions through cross-shard invitations;
//!
//! with exponential / bursty virtual-time arrivals. Every trace op is
//! stamped with the outcome the cluster must produce (derived from a
//! reference [`GroupModel`] of the token semantics), so the replayer
//! ([`replay()`]) verifies **every streamed decision** and the final
//! per-group content counts — exactly-once accounting — while it measures:
//!
//! * throughput and sampled submit→decision latency histograms (overall,
//!   grant-path and session, plus per archetype);
//! * memory per group, from both RSS probes ([`rss`]) and the cluster's
//!   deterministic per-shard state-byte accounting
//!   ([`ShardView`](dmps_cluster::ShardView) byte fields);
//! * ingest-queue peaks and depth time-series coverage.
//!
//! A [`CrashPlan`] turns a replay into a failover drill: a shard is killed
//! and recovered mid-storm and every in-flight op must still resolve to
//! exactly one decision with the stamped outcome.
//!
//! ```
//! use dmps_workload::{generate, replay, ReplayOptions, WorkloadSpec};
//!
//! let trace = generate(&WorkloadSpec::small(42));
//! trace.check_well_formed().unwrap();
//! let report = replay(&trace, &ReplayOptions::new(2));
//! assert!(report.is_clean());
//! assert_eq!(report.streamed_ops as usize, trace.streamed_ops());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;
pub mod model;
pub mod replay;
pub mod rss;
pub mod spec;
pub mod trace;

pub use gen::generate;
pub use model::GroupModel;
pub use replay::{
    replay, ArchetypeReport, CrashPlan, FaultAction, FaultPlan, ReplayOptions, ReplayReport,
    StateBytes,
};
pub use spec::{Archetype, ArchetypeMix, WorkloadSpec};
pub use trace::{payload_text, Expect, OpKind, Trace, TraceGroup, TraceOp};
