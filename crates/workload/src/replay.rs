//! The replayer: drives a [`Trace`] through the cluster's batched gateway
//! pipelines and verifies every decision plus the final session state.
//!
//! Replay preserves per-group operation order — the property that makes
//! every streamed decision individually checkable against the trace's
//! stamped expectation. The shard ingest queue is one FIFO shared by floor
//! and session commands, so per-group order holds as long as a group's ops
//! are submitted by one gateway in trace order. The driver therefore:
//!
//! * partitions groups over gateways by top-level ancestor (a breakout
//!   sub-session always rides its parent's gateway), and
//! * keeps **two batch buffers per driver** (floor / session) with the
//!   invariant that at most one buffer ever holds ops for a given group —
//!   buffering an op whose *other-kind* buffer mentions its group first
//!   flushes that buffer.
//!
//! Latency is sampled one-in-K ops from batch submit to decision receipt and
//! recorded into lock-free [`Histogram`]s (overall and per archetype).
//!
//! With a [`CrashPlan`] the driver kills and recovers a shard mid-storm,
//! then leans on the cluster's exactly-one-decision contract: every
//! in-flight op resolves to either its real decision or a `ShardDown`
//! error, and errored ops are resubmitted *in ascending request-id order*
//! (= original per-group order) under their original ids, so the dedup
//! window replays anything that already committed instead of
//! double-applying.

use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

use dmps_cluster::{
    Cluster, ClusterConfig, ClusterError, CorruptionTarget, Decision, Gateway, GlobalGroupId,
    GlobalMemberId, GlobalRequest, SessionDecision, SessionOp, SessionOutcome, SessionRejection,
    ShardId,
};
use dmps_floor::{ArbitrationOutcome, FcmMode, Member, Role};
use dmps_simnet::SimTime;
use dmps_telemetry::Histogram;

use crate::rss;
use crate::trace::{payload_text, Expect, OpKind, Trace};

/// Kill one shard mid-replay (single-gateway mode only) and recover it
/// immediately, forcing the exactly-once retry path for every in-flight op.
#[derive(Debug, Clone, Copy)]
pub struct CrashPlan {
    /// Index into `trace.ops` at which to crash.
    pub at_op: usize,
    /// The shard to kill.
    pub shard: usize,
}

impl CrashPlan {
    /// A rolling crash schedule: `count` crashes evenly spaced over
    /// `total_ops`, rotating round-robin across `shards` shards — the soak
    /// shape where every shard dies and recovers repeatedly while the trace
    /// is in flight.
    pub fn rolling(count: usize, total_ops: usize, shards: usize) -> Vec<CrashPlan> {
        assert!(shards > 0);
        let stride = total_ops / (count + 1).max(1);
        (0..count)
            .map(|i| CrashPlan {
                at_op: stride * (i + 1),
                shard: i % shards,
            })
            .collect()
    }
}

/// What a scheduled fault-plane event does to its shard (see [`FaultPlan`]).
#[derive(Debug, Clone, Copy)]
pub enum FaultAction {
    /// Partition the shard's leader away from its whole follower fleet
    /// through the worker's non-barrier fault path — writes already shipped
    /// stay parked mid-quorum-write under the partition. The choreography
    /// then forces the leader to settle (it burns its stall budget, answers
    /// every parked decision `ShardDown` and demotes itself), heals the
    /// partition, and promotes a follower under a bumped epoch; the errored
    /// ops resubmit exactly-once through the reconciled dedup journals.
    IsolateLeader,
    /// Silently corrupt one durable artifact of the shard, then crash and
    /// recover it so the damage is actually read: promotion's checksum
    /// verification detects the rot and repairs the new leader from the
    /// replica quorum.
    Corrupt(CorruptionTarget),
}

/// One scheduled fault-plane event in a replay (single-gateway mode, like
/// [`CrashPlan`]). Requires a replicated cluster (`replicas` ≥ 2): both
/// actions lean on the follower quorum to fail over or repair.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Index into `trace.ops` at which to inject.
    pub at_op: usize,
    /// The shard to target.
    pub shard: usize,
    /// What to do to it.
    pub action: FaultAction,
}

impl FaultPlan {
    /// A rolling chaos schedule: `count` faults evenly spaced over
    /// `total_ops`, rotating round-robin across `shards` shards and cycling
    /// through leader partitions and corruption of every checksummed
    /// artifact class — the chaos-soak shape, designed to ride alongside
    /// [`CrashPlan::rolling`] on the same replay.
    pub fn rolling(count: usize, total_ops: usize, shards: usize) -> Vec<FaultPlan> {
        assert!(shards > 0);
        let stride = total_ops / (count + 1).max(1);
        (0..count)
            .map(|i| FaultPlan {
                at_op: stride * (i + 1),
                shard: i % shards,
                action: match i % 4 {
                    0 => FaultAction::IsolateLeader,
                    1 => FaultAction::Corrupt(CorruptionTarget::SealedSegment),
                    2 => FaultAction::Corrupt(CorruptionTarget::SnapshotBase),
                    _ => FaultAction::Corrupt(CorruptionTarget::SnapshotDelta),
                },
            })
            .collect()
    }
}

/// How to replay a trace.
#[derive(Debug, Clone)]
pub struct ReplayOptions {
    /// Shard count for the cluster.
    pub shards: usize,
    /// Followers per shard (0 = unreplicated). With replicas, crash
    /// recovery goes through follower promotion instead of snapshot+log
    /// replay.
    pub replicas: usize,
    /// Concurrent driver threads, each with its own gateway (groups are
    /// partitioned by top-level ancestor). Must be 1 when `crashes` is
    /// non-empty.
    pub gateways: usize,
    /// Ops buffered per kind before a vectored submit.
    pub flush_batch: usize,
    /// Sample one in this many ops for end-to-end latency (0 = never).
    pub latency_sample_every: usize,
    /// Mid-replay crash/recovery schedule ([`CrashPlan::rolling`] builds the
    /// soak shape; one entry is the single-crash drill).
    pub crashes: Vec<CrashPlan>,
    /// Mid-replay fault-plane schedule: leader partitions and silent
    /// corruption ([`FaultPlan::rolling`] builds the chaos-soak shape).
    /// Single-gateway mode only, and needs `replicas` ≥ 2.
    pub faults: Vec<FaultPlan>,
    /// How many groups to verify end-state content counts for (0 = all),
    /// stride-sampled across the group list.
    pub verify_groups: usize,
}

impl ReplayOptions {
    /// Sensible defaults over `shards` shards: one driver, 512-op batches,
    /// 1-in-64 latency sampling, no crashes, full end-state verification.
    pub fn new(shards: usize) -> Self {
        ReplayOptions {
            shards,
            replicas: 0,
            gateways: 1,
            flush_batch: 512,
            latency_sample_every: 64,
            crashes: Vec::new(),
            faults: Vec::new(),
            verify_groups: 0,
        }
    }
}

/// Outcome counters and sampled latency for one archetype.
#[derive(Default)]
pub struct ArchetypeReport {
    /// Streamed ops replayed for this archetype.
    pub ops: u64,
    /// Floor grants observed.
    pub granted: u64,
    /// Floor queueings observed.
    pub queued: u64,
    /// Floor denials observed.
    pub denied: u64,
    /// Session deliveries observed.
    pub delivered: u64,
    /// Floor-rejected session content observed.
    pub rejected: u64,
    /// Sampled end-to-end latency (ns).
    pub latency: Histogram,
}

/// Per-shard durable-state byte totals, summed across shards.
#[derive(Debug, Default, Clone, Copy)]
pub struct StateBytes {
    /// Retained event-log bytes.
    pub log: u64,
    /// Session-store bytes.
    pub session: u64,
    /// Dedup-window bytes.
    pub dedup: u64,
    /// Snapshot bytes.
    pub snapshot: u64,
}

impl StateBytes {
    /// All components summed.
    pub fn total(&self) -> u64 {
        self.log + self.session + self.dedup + self.snapshot
    }
}

/// Everything a replay measured and verified.
pub struct ReplayReport {
    /// Groups driven (top-level + spawned sub-sessions).
    pub groups: usize,
    /// Roster seats created during setup (memberships, not people).
    pub memberships: u64,
    /// Ops that streamed a decision.
    pub streamed_ops: u64,
    /// Control-plane ops (spawn invites + acceptances count as one each).
    pub control_ops: u64,
    /// Wall-clock spent standing up groups and rosters.
    pub setup: Duration,
    /// Wall-clock spent replaying the op stream (including final drain).
    pub replay: Duration,
    /// Sampled floor submit→decision latency (ns).
    pub submit_latency: Histogram,
    /// Sampled latency of `Speak` ops that were expected to grant (ns).
    pub grant_latency: Histogram,
    /// Sampled session submit→decision latency (ns).
    pub session_latency: Histogram,
    /// Per-archetype breakdown, indexed by [`Archetype::index`](crate::Archetype::index).
    pub per_archetype: [ArchetypeReport; 4],
    /// Total expectation mismatches (0 on a faithful replay).
    pub mismatch_count: u64,
    /// The first few mismatch descriptions.
    pub mismatches: Vec<String>,
    /// Exactly-once retries issued (crash mode).
    pub resubmits: u64,
    /// Highest ingest-queue occupancy across shards.
    pub queue_peak: u64,
    /// Retained queue-depth time-series samples across shards.
    pub queue_depth_samples: u64,
    /// Resident set before setup, if the platform exposes it.
    pub rss_before: Option<u64>,
    /// Resident set after replay.
    pub rss_after: Option<u64>,
    /// Peak resident set (VmHWM).
    pub rss_peak: Option<u64>,
    /// Durable per-shard state bytes after replay.
    pub state_bytes: StateBytes,
    /// Checkpoint ingest-stall pauses across all shards, in microseconds
    /// (full snapshots and differential checkpoints together).
    pub snapshot_pause_us: Histogram,
    /// Total bytes shipped by differential checkpoints across all shards.
    pub snapshot_delta_bytes: u64,
    /// Differential checkpoints chained across shards at end of replay.
    pub snapshot_deltas: u64,
    /// Largest promotion tail-catch-up observed (events), across shards —
    /// the soak's boundedness axis. 0 when unreplicated or never promoted.
    pub catch_up_lag_max: u64,
    /// Leader partitions injected across shards
    /// (`cluster.shard.*.fault.partitions`).
    pub fault_partitions: u64,
    /// Stale-epoch appends/resyncs rejected by fencing across shards
    /// (`cluster.shard.*.fault.fenced_appends`).
    pub fault_fenced_appends: u64,
    /// Checksum verifications that failed across shards — every injected
    /// corruption that was actually read must show up here
    /// (`cluster.shard.*.fault.checksum_failures`).
    pub fault_checksum_failures: u64,
    /// Quorum repairs of corrupt copies across shards
    /// (`cluster.shard.*.fault.repairs`).
    pub fault_repairs: u64,
    /// Cluster invariant check result.
    pub invariants: Result<(), String>,
    /// Groups whose end-state content counts were verified exactly.
    pub verified_groups: usize,
}

impl ReplayReport {
    /// Streamed-op throughput over the replay phase.
    pub fn ops_per_sec(&self) -> f64 {
        self.streamed_ops as f64 / self.replay.as_secs_f64().max(1e-9)
    }

    /// Durable state bytes per group — the deterministic memory axis.
    pub fn state_bytes_per_group(&self) -> f64 {
        self.state_bytes.total() as f64 / self.groups.max(1) as f64
    }

    /// RSS growth across the whole run per group, when RSS is available.
    pub fn rss_delta_per_group(&self) -> Option<f64> {
        let (before, after) = (self.rss_before?, self.rss_after?);
        Some(after.saturating_sub(before) as f64 / self.groups.max(1) as f64)
    }

    /// Whether the replay was fully faithful: zero mismatches, invariants
    /// hold, and every selected group's content counts matched exactly.
    pub fn is_clean(&self) -> bool {
        self.mismatch_count == 0 && self.invariants.is_ok()
    }
}

const MISMATCH_CAP: usize = 32;
const MAX_RETRY_ROUNDS: usize = 16;

#[derive(Default)]
struct DriveStats {
    streamed: u64,
    control: u64,
    resubmits: u64,
    mismatch_count: u64,
    mismatches: Vec<String>,
    submit_latency: Histogram,
    grant_latency: Histogram,
    session_latency: Histogram,
    per_archetype: [ArchetypeReport; 4],
}

impl DriveStats {
    fn mismatch(&mut self, msg: String) {
        self.mismatch_count += 1;
        if self.mismatches.len() < MISMATCH_CAP {
            self.mismatches.push(msg);
        }
    }

    fn absorb(&mut self, other: DriveStats) {
        self.streamed += other.streamed;
        self.control += other.control;
        self.resubmits += other.resubmits;
        self.mismatch_count += other.mismatch_count;
        for m in other.mismatches {
            if self.mismatches.len() < MISMATCH_CAP {
                self.mismatches.push(m);
            }
        }
        self.submit_latency.merge(&other.submit_latency);
        self.grant_latency.merge(&other.grant_latency);
        self.session_latency.merge(&other.session_latency);
        for (mine, theirs) in self.per_archetype.iter_mut().zip(other.per_archetype) {
            mine.ops += theirs.ops;
            mine.granted += theirs.granted;
            mine.queued += theirs.queued;
            mine.denied += theirs.denied;
            mine.delivered += theirs.delivered;
            mine.rejected += theirs.rejected;
            mine.latency.merge(&theirs.latency);
        }
    }
}

/// One gateway's driving state: batch buffers, outstanding-decision maps and
/// accumulated stats.
struct Driver<'a> {
    trace: &'a Trace,
    gw: &'a Gateway,
    top_ids: &'a [GlobalGroupId],
    members: &'a [Vec<GlobalMemberId>],
    sub_ids: HashMap<u32, GlobalGroupId>,
    floor_buf: Vec<usize>,
    session_buf: Vec<usize>,
    floor_groups: HashSet<u32>,
    session_groups: HashSet<u32>,
    outstanding_floor: HashMap<u64, usize>,
    outstanding_session: HashMap<u64, usize>,
    sampled: HashMap<u64, Instant>,
    /// Errored (shard-down / shed) ops awaiting resubmission under their
    /// original ids, floor and session together: one gateway's ids are
    /// monotone across both pipelines, so resubmitting in ascending id
    /// order replays the original per-group mixed-kind order.
    retries: Vec<(u64, usize)>,
    flush_batch: usize,
    sample_every: usize,
    tick: usize,
    stats: DriveStats,
}

impl<'a> Driver<'a> {
    fn new(
        trace: &'a Trace,
        gw: &'a Gateway,
        top_ids: &'a [GlobalGroupId],
        members: &'a [Vec<GlobalMemberId>],
        opts: &ReplayOptions,
    ) -> Self {
        Driver {
            trace,
            gw,
            top_ids,
            members,
            sub_ids: HashMap::new(),
            floor_buf: Vec::with_capacity(opts.flush_batch),
            session_buf: Vec::with_capacity(opts.flush_batch),
            floor_groups: HashSet::new(),
            session_groups: HashSet::new(),
            outstanding_floor: HashMap::new(),
            outstanding_session: HashMap::new(),
            sampled: HashMap::new(),
            retries: Vec::new(),
            flush_batch: opts.flush_batch.max(1),
            sample_every: opts.latency_sample_every,
            tick: 0,
            stats: DriveStats::default(),
        }
    }

    fn group_id(&self, group: u32) -> Option<GlobalGroupId> {
        if self.trace.groups[group as usize].parent.is_some() {
            self.sub_ids.get(&group).copied()
        } else {
            Some(self.top_ids[group as usize])
        }
    }

    /// The global id of a group-local member; sub-session members resolve
    /// through the parent roster (local 0 = inviter, 1 = invitee).
    fn member_id(&self, group: u32, local: u32) -> GlobalMemberId {
        match self.trace.groups[group as usize].parent {
            Some((p, from, to)) => {
                let parent_local = if local == 0 { from } else { to };
                self.members[p as usize][parent_local as usize]
            }
            None => self.members[group as usize][local as usize],
        }
    }

    fn archetype_of(&self, op_idx: usize) -> usize {
        let op = &self.trace.ops[op_idx];
        self.trace.groups[op.group as usize].archetype.index()
    }

    fn build_floor(&self, op_idx: usize) -> GlobalRequest {
        let op = &self.trace.ops[op_idx];
        let gid = self.group_id(op.group).expect("group spawned before use");
        let mid = self.member_id(op.group, op.member);
        match op.kind {
            OpKind::Speak => GlobalRequest::speak(gid, mid),
            OpKind::Release => GlobalRequest::release_floor(gid, mid),
            OpKind::Pass { to } => {
                GlobalRequest::pass_floor(gid, mid, self.member_id(op.group, to))
            }
            _ => unreachable!("floor builder on non-floor op"),
        }
    }

    fn build_session(&self, op_idx: usize) -> SessionOp {
        let op = &self.trace.ops[op_idx];
        let gid = self.group_id(op.group).expect("group spawned before use");
        let mid = self.member_id(op.group, op.member);
        match op.kind {
            OpKind::Chat { len } => SessionOp::chat(gid, mid, payload_text(len)),
            OpKind::Whiteboard { len } => SessionOp::whiteboard(gid, mid, payload_text(len)),
            OpKind::Annotation { len } => SessionOp::annotation(gid, mid, payload_text(len)),
            OpKind::ScheduleMedia { len } => {
                SessionOp::schedule_media(gid, mid, payload_text(len), SimTime::from_nanos(op.at))
            }
            _ => unreachable!("session builder on non-session op"),
        }
    }

    fn step(&mut self, op_idx: usize) {
        let op = self.trace.ops[op_idx];
        match op.kind {
            OpKind::Spawn { sub } => {
                let (_, inviter, invitee) = self.trace.groups[sub as usize]
                    .parent
                    .expect("spawn targets a sub-group");
                let parent_gid = self.group_id(op.group).expect("parent exists");
                let from = self.member_id(op.group, inviter);
                let to = self.member_id(op.group, invitee);
                match self
                    .gw
                    .invite(parent_gid, from, to, FcmMode::GroupDiscussion, None)
                {
                    Ok((gid, invitation)) => {
                        self.sub_ids.insert(sub, gid);
                        if let Err(e) = self.gw.respond_invitation(invitation, to, true) {
                            self.stats
                                .mismatch(format!("op {op_idx}: acceptance failed: {e:?}"));
                        }
                    }
                    Err(e) => {
                        self.stats
                            .mismatch(format!("op {op_idx}: invite failed: {e:?}"));
                    }
                }
                self.stats.control += 1;
            }
            kind if kind.is_floor() => {
                if self.session_groups.contains(&op.group) {
                    self.flush_session();
                }
                self.floor_buf.push(op_idx);
                self.floor_groups.insert(op.group);
                if self.floor_buf.len() >= self.flush_batch {
                    self.flush_floor();
                }
            }
            _ => {
                if self.floor_groups.contains(&op.group) {
                    self.flush_floor();
                }
                self.session_buf.push(op_idx);
                self.session_groups.insert(op.group);
                if self.session_buf.len() >= self.flush_batch {
                    self.flush_session();
                }
            }
        }
        self.drain_ready();
    }

    fn note_sample(&mut self, seq: u64, when: Instant) {
        if self.sample_every > 0 {
            self.tick += 1;
            if self.tick.is_multiple_of(self.sample_every) {
                self.sampled.insert(seq, when);
            }
        }
    }

    fn flush_floor(&mut self) {
        if self.floor_buf.is_empty() {
            return;
        }
        let requests: Vec<GlobalRequest> = self
            .floor_buf
            .iter()
            .map(|&i| self.build_floor(i))
            .collect();
        let seqs = self.gw.submit_batch(&requests);
        let now = Instant::now();
        let buf = std::mem::take(&mut self.floor_buf);
        for (seq, idx) in seqs.into_iter().zip(buf) {
            self.outstanding_floor.insert(seq, idx);
            self.note_sample(seq, now);
        }
        self.floor_groups.clear();
        self.stats.streamed += requests.len() as u64;
    }

    fn flush_session(&mut self) {
        if self.session_buf.is_empty() {
            return;
        }
        let ops: Vec<SessionOp> = self
            .session_buf
            .iter()
            .map(|&i| self.build_session(i))
            .collect();
        let count = ops.len() as u64;
        let seqs = self.gw.submit_session_batch(ops);
        let now = Instant::now();
        let buf = std::mem::take(&mut self.session_buf);
        for (seq, idx) in seqs.into_iter().zip(buf) {
            self.outstanding_session.insert(seq, idx);
            self.note_sample(seq, now);
        }
        self.session_groups.clear();
        self.stats.streamed += count;
    }

    fn record_latency(&mut self, seq: u64, op_idx: usize, floor: bool) {
        if let Some(t0) = self.sampled.remove(&seq) {
            let ns = t0.elapsed().as_nanos() as u64;
            let op = &self.trace.ops[op_idx];
            let arch = self.archetype_of(op_idx);
            self.stats.per_archetype[arch].latency.record(ns);
            if floor {
                self.stats.submit_latency.record(ns);
                if op.kind == OpKind::Speak && op.expect == Expect::Granted {
                    self.stats.grant_latency.record(ns);
                }
            } else {
                self.stats.session_latency.record(ns);
            }
        }
    }

    fn process_floor(&mut self, d: Decision) {
        let Some(op_idx) = self.outstanding_floor.remove(&d.seq) else {
            self.stats
                .mismatch(format!("unexpected floor decision for seq {}", d.seq));
            return;
        };
        let op = self.trace.ops[op_idx];
        match d.outcome {
            Ok(outcome) => {
                let arch = self.archetype_of(op_idx);
                let stats = &mut self.stats.per_archetype[arch];
                stats.ops += 1;
                let ok = match (op.expect, outcome.as_ref()) {
                    (Expect::Granted, ArbitrationOutcome::Granted { .. }) => {
                        stats.granted += 1;
                        true
                    }
                    (Expect::Queued, ArbitrationOutcome::Queued { .. }) => {
                        stats.queued += 1;
                        true
                    }
                    (Expect::Denied, ArbitrationOutcome::Denied { .. }) => {
                        stats.denied += 1;
                        true
                    }
                    _ => false,
                };
                if !ok {
                    self.stats.mismatch(format!(
                        "op {op_idx} ({:?} by {} in group {}): expected {:?}, got {:?}",
                        op.kind, op.member, op.group, op.expect, outcome
                    ));
                }
                self.record_latency(d.seq, op_idx, true);
            }
            Err(ClusterError::ShardDown(_)) | Err(ClusterError::Overloaded(_)) => {
                // Exactly-once retry path: resubmitted under the original id
                // after the shard heals; latency samples for retried ops are
                // dropped (they would measure the outage, not the pipeline).
                self.sampled.remove(&d.seq);
                self.retries.push((d.seq, op_idx));
            }
            Err(e) => {
                self.stats
                    .mismatch(format!("op {op_idx}: unexpected error {e:?}"));
            }
        }
    }

    fn process_session(&mut self, d: SessionDecision) {
        let Some(op_idx) = self.outstanding_session.remove(&d.seq) else {
            self.stats
                .mismatch(format!("unexpected session decision for seq {}", d.seq));
            return;
        };
        let op = self.trace.ops[op_idx];
        match d.outcome {
            Ok(outcome) => {
                let arch = self.archetype_of(op_idx);
                let stats = &mut self.stats.per_archetype[arch];
                stats.ops += 1;
                let ok = match (op.expect, outcome.as_ref()) {
                    (Expect::Delivered, SessionOutcome::Delivered { .. }) => {
                        stats.delivered += 1;
                        true
                    }
                    (
                        Expect::RejectedFloor,
                        SessionOutcome::Rejected {
                            reason: SessionRejection::FloorDenied,
                        },
                    ) => {
                        stats.rejected += 1;
                        true
                    }
                    _ => false,
                };
                if !ok {
                    self.stats.mismatch(format!(
                        "op {op_idx} ({:?} by {} in group {}): expected {:?}, got {:?}",
                        op.kind, op.member, op.group, op.expect, outcome
                    ));
                }
                self.record_latency(d.seq, op_idx, false);
            }
            Err(ClusterError::ShardDown(_)) | Err(ClusterError::Overloaded(_)) => {
                self.sampled.remove(&d.seq);
                self.retries.push((d.seq, op_idx));
            }
            Err(e) => {
                self.stats
                    .mismatch(format!("op {op_idx}: unexpected error {e:?}"));
            }
        }
    }

    fn drain_ready(&mut self) {
        while let Some(d) = self.gw.try_recv_decision() {
            self.process_floor(d);
        }
        while let Some(d) = self.gw.try_recv_session_decision() {
            self.process_session(d);
        }
    }

    /// Resubmits every errored op under its original id in ascending id
    /// order. One gateway's ids are monotone across the floor and session
    /// pipelines, so ascending id order replays the original per-group
    /// mixed-kind submission order.
    fn resubmit_errored(&mut self) {
        self.retries.sort_unstable_by_key(|&(seq, _)| seq);
        for (seq, op_idx) in std::mem::take(&mut self.retries) {
            let result = if self.trace.ops[op_idx].kind.is_floor() {
                self.outstanding_floor.insert(seq, op_idx);
                self.gw.resubmit(seq, self.build_floor(op_idx))
            } else {
                self.outstanding_session.insert(seq, op_idx);
                self.gw.resubmit_session(seq, self.build_session(op_idx))
            };
            match result {
                Ok(()) => self.stats.resubmits += 1,
                Err(e) => {
                    self.outstanding_floor.remove(&seq);
                    self.outstanding_session.remove(&seq);
                    self.stats
                        .mismatch(format!("op {op_idx}: resubmit failed: {e:?}"));
                }
            }
        }
    }

    /// Flushes both buffers and blocks until every outstanding op has its
    /// final (non-transient) decision, retrying errored ops up to a bounded
    /// number of rounds.
    fn drain_all(&mut self) {
        self.flush_floor();
        self.flush_session();
        for _ in 0..MAX_RETRY_ROUNDS {
            while !self.outstanding_floor.is_empty() {
                match self.gw.recv_decision() {
                    Ok(d) => self.process_floor(d),
                    Err(e) => {
                        self.stats.mismatch(format!("decision stream died: {e:?}"));
                        return;
                    }
                }
            }
            while !self.outstanding_session.is_empty() {
                match self.gw.recv_session_decision() {
                    Ok(d) => self.process_session(d),
                    Err(e) => {
                        self.stats.mismatch(format!("session stream died: {e:?}"));
                        return;
                    }
                }
            }
            if self.retries.is_empty() {
                return;
            }
            self.resubmit_errored();
        }
        self.stats
            .mismatch("retry rounds exhausted with ops still erroring".to_string());
    }
}

/// The top-level ancestor of a group (itself when top-level): the partition
/// key that keeps a sub-session on its parent's gateway.
fn ancestor(trace: &Trace, group: u32) -> u32 {
    match trace.groups[group as usize].parent {
        Some((p, _, _)) => p,
        None => group,
    }
}

/// Replays a trace and returns the measured, verified report.
///
/// # Panics
///
/// Panics when `opts.crashes` is non-empty with more than one gateway (the
/// crash choreography needs the single-threaded driver), and on
/// control-plane setup failures (they indicate a broken environment, not a
/// workload outcome).
pub fn replay(trace: &Trace, opts: &ReplayOptions) -> ReplayReport {
    assert!(
        (opts.crashes.is_empty() && opts.faults.is_empty()) || opts.gateways == 1,
        "crash/fault replay requires a single gateway"
    );
    assert!(
        opts.faults.is_empty() || opts.replicas >= 2,
        "fault-plane replay needs a follower quorum to fail over / repair from"
    );
    assert!(opts.shards > 0 && opts.gateways > 0);

    let rss_before = rss::current_rss_bytes();
    let mut cluster =
        Cluster::new(ClusterConfig::with_shards(opts.shards).with_replicas(opts.replicas));

    // ----- setup: groups and rosters (control plane, measured separately) --
    let setup_start = Instant::now();
    let setup_gw = cluster.gateway();
    let mut top_ids: Vec<GlobalGroupId> = Vec::with_capacity(trace.groups.len());
    let mut members: Vec<Vec<GlobalMemberId>> = Vec::with_capacity(trace.groups.len());
    let mut memberships = 0u64;
    for (i, g) in trace.groups.iter().enumerate() {
        if g.parent.is_some() {
            // Spawned at replay time through the invitation flow.
            top_ids.push(GlobalGroupId(u64::MAX));
            members.push(Vec::new());
            continue;
        }
        let gid = setup_gw
            .create_group(format!("g{i}"), g.mode)
            .expect("create group");
        let mut roster = Vec::with_capacity(g.members as usize);
        for j in 0..g.members {
            let role = if j == 0 {
                Role::Chair
            } else {
                Role::Participant
            };
            let mid = setup_gw.register_member(Member::new(format!("g{i}.m{j}"), role));
            setup_gw.join_group(gid, mid).expect("join group");
            roster.push(mid);
            memberships += 1;
        }
        top_ids.push(gid);
        members.push(roster);
    }
    // Sub-session seats (the invited pairs) count as memberships too.
    memberships += trace
        .groups
        .iter()
        .filter(|g| g.parent.is_some())
        .map(|g| g.members as u64)
        .sum::<u64>();
    let setup = setup_start.elapsed();

    // ----- replay ----------------------------------------------------------
    let replay_start = Instant::now();
    let (mut stats, sub_ids) = if opts.gateways == 1 {
        // Crashes and fault-plane events indexed by op position; several
        // shards may be hit at once.
        let mut crash_at: HashMap<usize, Vec<usize>> = HashMap::new();
        for plan in &opts.crashes {
            crash_at.entry(plan.at_op).or_default().push(plan.shard);
        }
        let mut fault_at: HashMap<usize, Vec<(usize, FaultAction)>> = HashMap::new();
        for plan in &opts.faults {
            fault_at
                .entry(plan.at_op)
                .or_default()
                .push((plan.shard, plan.action));
        }
        let gw = cluster.gateway();
        let mut driver = Driver::new(trace, &gw, &top_ids, &members, opts);
        for idx in 0..trace.ops.len() {
            if let Some(shards) = crash_at.get(&idx) {
                for &shard in shards {
                    // Kill the shard *first*, then flush what's buffered:
                    // every op bound for the dead shard comes back as a
                    // ShardDown decision and is recorded for retry. Once the
                    // standby has replayed the checkpoint chain + log (or a
                    // follower was promoted), drain_all resubmits the
                    // errored ops under their original ids — the dedup
                    // window replays anything that had already committed —
                    // and settles every outstanding op before the storm
                    // continues.
                    cluster.crash_shard(ShardId(shard));
                    driver.flush_floor();
                    driver.flush_session();
                    cluster
                        .recover_shard(ShardId(shard))
                        .expect("shard recovery");
                    driver.drain_all();
                }
            }
            if let Some(faults) = fault_at.get(&idx) {
                for &(shard, action) in faults {
                    let sid = ShardId(shard);
                    match action {
                        FaultAction::IsolateLeader => {
                            // Partition first (non-barrier: parked batches
                            // stay parked under it), then flush so buffered
                            // writes ship *into* the partition. The
                            // `is_shard_active` barrier behind them forces
                            // the leader to settle: its quorum cannot make
                            // progress, the stall budget burns out, parked
                            // decisions come back `ShardDown` and it demotes
                            // itself. A leader with nothing to settle stays
                            // active — then there is nothing to promote.
                            cluster.isolate_shard_leader(sid);
                            driver.flush_floor();
                            driver.flush_session();
                            let demoted = !cluster.is_shard_active(sid);
                            cluster.heal_shard_partition(sid);
                            if demoted {
                                cluster
                                    .recover_shard(sid)
                                    .expect("promotion after healed partition");
                            }
                            driver.drain_all();
                        }
                        FaultAction::Corrupt(target) => {
                            // Silent rot, then a crash so the next recovery
                            // actually reads the damaged artifact: promotion
                            // verifies every checksum, detects the mismatch
                            // and repairs the new leader from the follower
                            // quorum. Injection is a no-op when the targeted
                            // artifact does not exist yet — then this is
                            // just a plain crash/failover.
                            cluster.inject_corruption(sid, target);
                            cluster.crash_shard(sid);
                            driver.flush_floor();
                            driver.flush_session();
                            cluster
                                .recover_shard(sid)
                                .expect("repair from replica quorum");
                            driver.drain_all();
                        }
                    }
                }
            }
            driver.step(idx);
        }
        driver.drain_all();
        (driver.stats, driver.sub_ids)
    } else {
        // Partition op indexes by owning gateway (top-level ancestor).
        let mut partitions: Vec<Vec<usize>> = vec![Vec::new(); opts.gateways];
        for (idx, op) in trace.ops.iter().enumerate() {
            let owner = ancestor(trace, op.group) as usize % opts.gateways;
            partitions[owner].push(idx);
        }
        let gateways: Vec<Gateway> = (0..opts.gateways).map(|_| cluster.gateway()).collect();
        let results: Vec<(DriveStats, HashMap<u32, GlobalGroupId>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = partitions
                .iter()
                .zip(&gateways)
                .map(|(part, gw)| {
                    let top_ids = &top_ids;
                    let members = &members;
                    scope.spawn(move || {
                        let mut driver = Driver::new(trace, gw, top_ids, members, opts);
                        for &idx in part {
                            driver.step(idx);
                        }
                        driver.drain_all();
                        (driver.stats, driver.sub_ids)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("driver thread"))
                .collect()
        });
        let mut merged = DriveStats::default();
        let mut subs = HashMap::new();
        for (s, ids) in results {
            merged.absorb(s);
            subs.extend(ids);
        }
        (merged, subs)
    };
    let replay_time = replay_start.elapsed();

    // ----- end state: invariants + exactly-once content accounting ---------
    let invariants = cluster.check_invariants();
    let expected = trace.expected_content();
    let verify_gw = cluster.gateway();
    let stride = if opts.verify_groups == 0 || opts.verify_groups >= trace.groups.len() {
        1
    } else {
        (trace.groups.len() / opts.verify_groups).max(1)
    };
    let mut verified = 0usize;
    for (g, want) in expected.iter().enumerate().step_by(stride) {
        let gid = if trace.groups[g].parent.is_some() {
            match sub_ids.get(&(g as u32)) {
                Some(&gid) => gid,
                None => continue, // spawn failed; already a mismatch
            }
        } else {
            top_ids[g]
        };
        match verify_gw.session_view(gid) {
            Ok(view) => {
                let got = [
                    view.chat.len() as u64,
                    view.whiteboard.len() as u64,
                    view.annotations.len() as u64,
                    view.media.len() as u64,
                ];
                if got != *want {
                    stats.mismatch(format!(
                        "group {g}: content counts {got:?} != expected {want:?} \
                         (lost or duplicated deliveries)"
                    ));
                }
                verified += 1;
            }
            Err(e) => stats.mismatch(format!("group {g}: session view failed: {e:?}")),
        }
    }

    // ----- memory + queue axes ---------------------------------------------
    let mut state = StateBytes::default();
    let mut queue_peak = 0u64;
    let mut snapshot_deltas = 0u64;
    for s in 0..opts.shards {
        let view = cluster.shard_view(ShardId(s));
        state.log += view.log_bytes;
        state.session += view.session_bytes;
        state.dedup += view.dedup_bytes;
        state.snapshot += view.snapshot_bytes;
        snapshot_deltas += view.snapshot_deltas as u64;
        queue_peak = queue_peak.max(cluster.queue_stats(ShardId(s)).peak_queued as u64);
    }
    let mut queue_depth_samples = 0u64;
    let snapshot_pause_us = Histogram::new();
    let mut snapshot_delta_bytes = 0u64;
    let mut catch_up_lag_max = 0u64;
    let mut fault_partitions = 0u64;
    let mut fault_fenced_appends = 0u64;
    let mut fault_checksum_failures = 0u64;
    let mut fault_repairs = 0u64;
    let registry = cluster.metrics();
    for s in 0..opts.shards {
        if let Some(dmps_cluster::telemetry::Metric::TimeSeries(ts)) =
            registry.get(&format!("cluster.shard.{s}.queue_depth"))
        {
            queue_depth_samples += ts.samples().len() as u64;
        }
        snapshot_pause_us
            .merge(&registry.histogram(&format!("cluster.shard.{s}.snapshot.pause_us")));
        snapshot_delta_bytes += registry
            .counter(&format!("cluster.shard.{s}.snapshot.delta_bytes"))
            .get();
        catch_up_lag_max = catch_up_lag_max.max(
            registry
                .histogram(&format!("cluster.shard.{s}.replica.catch_up_lag"))
                .max(),
        );
        fault_partitions += registry
            .counter(&format!("cluster.shard.{s}.fault.partitions"))
            .get();
        fault_fenced_appends += registry
            .counter(&format!("cluster.shard.{s}.fault.fenced_appends"))
            .get();
        fault_checksum_failures += registry
            .counter(&format!("cluster.shard.{s}.fault.checksum_failures"))
            .get();
        fault_repairs += registry
            .counter(&format!("cluster.shard.{s}.fault.repairs"))
            .get();
    }

    ReplayReport {
        groups: trace.groups.len(),
        memberships,
        streamed_ops: stats.streamed,
        control_ops: stats.control,
        setup,
        replay: replay_time,
        submit_latency: stats.submit_latency,
        grant_latency: stats.grant_latency,
        session_latency: stats.session_latency,
        per_archetype: stats.per_archetype,
        mismatch_count: stats.mismatch_count,
        mismatches: stats.mismatches,
        resubmits: stats.resubmits,
        queue_peak,
        queue_depth_samples,
        rss_before,
        rss_after: rss::current_rss_bytes(),
        rss_peak: rss::peak_rss_bytes(),
        state_bytes: state,
        snapshot_pause_us,
        snapshot_delta_bytes,
        snapshot_deltas,
        catch_up_lag_max,
        fault_partitions,
        fault_fenced_appends,
        fault_checksum_failures,
        fault_repairs,
        invariants,
        verified_groups: verified,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;
    use crate::spec::WorkloadSpec;

    #[test]
    fn small_replay_is_clean() {
        let trace = generate(&WorkloadSpec::small(11));
        let report = replay(&trace, &ReplayOptions::new(4));
        assert!(
            report.is_clean(),
            "mismatches: {:?} / invariants: {:?}",
            report.mismatches,
            report.invariants
        );
        assert_eq!(report.streamed_ops as usize, trace.streamed_ops());
        assert!(report.verified_groups > 0);
        assert!(report.state_bytes.total() > 0, "byte accounting is live");
    }

    #[test]
    fn small_replay_with_crash_stays_exactly_once() {
        let trace = generate(&WorkloadSpec::small(13));
        let mut opts = ReplayOptions::new(4);
        opts.flush_batch = 16;
        opts.crashes = vec![CrashPlan {
            at_op: trace.ops.len() / 2,
            shard: 1,
        }];
        let report = replay(&trace, &opts);
        assert!(
            report.is_clean(),
            "mismatches: {:?} / invariants: {:?}",
            report.mismatches,
            report.invariants
        );
        assert_eq!(report.streamed_ops as usize, trace.streamed_ops());
    }

    #[test]
    fn rolling_crashes_across_every_shard_stay_exactly_once() {
        // The soak shape in miniature: every shard dies and recovers at
        // least once mid-storm, with replicas so recovery goes through
        // follower promotion — and the replay still verifies exactly-once.
        let trace = generate(&WorkloadSpec::small(19));
        let mut opts = ReplayOptions::new(3);
        opts.replicas = 2;
        opts.flush_batch = 16;
        opts.crashes = CrashPlan::rolling(6, trace.ops.len(), 3);
        let report = replay(&trace, &opts);
        assert!(
            report.is_clean(),
            "mismatches: {:?} / invariants: {:?}",
            report.mismatches,
            report.invariants
        );
        assert_eq!(report.streamed_ops as usize, trace.streamed_ops());
        // The soak axis: promotion tail-catch-up stays bounded (a follower
        // that was fully caught up records 0).
        assert!(
            report.catch_up_lag_max <= 8192,
            "catch-up lag unbounded: {}",
            report.catch_up_lag_max
        );
    }

    #[test]
    fn chaos_soak_with_partitions_corruption_and_crashes_stays_exactly_once() {
        // The full chaos plane in miniature: rolling crashes AND a rolling
        // fault schedule (leader partitions + corruption of every
        // checksummed artifact class) over a replicated cluster — and the
        // replay still verifies every decision against its stamped
        // expectation with zero mismatches and exact end-state content
        // counts.
        let trace = generate(&WorkloadSpec::small(23));
        let mut opts = ReplayOptions::new(3);
        opts.replicas = 2;
        opts.flush_batch = 16;
        opts.crashes = CrashPlan::rolling(3, trace.ops.len(), 3);
        opts.faults = FaultPlan::rolling(8, trace.ops.len(), 3);
        let report = replay(&trace, &opts);
        assert!(
            report.is_clean(),
            "mismatches: {:?} / invariants: {:?}",
            report.mismatches,
            report.invariants
        );
        assert_eq!(report.streamed_ops as usize, trace.streamed_ops());
        // The fault plane actually fired and was survived, not skipped:
        // partitions were injected, at least one injected corruption was
        // detected by a checksum, and every detected corruption was
        // repaired from the quorum rather than served or aborted on.
        assert!(report.fault_partitions > 0, "no partition was injected");
        assert!(
            report.fault_checksum_failures > 0,
            "no injected corruption was ever detected"
        );
        assert!(
            report.fault_repairs > 0,
            "detected corruption was never repaired from the quorum"
        );
    }

    #[test]
    fn parallel_gateways_replay_cleanly() {
        let trace = generate(&WorkloadSpec::small(17));
        let mut opts = ReplayOptions::new(4);
        opts.gateways = 3;
        opts.flush_batch = 8;
        let report = replay(&trace, &opts);
        assert!(
            report.is_clean(),
            "mismatches: {:?} / invariants: {:?}",
            report.mismatches,
            report.invariants
        );
    }
}
