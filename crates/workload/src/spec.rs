//! Workload specification: everything the trace generator needs, in one
//! seeded, value-type struct. Two specs with equal fields generate
//! byte-identical traces.

/// The four session archetypes the harness models, grounded in the
/// CWcollab observation that different session types produce structurally
/// different traffic shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Archetype {
    /// One speaker, large audience, rare floor churn: the teacher holds the
    /// token and streams annotations / chat / media schedules; audience
    /// chat without the token exercises the floor-denied path.
    Lecture,
    /// Small group, churny request / release / pass traffic — the shape
    /// back-to-back benches never produce.
    Seminar,
    /// Chair-moderated grant queues (the UMPIRE flow): panelists queue
    /// behind the chair, who passes the floor down the queue.
    Panel,
    /// A free-access plenary that mass-spawns private sub-sessions through
    /// cross-shard invitations.
    Breakout,
}

impl Archetype {
    /// All archetypes, in stable order (indexes match [`Archetype::index`]).
    pub const ALL: [Archetype; 4] = [
        Archetype::Lecture,
        Archetype::Seminar,
        Archetype::Panel,
        Archetype::Breakout,
    ];

    /// Stable dense index (0..4) for per-archetype accounting arrays.
    pub fn index(self) -> usize {
        match self {
            Archetype::Lecture => 0,
            Archetype::Seminar => 1,
            Archetype::Panel => 2,
            Archetype::Breakout => 3,
        }
    }

    /// Stable lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Archetype::Lecture => "lecture",
            Archetype::Seminar => "seminar",
            Archetype::Panel => "panel",
            Archetype::Breakout => "breakout",
        }
    }
}

/// Archetype mix in percent of top-level groups. Anything left after the
/// named shares falls to seminar (the churniest shape).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArchetypeMix {
    /// Percent of lecture groups.
    pub lecture: u8,
    /// Percent of seminar groups.
    pub seminar: u8,
    /// Percent of panel groups.
    pub panel: u8,
    /// Percent of breakout plenaries (each additionally spawns sub-groups).
    pub breakout: u8,
}

impl Default for ArchetypeMix {
    fn default() -> Self {
        ArchetypeMix {
            lecture: 15,
            seminar: 65,
            panel: 12,
            breakout: 8,
        }
    }
}

/// Everything the trace generator consumes. The struct is plain data: two
/// equal specs generate byte-identical traces, which is what the proptest
/// determinism property pins down.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Root seed; every derived stream (per-group scripts, arrival times,
    /// payload sizes) is a pure function of it.
    pub seed: u64,
    /// Number of top-level groups (breakout sub-groups come on top).
    pub top_groups: u32,
    /// Archetype mix over the top-level groups.
    pub mix: ArchetypeMix,
    /// Mean number of streamed operations per group script.
    pub ops_per_group: u32,
    /// Virtual session window the arrival process spreads group activity
    /// over, in nanoseconds of virtual time.
    pub virtual_window_ns: u64,
    /// Probability that a script scene arrives as a burst (inter-arrival
    /// gaps shrunk ~20×) instead of at the archetype's base cadence.
    pub burstiness: f64,
    /// Payload size range for session content, in bytes.
    pub payload: (u16, u16),
    /// Lecture audience size range (including the teacher).
    pub lecture_size: (u32, u32),
    /// Seminar roster size range.
    pub seminar_size: (u32, u32),
    /// Panel roster size range (member 0 is the chair).
    pub panel_size: (u32, u32),
    /// Breakout plenary roster size range.
    pub breakout_size: (u32, u32),
    /// Sub-groups each breakout plenary spawns (range).
    pub breakout_spawns: (u32, u32),
}

impl WorkloadSpec {
    /// A small spec for unit tests and doc examples (hundreds of ops).
    pub fn small(seed: u64) -> Self {
        WorkloadSpec {
            seed,
            top_groups: 24,
            mix: ArchetypeMix::default(),
            ops_per_group: 8,
            virtual_window_ns: 60_000_000_000, // one virtual minute
            burstiness: 0.25,
            payload: (8, 96),
            lecture_size: (6, 12),
            seminar_size: (3, 6),
            panel_size: (4, 7),
            breakout_size: (5, 9),
            breakout_spawns: (1, 3),
        }
    }

    /// The CI / integration-test scale: ~5k groups, every archetype, small
    /// rosters so setup stays fast on one core.
    pub fn ci(seed: u64) -> Self {
        WorkloadSpec {
            top_groups: 5_000,
            ..WorkloadSpec::small(seed)
        }
    }

    /// The crash/chaos-soak shape: moderate group count, long scripts spread
    /// over hours of virtual time — built to be replayed with rolling seeded
    /// crashes ([`crate::CrashPlan::rolling`]) and, for the chaos soak, a
    /// rolling fault plan ([`crate::FaultPlan::rolling`]: leader partitions
    /// and silent corruption of every checksummed artifact class) so every
    /// shard fails, is fenced, repairs and recovers repeatedly while the
    /// trace is in flight. Scaled so the soak runs in minutes of wall clock
    /// despite its virtual-time span.
    pub fn soak(seed: u64) -> Self {
        WorkloadSpec {
            top_groups: 1_500,
            ops_per_group: 24,
            virtual_window_ns: 14_400_000_000_000, // four virtual hours
            burstiness: 0.35,
            ..WorkloadSpec::small(seed)
        }
    }

    /// The committed-benchmark scale: ≥10⁵ groups driven (top-level plus
    /// spawned breakout sub-sessions).
    pub fn full(seed: u64) -> Self {
        WorkloadSpec {
            seed,
            top_groups: 100_000,
            mix: ArchetypeMix::default(),
            ops_per_group: 10,
            virtual_window_ns: 3_600_000_000_000, // one virtual hour
            burstiness: 0.25,
            payload: (8, 160),
            lecture_size: (16, 48),
            seminar_size: (4, 10),
            panel_size: (4, 9),
            breakout_size: (6, 14),
            breakout_spawns: (1, 4),
        }
    }
}
