//! Process-memory sampling for the memory-per-group axis.
//!
//! Reads `VmRSS` / `VmHWM` out of `/proc/self/status`; on platforms without
//! procfs both probes return `None` and the harness simply omits the RSS
//! axis (the deterministic per-shard state-byte accounting still works).

use std::fs;

fn status_kib(field: &str) -> Option<u64> {
    let status = fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix(field) {
            let rest = rest.trim_start_matches(':').trim();
            let kib: u64 = rest.split_whitespace().next()?.parse().ok()?;
            return Some(kib);
        }
    }
    None
}

/// Current resident set size in bytes, if the platform exposes it.
pub fn current_rss_bytes() -> Option<u64> {
    status_kib("VmRSS").map(|kib| kib * 1024)
}

/// Peak resident set size (high-water mark) in bytes, if exposed.
pub fn peak_rss_bytes() -> Option<u64> {
    status_kib("VmHWM").map(|kib| kib * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rss_probes_agree_with_procfs_presence() {
        let have_procfs = std::path::Path::new("/proc/self/status").exists();
        assert_eq!(current_rss_bytes().is_some(), have_procfs);
        assert_eq!(peak_rss_bytes().is_some(), have_procfs);
        if let (Some(rss), Some(peak)) = (current_rss_bytes(), peak_rss_bytes()) {
            assert!(rss > 0);
            assert!(peak >= rss / 2, "HWM is in the same ballpark");
        }
    }
}
