//! Trace representation: the fully-materialized, deterministic operation
//! stream a workload spec expands into.
//!
//! A [`Trace`] is plain data — groups, rosters and a time-sorted operation
//! list, each op stamped with the outcome the cluster must produce for it
//! ([`Expect`]). [`Trace::encode_wire`] gives a canonical byte encoding
//! (same spec ⇒ byte-identical trace, the property the workload proptests
//! pin), and [`Trace::check_well_formed`] re-derives every stamped
//! expectation from the reference model, so a malformed generator change
//! cannot silently ship impossible traces.

use dmps_floor::FcmMode;
use dmps_wire::Writer;

use crate::model::GroupModel;
use crate::spec::Archetype;

/// Longest payload any trace op may carry; payload text is sliced from one
/// static pattern so the trace itself only stores lengths.
pub const MAX_PAYLOAD: u16 = 256;

const PAYLOAD_PATTERN: &str =
    "lorem ipsum dolor sit amet consectetur adipiscing elit sed do eiusmod \
     tempor incididunt ut labore et dolore magna aliqua ut enim ad minim \
     veniam quis nostrud exercitation ullamco laboris nisi ut aliquip ex ea \
     commodo consequat duis aute irure dolor!";

/// The deterministic payload text for a trace op of length `len` (clamped
/// to [`MAX_PAYLOAD`]).
pub fn payload_text(len: u16) -> &'static str {
    let len = (len as usize).min(PAYLOAD_PATTERN.len());
    &PAYLOAD_PATTERN[..len]
}

/// One operation kind in a trace. Content kinds carry only the payload
/// *length*; the bytes come from [`payload_text`] at replay time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Request the floor (token request in Equal Control).
    Speak,
    /// Release the floor token.
    Release,
    /// Pass the floor token to another roster member (local index).
    Pass {
        /// Local roster index of the recipient.
        to: u32,
    },
    /// A message-window line.
    Chat {
        /// Payload length in bytes.
        len: u16,
    },
    /// A whiteboard stroke.
    Whiteboard {
        /// Payload length in bytes.
        len: u16,
    },
    /// A teacher annotation.
    Annotation {
        /// Payload length in bytes.
        len: u16,
    },
    /// A synchronized media schedule (membership-gated, never floor-gated).
    ScheduleMedia {
        /// Media-name length in bytes.
        len: u16,
    },
    /// Spawn a breakout sub-session: the acting member invites another
    /// parent member into trace group `sub` (a control-plane op — invite +
    /// acceptance — with no streamed decision).
    Spawn {
        /// Trace index of the spawned sub-group.
        sub: u32,
    },
}

impl OpKind {
    /// Whether the op rides the floor-request pipeline (vs the session
    /// pipeline or the control plane).
    pub fn is_floor(&self) -> bool {
        matches!(self, OpKind::Speak | OpKind::Release | OpKind::Pass { .. })
    }

    /// Whether the op rides the session pipeline.
    pub fn is_session(&self) -> bool {
        matches!(
            self,
            OpKind::Chat { .. }
                | OpKind::Whiteboard { .. }
                | OpKind::Annotation { .. }
                | OpKind::ScheduleMedia { .. }
        )
    }

    fn tag(&self) -> u8 {
        match self {
            OpKind::Speak => 0,
            OpKind::Release => 1,
            OpKind::Pass { .. } => 2,
            OpKind::Chat { .. } => 3,
            OpKind::Whiteboard { .. } => 4,
            OpKind::Annotation { .. } => 5,
            OpKind::ScheduleMedia { .. } => 6,
            OpKind::Spawn { .. } => 7,
        }
    }
}

/// The outcome the cluster must produce for a trace op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expect {
    /// Floor request granted.
    Granted,
    /// Floor request queued behind the current holder.
    Queued,
    /// Floor request denied (`NotTokenHolder` release/pass).
    Denied,
    /// Session content delivered.
    Delivered,
    /// Session content rejected by floor control (`FloorDenied`).
    RejectedFloor,
    /// Control-plane op (spawn); no streamed decision.
    Control,
}

impl Expect {
    fn tag(&self) -> u8 {
        match self {
            Expect::Granted => 0,
            Expect::Queued => 1,
            Expect::Denied => 2,
            Expect::Delivered => 3,
            Expect::RejectedFloor => 4,
            Expect::Control => 5,
        }
    }
}

/// One group in a trace: archetype, mode, roster size and (for breakout
/// sub-sessions) the spawning parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceGroup {
    /// Which archetype script produced this group.
    pub archetype: Archetype,
    /// The floor-control mode the group is arbitrated under.
    pub mode: FcmMode,
    /// Roster size; members are local indexes `0..members` (member 0 is the
    /// chair/teacher where the archetype has one).
    pub members: u32,
    /// `Some((parent, inviter, invitee))` for a spawned sub-session: trace
    /// index of the parent group plus the parent-local roster indexes of the
    /// inviting and invited members. The sub-group's roster is exactly those
    /// two, as local members 0 and 1.
    pub parent: Option<(u32, u32, u32)>,
}

fn mode_tag(mode: FcmMode) -> u8 {
    match mode {
        FcmMode::FreeAccess => 0,
        FcmMode::EqualControl => 1,
        FcmMode::GroupDiscussion => 2,
        FcmMode::DirectContact => 3,
    }
}

/// One operation: virtual arrival time, acting group/member, kind, and the
/// stamped expected outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceOp {
    /// Virtual arrival time in nanoseconds since the window start.
    pub at: u64,
    /// Trace index of the acted-on group.
    pub group: u32,
    /// Local roster index of the acting member.
    pub member: u32,
    /// What the member does.
    pub kind: OpKind,
    /// What the cluster must answer.
    pub expect: Expect,
}

/// A fully-expanded workload trace: the deterministic product of one
/// [`WorkloadSpec`](crate::WorkloadSpec).
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// The seed the trace was generated from.
    pub seed: u64,
    /// All groups; top-level groups first, spawned sub-groups after (so a
    /// sub-group's index is always greater than its parent's).
    pub groups: Vec<TraceGroup>,
    /// All operations, sorted by `(at, group, per-group order)`.
    pub ops: Vec<TraceOp>,
}

impl Trace {
    /// Number of operations that stream a decision (everything but spawns).
    pub fn streamed_ops(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| op.expect != Expect::Control)
            .count()
    }

    /// Total roster seats across all groups (sub-group seats reuse parent
    /// members, so this counts memberships, not people).
    pub fn memberships(&self) -> u64 {
        self.groups.iter().map(|g| g.members as u64).sum()
    }

    /// Per-archetype streamed-op counts (spawn/control ops excluded),
    /// indexed by [`Archetype::index`].
    pub fn ops_per_archetype(&self) -> [u64; 4] {
        let mut counts = [0u64; 4];
        for op in &self.ops {
            if op.expect != Expect::Control {
                counts[self.groups[op.group as usize].archetype.index()] += 1;
            }
        }
        counts
    }

    /// Canonical byte encoding of the whole trace (dmps-wire token stream).
    /// Equal specs generate byte-identical encodings — the determinism
    /// property the workload proptests assert.
    pub fn encode_wire(&self) -> String {
        let mut w = Writer::new();
        w.u64(self.seed);
        w.u64(self.groups.len() as u64);
        for g in &self.groups {
            w.u64(g.archetype.index() as u64);
            w.u64(mode_tag(g.mode) as u64);
            w.u64(g.members as u64);
            match g.parent {
                Some((p, from, to)) => {
                    w.bool(true);
                    w.u64(p as u64);
                    w.u64(from as u64);
                    w.u64(to as u64);
                }
                None => w.bool(false),
            }
        }
        w.u64(self.ops.len() as u64);
        for op in &self.ops {
            w.u64(op.at);
            w.u64(op.group as u64);
            w.u64(op.member as u64);
            w.u64(op.kind.tag() as u64);
            match op.kind {
                OpKind::Pass { to } => w.u64(to as u64),
                OpKind::Chat { len }
                | OpKind::Whiteboard { len }
                | OpKind::Annotation { len }
                | OpKind::ScheduleMedia { len } => w.u64(len as u64),
                OpKind::Spawn { sub } => w.u64(sub as u64),
                OpKind::Speak | OpKind::Release => {}
            }
            w.u64(op.expect.tag() as u64);
        }
        w.finish()
    }

    /// The final delivered-content counts each group must show after a
    /// faithful replay, indexed like `groups` (slots per the
    /// `crate::model::CONTENT_*` constants).
    pub fn expected_content(&self) -> Vec<[u64; 4]> {
        let mut models: Vec<GroupModel> = self
            .groups
            .iter()
            .map(|g| GroupModel::new(g.mode))
            .collect();
        for op in &self.ops {
            models[op.group as usize].apply(op.member, &op.kind);
        }
        models.into_iter().map(|m| m.content).collect()
    }

    /// Structural validation: every stamped expectation is re-derived from
    /// the reference model, membership/spawn references are sound, times are
    /// sorted, and releases balance grants.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation found.
    pub fn check_well_formed(&self) -> Result<(), String> {
        // Group-level structure.
        for (i, g) in self.groups.iter().enumerate() {
            if g.members == 0 {
                return Err(format!("group {i}: empty roster"));
            }
            if let Some((p, from, to)) = g.parent {
                let parent = self
                    .groups
                    .get(p as usize)
                    .ok_or_else(|| format!("group {i}: unknown parent {p}"))?;
                if p as usize >= i {
                    return Err(format!("group {i}: parent {p} not earlier in the trace"));
                }
                if parent.parent.is_some() {
                    return Err(format!("group {i}: parent {p} is itself a sub-group"));
                }
                if from >= parent.members || to >= parent.members || from == to {
                    return Err(format!("group {i}: bad inviter/invitee {from}/{to}"));
                }
                if g.members != 2 {
                    return Err(format!("sub-group {i}: roster must be the invited pair"));
                }
            }
        }

        // Op-level structure + model re-derivation.
        let mut models: Vec<GroupModel> = self
            .groups
            .iter()
            .map(|g| GroupModel::new(g.mode))
            .collect();
        let mut spawned_at: Vec<Option<usize>> = vec![None; self.groups.len()];
        let mut acquisitions = vec![0u64; self.groups.len()];
        let mut releases = vec![0u64; self.groups.len()];
        let mut last_at = 0u64;
        for (idx, op) in self.ops.iter().enumerate() {
            if op.at < last_at {
                return Err(format!("op {idx}: time went backwards"));
            }
            last_at = op.at;
            let g = self
                .groups
                .get(op.group as usize)
                .ok_or_else(|| format!("op {idx}: unknown group {}", op.group))?;
            if op.member >= g.members {
                return Err(format!(
                    "op {idx}: member {} outside roster of {}",
                    op.member, g.members
                ));
            }
            if g.parent.is_some() && spawned_at[op.group as usize].is_none() {
                return Err(format!(
                    "op {idx}: sub-group {} acted on before its spawn",
                    op.group
                ));
            }
            match op.kind {
                OpKind::Pass { to } if to >= g.members => {
                    return Err(format!("op {idx}: pass target {to} outside roster"));
                }
                OpKind::Chat { len }
                | OpKind::Whiteboard { len }
                | OpKind::Annotation { len }
                | OpKind::ScheduleMedia { len }
                    if len > MAX_PAYLOAD =>
                {
                    return Err(format!("op {idx}: payload length {len} over cap"));
                }
                OpKind::Spawn { sub } => {
                    let child = self
                        .groups
                        .get(sub as usize)
                        .ok_or_else(|| format!("op {idx}: unknown sub-group {sub}"))?;
                    match child.parent {
                        Some((p, from, _)) if p == op.group && from == op.member => {}
                        _ => {
                            return Err(format!(
                                "op {idx}: spawn of {sub} does not match its parent link"
                            ));
                        }
                    }
                    if spawned_at[sub as usize].replace(idx).is_some() {
                        return Err(format!("op {idx}: sub-group {sub} spawned twice"));
                    }
                }
                _ => {}
            }
            let model = &mut models[op.group as usize];
            let holder_before = model.holder();
            let derived = model.apply(op.member, &op.kind);
            if derived != op.expect {
                return Err(format!(
                    "op {idx}: stamped {:?} but model derives {:?} for {:?} by {} in group {}",
                    op.expect, derived, op.kind, op.member, op.group
                ));
            }
            match op.kind {
                OpKind::Speak if derived == Expect::Granted && holder_before.is_none() => {
                    acquisitions[op.group as usize] += 1;
                }
                // A release with a non-empty queue promotes the front instead
                // of freeing the token, so only token-freeing releases count.
                OpKind::Release if derived == Expect::Granted && model.holder().is_none() => {
                    releases[op.group as usize] += 1;
                }
                _ => {}
            }
        }
        for (i, g) in self.groups.iter().enumerate() {
            if g.parent.is_some() && spawned_at[i].is_none() {
                return Err(format!("sub-group {i} is never spawned"));
            }
            // A granted release needs a prior acquisition; passes move the
            // token without freeing it, so releases never exceed the number
            // of times the token was taken from free.
            if releases[i] > acquisitions[i] {
                return Err(format!(
                    "group {i}: {} granted releases exceed {} token acquisitions",
                    releases[i], acquisitions[i]
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_text_is_clamped_and_stable() {
        assert_eq!(payload_text(0), "");
        assert_eq!(payload_text(5), "lorem");
        assert_eq!(payload_text(u16::MAX).len(), PAYLOAD_PATTERN.len());
    }

    #[test]
    fn well_formedness_rejects_unspawned_sub_group_ops() {
        let trace = Trace {
            seed: 1,
            groups: vec![
                TraceGroup {
                    archetype: Archetype::Breakout,
                    mode: FcmMode::FreeAccess,
                    members: 4,
                    parent: None,
                },
                TraceGroup {
                    archetype: Archetype::Breakout,
                    mode: FcmMode::GroupDiscussion,
                    members: 2,
                    parent: Some((0, 1, 2)),
                },
            ],
            ops: vec![TraceOp {
                at: 5,
                group: 1,
                member: 0,
                kind: OpKind::Chat { len: 3 },
                expect: Expect::Delivered,
            }],
        };
        let err = trace.check_well_formed().unwrap_err();
        assert!(err.contains("before its spawn"), "{err}");
    }

    #[test]
    fn well_formedness_rejects_wrong_expectations() {
        let trace = Trace {
            seed: 1,
            groups: vec![TraceGroup {
                archetype: Archetype::Seminar,
                mode: FcmMode::EqualControl,
                members: 3,
                parent: None,
            }],
            ops: vec![TraceOp {
                at: 0,
                group: 0,
                member: 1,
                kind: OpKind::Release,
                expect: Expect::Granted, // model derives Denied
            }],
        };
        let err = trace.check_well_formed().unwrap_err();
        assert!(err.contains("model derives"), "{err}");
    }
}
