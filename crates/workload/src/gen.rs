//! The trace generator: expands a [`WorkloadSpec`] into a deterministic
//! [`Trace`].
//!
//! Each group gets its own seeded RNG stream (a pure function of the spec
//! seed and the group index), so trace content is independent of generation
//! order and two runs with equal specs produce byte-identical traces. Group
//! scripts follow the archetype shapes from the paper's session taxonomy:
//!
//! * **Lecture** — the teacher takes the floor once and streams annotations,
//!   chat and media schedules to a large audience; audience chat exercises
//!   the floor-denied path; the rare "student question" scene queues a
//!   request, passes the floor down and back.
//! * **Seminar** — churny request / release / pass traffic with holder
//!   content in between: the floor token changes hands constantly.
//! * **Panel** — panelists queue behind the chair, who passes the floor
//!   down the grant queue (chair-moderated moderation).
//! * **Breakout** — a free-access plenary that mass-spawns private
//!   two-member sub-sessions through cross-shard invitations.
//!
//! Arrival times are virtual (nanoseconds): each group's script starts
//! uniformly inside the session window and advances by exponential
//! inter-arrival gaps, occasionally compressed ~20× to model bursts.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::model::GroupModel;
use crate::spec::{Archetype, WorkloadSpec};
use crate::trace::{Expect, OpKind, Trace, TraceGroup, TraceOp, MAX_PAYLOAD};

use dmps_floor::FcmMode;

/// A not-yet-stamped op, carrying its per-group sequence number so the
/// global time sort can never reorder a group's script.
struct PendingOp {
    at: u64,
    group: u32,
    order: u32,
    member: u32,
    kind: OpKind,
}

/// One group's script under construction: a seeded RNG, a virtual clock and
/// the op list. `push` advances the clock by an exponential gap.
struct Script {
    rng: StdRng,
    at: u64,
    mean_gap_ns: f64,
    burstiness: f64,
    payload: (u16, u16),
    ops: Vec<(u64, u32, OpKind)>,
}

impl Script {
    fn new(rng: StdRng, start: u64, mean_gap_ns: f64, spec: &WorkloadSpec) -> Self {
        Script {
            rng,
            at: start,
            mean_gap_ns: mean_gap_ns.max(1.0),
            burstiness: spec.burstiness,
            payload: spec.payload,
            ops: Vec::new(),
        }
    }

    fn push(&mut self, member: u32, kind: OpKind) {
        let mean = if self.rng.gen_bool(self.burstiness) {
            self.mean_gap_ns / 20.0
        } else {
            self.mean_gap_ns
        };
        let u: f64 = self.rng.gen();
        let gap = (-(1.0 - u).ln() * mean).max(1.0);
        self.at = self.at.saturating_add(gap as u64);
        self.ops.push((self.at, member, kind));
    }

    fn payload_len(&mut self) -> u16 {
        let (lo, hi) = self.payload;
        self.rng.gen_range(lo..=hi.max(lo)).min(MAX_PAYLOAD)
    }
}

/// A spawn site recorded while scripting a breakout plenary; resolved into
/// a concrete sub-group (and a patched `Spawn { sub }` op) afterwards.
struct SpawnSite {
    parent: u32,
    op_index: usize,
    inviter: u32,
    invitee: u32,
    at: u64,
    seed: u64,
}

fn derive_seed(seed: u64, stream: u64) -> u64 {
    // Golden-ratio stream split, the same shape splitmix64 uses.
    seed ^ (stream.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

fn pick_archetype(rng: &mut StdRng, spec: &WorkloadSpec) -> Archetype {
    let m = spec.mix;
    let total = (m.lecture as u32 + m.seminar as u32 + m.panel as u32 + m.breakout as u32).max(1);
    let roll = rng.gen_range(0..total);
    if roll < m.lecture as u32 {
        Archetype::Lecture
    } else if roll < m.lecture as u32 + m.seminar as u32 {
        Archetype::Seminar
    } else if roll < m.lecture as u32 + m.seminar as u32 + m.panel as u32 {
        Archetype::Panel
    } else {
        Archetype::Breakout
    }
}

fn lecture(script: &mut Script, members: u32, ops_target: u32) {
    // The teacher (member 0) takes the floor for the whole session.
    script.push(0, OpKind::Speak);
    let mut emitted = 1;
    while emitted < ops_target {
        let roll = script.rng.gen_range(0u32..100);
        if roll < 40 {
            let len = script.payload_len();
            script.push(0, OpKind::Annotation { len });
        } else if roll < 55 {
            let len = script.payload_len();
            script.push(0, OpKind::Chat { len });
        } else if roll < 65 {
            let len = script.payload_len();
            script.push(0, OpKind::ScheduleMedia { len });
        } else if roll < 85 {
            // Audience chat without the floor: the Equal-Control denied path.
            let aud = script.rng.gen_range(1..members);
            let len = script.payload_len();
            script.push(aud, OpKind::Chat { len });
        } else if roll < 93 {
            // Media schedules are membership-gated only, so the audience may.
            let aud = script.rng.gen_range(1..members);
            let len = script.payload_len();
            script.push(aud, OpKind::ScheduleMedia { len });
        } else {
            // Student question: queue, get the floor passed, answer, return.
            let aud = script.rng.gen_range(1..members);
            script.push(aud, OpKind::Speak);
            script.push(0, OpKind::Pass { to: aud });
            let len = script.payload_len();
            script.push(aud, OpKind::Chat { len });
            script.push(aud, OpKind::Pass { to: 0 });
            emitted += 3;
        }
        emitted += 1;
    }
}

fn seminar(script: &mut Script, members: u32, ops_target: u32) {
    let mut model = GroupModel::new(FcmMode::EqualControl);
    while (script.ops.len() as u32) < ops_target {
        let m = script.rng.gen_range(0..members);
        let roll = script.rng.gen_range(0u32..100);
        if roll < 45 {
            script.push(m, OpKind::Speak);
            if model.apply(m, &OpKind::Speak) == Expect::Granted {
                if script.rng.gen_bool(0.6) {
                    let len = script.payload_len();
                    let kind = if script.rng.gen_bool(0.5) {
                        OpKind::Chat { len }
                    } else {
                        OpKind::Whiteboard { len }
                    };
                    script.push(m, kind);
                    model.apply(m, &kind);
                }
                if script.rng.gen_bool(0.7) || members < 2 {
                    script.push(m, OpKind::Release);
                    model.apply(m, &OpKind::Release);
                } else {
                    let mut to = script.rng.gen_range(0..members);
                    if to == m {
                        to = (to + 1) % members;
                    }
                    let kind = OpKind::Pass { to };
                    script.push(m, kind);
                    model.apply(m, &kind);
                }
            }
        } else if roll < 65 {
            // Drain: the current holder releases, promoting the queue front.
            if let Some(h) = model.holder() {
                script.push(h, OpKind::Release);
                model.apply(h, &OpKind::Release);
            } else {
                script.push(m, OpKind::Speak);
                model.apply(m, &OpKind::Speak);
            }
        } else if roll < 85 {
            // Content from whoever; denied unless they hold the floor.
            let len = script.payload_len();
            let kind = if script.rng.gen_bool(0.6) {
                OpKind::Chat { len }
            } else {
                OpKind::Annotation { len }
            };
            script.push(m, kind);
            model.apply(m, &kind);
        } else if roll < 93 {
            // A release by a non-holder: the NotTokenHolder denial.
            if model.holder() == Some(m) && members > 1 {
                let other = (m + 1) % members;
                script.push(other, OpKind::Release);
                model.apply(other, &OpKind::Release);
            } else {
                script.push(m, OpKind::Release);
                model.apply(m, &OpKind::Release);
            }
        } else {
            let len = script.payload_len();
            script.push(m, OpKind::ScheduleMedia { len });
            model.apply(m, &OpKind::ScheduleMedia { len });
        }
    }
}

fn panel(script: &mut Script, members: u32, ops_target: u32) {
    let mut model = GroupModel::new(FcmMode::EqualControl);
    while (script.ops.len() as u32) < ops_target {
        match model.holder() {
            None => {
                // The chair opens (or re-opens) the panel.
                script.push(0, OpKind::Speak);
                model.apply(0, &OpKind::Speak);
            }
            Some(h) => {
                if model.queue().is_empty() && members > 1 && script.rng.gen_bool(0.6) {
                    // Panelists line up behind the holder.
                    let joins = script.rng.gen_range(1..members.min(4));
                    for _ in 0..joins {
                        let p = script.rng.gen_range(1..members);
                        script.push(p, OpKind::Speak);
                        model.apply(p, &OpKind::Speak);
                    }
                } else if !model.queue().is_empty() && script.rng.gen_bool(0.5) {
                    // The moderated hand-off: holder passes to the queue front.
                    let to = model.queue()[0];
                    let kind = OpKind::Pass { to };
                    script.push(h, kind);
                    model.apply(h, &kind);
                } else if script.rng.gen_bool(0.55) {
                    let len = script.payload_len();
                    let kind = if script.rng.gen_bool(0.7) {
                        OpKind::Chat { len }
                    } else {
                        OpKind::Annotation { len }
                    };
                    script.push(h, kind);
                    model.apply(h, &kind);
                } else {
                    script.push(h, OpKind::Release);
                    model.apply(h, &OpKind::Release);
                }
            }
        }
    }
}

/// Scripts a breakout plenary and returns its spawn sites (op indexes into
/// the script that must be patched to `Spawn { sub }` later).
fn breakout(
    script: &mut Script,
    members: u32,
    ops_target: u32,
    spawns: u32,
) -> Vec<(usize, u32, u32)> {
    let mut sites = Vec::new();
    let mut spawned = 0;
    while (script.ops.len() as u32) < ops_target || spawned < spawns {
        let m = script.rng.gen_range(0..members);
        let remaining = (ops_target as usize)
            .saturating_sub(script.ops.len())
            .max(1);
        let spawn_prob = ((spawns - spawned) as f64 / remaining as f64).min(1.0);
        let spawn_now = spawned < spawns
            && (script.rng.gen_bool(spawn_prob) || script.ops.len() as u32 >= ops_target);
        if spawn_now && members > 1 {
            let mut to = script.rng.gen_range(0..members);
            if to == m {
                to = (to + 1) % members;
            }
            // Placeholder `sub`; patched once the sub-group index is known.
            script.push(m, OpKind::Spawn { sub: u32::MAX });
            sites.push((script.ops.len() - 1, m, to));
            spawned += 1;
        } else {
            let roll = script.rng.gen_range(0u32..100);
            let len = script.payload_len();
            let kind = if roll < 45 {
                OpKind::Chat { len }
            } else if roll < 70 {
                OpKind::Whiteboard { len }
            } else if roll < 85 {
                OpKind::Speak
            } else {
                OpKind::ScheduleMedia { len }
            };
            script.push(m, kind);
        }
    }
    sites
}

/// Scripts a spawned two-member private sub-session (Group Discussion: both
/// sides deliver freely).
fn sub_session(script: &mut Script, ops_target: u32) {
    script.push(0, OpKind::Speak);
    while (script.ops.len() as u32) < ops_target {
        let m = script.rng.gen_range(0u32..2);
        let roll = script.rng.gen_range(0u32..100);
        let len = script.payload_len();
        let kind = if roll < 50 {
            OpKind::Chat { len }
        } else if roll < 80 {
            OpKind::Whiteboard { len }
        } else if roll < 92 {
            OpKind::Speak
        } else {
            OpKind::ScheduleMedia { len }
        };
        script.push(m, kind);
    }
}

/// Expands a spec into its deterministic trace.
pub fn generate(spec: &WorkloadSpec) -> Trace {
    let mut groups: Vec<TraceGroup> = Vec::with_capacity(spec.top_groups as usize);
    let mut ops: Vec<PendingOp> = Vec::new();
    let mut spawn_sites: Vec<SpawnSite> = Vec::new();

    for i in 0..spec.top_groups {
        let mut rng = StdRng::seed_from_u64(derive_seed(spec.seed, i as u64));
        let archetype = pick_archetype(&mut rng, spec);
        let (size_lo, size_hi, mode) = match archetype {
            Archetype::Lecture => (
                spec.lecture_size.0,
                spec.lecture_size.1,
                FcmMode::EqualControl,
            ),
            Archetype::Seminar => (
                spec.seminar_size.0,
                spec.seminar_size.1,
                FcmMode::EqualControl,
            ),
            Archetype::Panel => (spec.panel_size.0, spec.panel_size.1, FcmMode::EqualControl),
            Archetype::Breakout => (
                spec.breakout_size.0,
                spec.breakout_size.1,
                FcmMode::FreeAccess,
            ),
        };
        let members = rng.gen_range(size_lo.max(2)..=size_hi.max(size_lo.max(2)));
        let ops_target =
            rng.gen_range((spec.ops_per_group / 2).max(1)..=(spec.ops_per_group * 3 / 2).max(2));
        let start = rng.gen_range(0..(spec.virtual_window_ns * 3 / 4).max(1));
        let mean_gap = (spec.virtual_window_ns as f64 / 4.0) / ops_target as f64;
        let sub_seed = derive_seed(spec.seed, 0x4000_0000_0000_0000 | i as u64);
        let mut script = Script::new(rng, start, mean_gap, spec);
        let sites = match archetype {
            Archetype::Lecture => {
                lecture(&mut script, members, ops_target);
                Vec::new()
            }
            Archetype::Seminar => {
                seminar(&mut script, members, ops_target);
                Vec::new()
            }
            Archetype::Panel => {
                panel(&mut script, members, ops_target);
                Vec::new()
            }
            Archetype::Breakout => {
                let spawns = script.rng.gen_range(
                    spec.breakout_spawns.0..=spec.breakout_spawns.1.max(spec.breakout_spawns.0),
                );
                breakout(&mut script, members, ops_target, spawns)
            }
        };
        groups.push(TraceGroup {
            archetype,
            mode,
            members,
            parent: None,
        });
        let base = ops.len();
        for (order, (at, member, kind)) in script.ops.into_iter().enumerate() {
            ops.push(PendingOp {
                at,
                group: i,
                order: order as u32,
                member,
                kind,
            });
        }
        for (site_no, (op_index, inviter, invitee)) in sites.into_iter().enumerate() {
            spawn_sites.push(SpawnSite {
                parent: i,
                op_index: base + op_index,
                inviter,
                invitee,
                at: ops[base + op_index].at,
                seed: derive_seed(sub_seed, site_no as u64),
            });
        }
    }

    // Resolve spawn sites into sub-groups, appended after every top-level
    // group so a sub-group's index always exceeds its parent's (spawn-first
    // ordering on time ties falls out of the (at, group, order) sort).
    for site in &spawn_sites {
        let sub_index = groups.len() as u32;
        groups.push(TraceGroup {
            archetype: Archetype::Breakout,
            mode: FcmMode::GroupDiscussion,
            members: 2,
            parent: Some((site.parent, site.inviter, site.invitee)),
        });
        ops[site.op_index].kind = OpKind::Spawn { sub: sub_index };
        let mut rng = StdRng::seed_from_u64(site.seed);
        let ops_target = rng.gen_range(3..=spec.ops_per_group.max(4));
        let mean_gap = (spec.virtual_window_ns as f64 / 16.0) / ops_target as f64;
        let mut script = Script::new(rng, site.at.saturating_add(1), mean_gap, spec);
        sub_session(&mut script, ops_target);
        for (order, (at, member, kind)) in script.ops.into_iter().enumerate() {
            ops.push(PendingOp {
                at,
                group: sub_index,
                order: order as u32,
                member,
                kind,
            });
        }
    }

    ops.sort_by_key(|op| (op.at, op.group, op.order));

    // Stamp every op with the outcome the cluster must produce, by running
    // the reference model over the final global order.
    let mut models: Vec<GroupModel> = groups.iter().map(|g| GroupModel::new(g.mode)).collect();
    let stamped = ops
        .into_iter()
        .map(|op| {
            let expect = models[op.group as usize].apply(op.member, &op.kind);
            TraceOp {
                at: op.at,
                group: op.group,
                member: op.member,
                kind: op.kind,
                expect,
            }
        })
        .collect();

    Trace {
        seed: spec.seed,
        groups,
        ops: stamped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_traces_are_well_formed() {
        for seed in [1u64, 7, 42] {
            let trace = generate(&WorkloadSpec::small(seed));
            trace.check_well_formed().unwrap_or_else(|e| {
                panic!("seed {seed}: {e}");
            });
            assert!(trace.streamed_ops() > 0);
        }
    }

    #[test]
    fn equal_specs_generate_byte_identical_traces() {
        let a = generate(&WorkloadSpec::small(99));
        let b = generate(&WorkloadSpec::small(99));
        assert_eq!(a.encode_wire(), b.encode_wire());
    }

    #[test]
    fn different_seeds_diverge() {
        let a = generate(&WorkloadSpec::small(1));
        let b = generate(&WorkloadSpec::small(2));
        assert_ne!(a.encode_wire(), b.encode_wire());
    }

    #[test]
    fn every_archetype_appears_at_default_mix() {
        let trace = generate(&WorkloadSpec::small(5));
        let per = trace.ops_per_archetype();
        assert!(
            per.iter().all(|&n| n > 0),
            "mix covers all archetypes: {per:?}"
        );
        assert!(
            trace.groups.iter().any(|g| g.parent.is_some()),
            "breakouts spawned sub-sessions"
        );
    }
}
