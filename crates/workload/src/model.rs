//! A reference model of one group's floor-control and session semantics.
//!
//! [`GroupModel`] mirrors exactly what the cluster's arbiter and session
//! store do with a trace operation — token request/release/pass FIFO
//! semantics, Equal-Control floor gating of content, membership-only gating
//! of media schedules — so the generator can stamp every operation with its
//! expected outcome and the replayer can verify each streamed decision plus
//! the final per-group content counts (exactly-once accounting).

use dmps_floor::FcmMode;

use crate::trace::{Expect, OpKind};

/// Dense indexes into per-group content-count arrays.
pub const CONTENT_CHAT: usize = 0;
/// Whiteboard strokes.
pub const CONTENT_WHITEBOARD: usize = 1;
/// Teacher annotations.
pub const CONTENT_ANNOTATION: usize = 2;
/// Synchronized media schedules.
pub const CONTENT_MEDIA: usize = 3;

/// The model of one group: who holds the floor token, who waits, and how
/// many content items of each kind have been delivered.
///
/// Mirrors `dmps-floor`'s token semantics:
/// * `Speak` in Equal Control grants when the token is free or already held
///   by the requester (idempotent), otherwise FIFO-queues (idempotent when
///   already queued). In the non-token modes `Speak` always grants.
/// * `Release` grants only for the holder and promotes the queue front;
///   anyone else is denied (`NotTokenHolder`). Tokens exist in every mode,
///   so a release in a mode whose `Speak` never takes the token is denied.
/// * `Pass` grants only for the holder, hands the token to the target and
///   removes the target from the waiting queue.
/// * Chat / whiteboard / annotation content is floor-gated in Equal Control
///   (holder-only); media schedules are membership-gated only.
#[derive(Debug, Clone)]
pub struct GroupModel {
    mode: FcmMode,
    holder: Option<u32>,
    queue: Vec<u32>,
    /// Delivered content counts, indexed by the `CONTENT_*` constants.
    pub content: [u64; 4],
}

impl GroupModel {
    /// A fresh model for a group arbitrated under `mode`.
    pub fn new(mode: FcmMode) -> Self {
        GroupModel {
            mode,
            holder: None,
            queue: Vec::new(),
            content: [0; 4],
        }
    }

    /// The member currently holding the floor token, if any.
    pub fn holder(&self) -> Option<u32> {
        self.holder
    }

    /// The members waiting for the token, front first.
    pub fn queue(&self) -> &[u32] {
        &self.queue
    }

    /// Whether `Speak` arbitrates the token in this group's mode.
    fn token_mode(&self) -> bool {
        self.mode == FcmMode::EqualControl
    }

    /// Whether `member` may deliver floor-gated content right now.
    fn may_deliver(&self, member: u32) -> bool {
        !self.token_mode() || self.holder == Some(member)
    }

    /// Applies one operation and returns the outcome the cluster must
    /// produce for it.
    pub fn apply(&mut self, member: u32, kind: &OpKind) -> Expect {
        match *kind {
            OpKind::Speak => {
                if !self.token_mode() {
                    return Expect::Granted;
                }
                match self.holder {
                    None => {
                        self.holder = Some(member);
                        Expect::Granted
                    }
                    Some(h) if h == member => Expect::Granted,
                    Some(_) => {
                        if !self.queue.contains(&member) {
                            self.queue.push(member);
                        }
                        Expect::Queued
                    }
                }
            }
            OpKind::Release => {
                if self.holder == Some(member) {
                    self.holder = if self.queue.is_empty() {
                        None
                    } else {
                        Some(self.queue.remove(0))
                    };
                    Expect::Granted
                } else {
                    Expect::Denied
                }
            }
            OpKind::Pass { to } => {
                if self.holder == Some(member) {
                    self.holder = Some(to);
                    self.queue.retain(|&m| m != to);
                    Expect::Granted
                } else {
                    Expect::Denied
                }
            }
            OpKind::Chat { .. } => self.deliver(member, CONTENT_CHAT),
            OpKind::Whiteboard { .. } => self.deliver(member, CONTENT_WHITEBOARD),
            OpKind::Annotation { .. } => self.deliver(member, CONTENT_ANNOTATION),
            OpKind::ScheduleMedia { .. } => {
                // Media schedules are membership-gated, never floor-gated.
                self.content[CONTENT_MEDIA] += 1;
                Expect::Delivered
            }
            OpKind::Spawn { .. } => Expect::Control,
        }
    }

    fn deliver(&mut self, member: u32, slot: usize) -> Expect {
        if self.may_deliver(member) {
            self.content[slot] += 1;
            Expect::Delivered
        } else {
            Expect::RejectedFloor
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_control_token_fifo() {
        let mut m = GroupModel::new(FcmMode::EqualControl);
        assert_eq!(m.apply(0, &OpKind::Speak), Expect::Granted);
        assert_eq!(m.apply(0, &OpKind::Speak), Expect::Granted, "idempotent");
        assert_eq!(m.apply(1, &OpKind::Speak), Expect::Queued);
        assert_eq!(m.apply(2, &OpKind::Speak), Expect::Queued);
        assert_eq!(m.apply(1, &OpKind::Speak), Expect::Queued, "idempotent");
        assert_eq!(m.queue(), &[1, 2]);
        assert_eq!(m.apply(1, &OpKind::Release), Expect::Denied);
        assert_eq!(m.apply(0, &OpKind::Release), Expect::Granted);
        assert_eq!(m.holder(), Some(1), "queue front promoted");
        assert_eq!(m.apply(1, &OpKind::Pass { to: 2 }), Expect::Granted);
        assert_eq!(m.holder(), Some(2));
        assert!(m.queue().is_empty(), "pass target left the queue");
        assert_eq!(m.apply(2, &OpKind::Release), Expect::Granted);
        assert_eq!(m.holder(), None);
    }

    #[test]
    fn equal_control_gates_content_but_not_media() {
        let mut m = GroupModel::new(FcmMode::EqualControl);
        m.apply(0, &OpKind::Speak);
        assert_eq!(m.apply(0, &OpKind::Chat { len: 4 }), Expect::Delivered);
        assert_eq!(
            m.apply(1, &OpKind::Chat { len: 4 }),
            Expect::RejectedFloor,
            "non-holder content is floor-denied"
        );
        assert_eq!(
            m.apply(1, &OpKind::ScheduleMedia { len: 4 }),
            Expect::Delivered,
            "media schedules are not content"
        );
        assert_eq!(m.content, [1, 0, 0, 1]);
    }

    #[test]
    fn free_access_delivers_everything_but_denies_release() {
        let mut m = GroupModel::new(FcmMode::FreeAccess);
        assert_eq!(m.apply(3, &OpKind::Speak), Expect::Granted);
        assert_eq!(m.apply(3, &OpKind::Chat { len: 1 }), Expect::Delivered);
        assert_eq!(
            m.apply(5, &OpKind::Whiteboard { len: 1 }),
            Expect::Delivered
        );
        assert_eq!(
            m.apply(3, &OpKind::Release),
            Expect::Denied,
            "free-access speak never takes the token, so release is denied"
        );
        assert_eq!(m.content, [1, 1, 0, 0]);
    }
}
