//! Property tests for [`dmps_telemetry::Histogram`]: the documented quantile
//! error bound, merge ≡ record-all, and the empty / one-sample edge cases.

use dmps_telemetry::Histogram;
use proptest::prelude::*;

/// The exact quantile of a sample set: the value at rank `ceil(q·n)` (1-based,
/// clamped) of the sorted samples — the reference the bucketed extraction is
/// judged against.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// A generated sample spanning the full bucket range: small exact values,
/// mid-range values, and large values near the top octaves.
fn sample_value() -> impl Strategy<Value = u64> {
    (0u64..3, 0u64..u64::MAX).prop_map(|(scale, raw)| match scale {
        0 => raw % 128,        // exact + first bucketed octaves
        1 => raw % 50_000_000, // realistic latency-nanos range
        _ => raw,              // anywhere in the u64 domain
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Recorded-vs-extracted quantiles stay within the documented bucket
    /// error bound: `exact ≤ reported ≤ exact + exact/32`, and exactly equal
    /// below 64.
    #[test]
    fn quantiles_stay_within_the_bucket_error_bound(
        samples in proptest::collection::vec(sample_value(), 1..400),
        q in 0.0f64..1.0,
    ) {
        let h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let exact = exact_quantile(&sorted, q);
        let reported = h.quantile(q);
        prop_assert!(reported >= exact, "reported {} < exact {}", reported, exact);
        prop_assert!(
            reported <= exact.saturating_add(exact / 32),
            "reported {} beyond 1/32 bound of exact {}",
            reported,
            exact
        );
        if exact < 64 {
            prop_assert_eq!(reported, exact);
        }
        // The exact side-channels never pay the bucketing error.
        prop_assert_eq!(h.min(), sorted[0]);
        prop_assert_eq!(h.max(), *sorted.last().unwrap());
        prop_assert_eq!(h.count(), samples.len() as u64);
    }

    /// merge(a, b) is indistinguishable from recording every observation
    /// into one histogram: same count/sum/min/max and same value at every
    /// probed quantile.
    #[test]
    fn merge_equals_record_all(
        left in proptest::collection::vec(sample_value(), 0..200),
        right in proptest::collection::vec(sample_value(), 0..200),
    ) {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for &v in &left {
            a.record(v);
            all.record(v);
        }
        for &v in &right {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), all.count());
        prop_assert_eq!(a.sum(), all.sum());
        prop_assert_eq!(a.min(), all.min());
        prop_assert_eq!(a.max(), all.max());
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            prop_assert_eq!(a.quantile(q), all.quantile(q), "q={}", q);
        }
    }

    /// Edge cases: an empty histogram reports zeros everywhere; a one-sample
    /// histogram reports that sample exactly at every quantile.
    #[test]
    fn empty_and_single_sample_edges(v in sample_value(), q in 0.0f64..1.0) {
        let empty = Histogram::new();
        prop_assert!(empty.is_empty());
        prop_assert_eq!(empty.quantile(q), 0);
        prop_assert_eq!(empty.min(), 0);
        prop_assert_eq!(empty.max(), 0);

        let one = Histogram::new();
        one.record(v);
        prop_assert_eq!(one.quantile(q), v, "single sample is exact at q={}", q);
        prop_assert_eq!(one.min(), v);
        prop_assert_eq!(one.max(), v);
        prop_assert_eq!(one.count(), 1);
        prop_assert_eq!(one.sum(), v);
    }
}
