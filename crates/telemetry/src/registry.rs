//! A named registry of metrics with human-table and JSON rendering.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::{Counter, Gauge, Histogram, TimeSeries};

/// One registered metric (shared handles — recording never goes through the
/// registry lock).
#[derive(Debug, Clone)]
pub enum Metric {
    /// A monotonic counter.
    Counter(Arc<Counter>),
    /// A leveled gauge.
    Gauge(Arc<Gauge>),
    /// A latency histogram.
    Histogram(Arc<Histogram>),
    /// A bounded sample ring.
    TimeSeries(Arc<TimeSeries>),
}

impl Metric {
    fn type_label(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
            Metric::TimeSeries(_) => "time_series",
        }
    }
}

/// A registry mapping stable dotted names (`cluster.shard.3.queue_depth`,
/// `gateway.0.submit_latency_ns.speak`, …) to metrics. Lookup is
/// get-or-create and hands back a shared handle, so instrumented code
/// resolves its metrics once and records lock-free thereafter; names sort
/// lexicographically in every rendering.
///
/// ```
/// use dmps_telemetry::MetricsRegistry;
///
/// let registry = MetricsRegistry::new();
/// let sheds = registry.counter("cluster.sheds");
/// sheds.incr();
/// assert_eq!(registry.counter("cluster.sheds").get(), 1, "same handle");
/// ```
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The counter registered under `name`, created at zero on first use.
    ///
    /// # Panics
    ///
    /// Panics when `name` is already registered as a different metric type —
    /// a naming-scheme bug, not a runtime condition.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut metrics = self.metrics.lock().expect("registry lock");
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())));
        match metric {
            Metric::Counter(c) => c.clone(),
            other => panic!("metric {name} is a {}, not a counter", other.type_label()),
        }
    }

    /// The gauge registered under `name`, created at zero on first use.
    ///
    /// # Panics
    ///
    /// Panics when `name` is already registered as a different metric type.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut metrics = self.metrics.lock().expect("registry lock");
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())));
        match metric {
            Metric::Gauge(g) => g.clone(),
            other => panic!("metric {name} is a {}, not a gauge", other.type_label()),
        }
    }

    /// The histogram registered under `name`, created empty on first use.
    ///
    /// # Panics
    ///
    /// Panics when `name` is already registered as a different metric type.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut metrics = self.metrics.lock().expect("registry lock");
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())));
        match metric {
            Metric::Histogram(h) => h.clone(),
            other => panic!("metric {name} is a {}, not a histogram", other.type_label()),
        }
    }

    /// The time-series registered under `name`, created with the given
    /// retention capacity and cadence on first use (an existing series keeps
    /// its original parameters).
    ///
    /// # Panics
    ///
    /// Panics when `name` is already registered as a different metric type.
    pub fn time_series(&self, name: &str, capacity: usize, cadence: u64) -> Arc<TimeSeries> {
        let mut metrics = self.metrics.lock().expect("registry lock");
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::TimeSeries(Arc::new(TimeSeries::new(capacity, cadence))));
        match metric {
            Metric::TimeSeries(t) => t.clone(),
            other => panic!(
                "metric {name} is a {}, not a time series",
                other.type_label()
            ),
        }
    }

    /// The metric registered under `name`, if any (no creation).
    pub fn get(&self, name: &str) -> Option<Metric> {
        self.metrics
            .lock()
            .expect("registry lock")
            .get(name)
            .cloned()
    }

    /// All registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.metrics
            .lock()
            .expect("registry lock")
            .keys()
            .cloned()
            .collect()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.lock().expect("registry lock").len()
    }

    /// Whether nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders every metric as a human-readable table, one line per metric,
    /// names sorted.
    pub fn to_table(&self) -> String {
        let metrics = self.metrics.lock().expect("registry lock");
        let width = metrics.keys().map(String::len).max().unwrap_or(0);
        let mut out = String::new();
        for (name, metric) in metrics.iter() {
            let rendered = match metric {
                Metric::Counter(c) => c.get().to_string(),
                Metric::Gauge(g) => g.get().to_string(),
                Metric::Histogram(h) => h.summary(),
                Metric::TimeSeries(t) => format!(
                    "samples={} last={} max={}",
                    t.len(),
                    t.last().map_or_else(|| "-".into(), |(_, v)| v.to_string()),
                    t.max_value().map_or_else(|| "-".into(), |v| v.to_string()),
                ),
            };
            out.push_str(&format!("{name:<width$}  {rendered}\n"));
        }
        out
    }

    /// Renders every metric as machine-readable JSON (hand-built — the
    /// vendored `serde` is an API stand-in, not a serializer). Counters and
    /// gauges carry `value`; histograms carry exact `count`/`mean`/`max` and
    /// bucketed `p50/p90/p99/p999`; time-series carry their retained
    /// `[index, value]` samples.
    pub fn to_json(&self) -> String {
        let metrics = self.metrics.lock().expect("registry lock");
        let mut out = String::from("{\n  \"metrics\": {\n");
        for (i, (name, metric)) in metrics.iter().enumerate() {
            let body = match metric {
                Metric::Counter(c) => {
                    format!("\"type\": \"counter\", \"value\": {}", c.get())
                }
                Metric::Gauge(g) => {
                    format!("\"type\": \"gauge\", \"value\": {}", g.get())
                }
                Metric::Histogram(h) => format!(
                    "\"type\": \"histogram\", \"count\": {}, \"mean\": {:.1}, \"min\": {}, \
                     \"p50\": {}, \"p90\": {}, \"p99\": {}, \"p999\": {}, \"max\": {}",
                    h.count(),
                    h.mean(),
                    h.min(),
                    h.p50(),
                    h.p90(),
                    h.p99(),
                    h.p999(),
                    h.max()
                ),
                Metric::TimeSeries(t) => {
                    let samples: Vec<String> = t
                        .samples()
                        .iter()
                        .map(|(tick, v)| format!("[{tick}, {v}]"))
                        .collect();
                    format!(
                        "\"type\": \"time_series\", \"observations\": {}, \"samples\": [{}]",
                        t.observations(),
                        samples.join(", ")
                    )
                }
            };
            out.push_str(&format!(
                "    \"{}\": {{{body}}}{}\n",
                escape_json(name),
                if i + 1 == metrics.len() { "" } else { "," }
            ));
        }
        out.push_str("  }\n}\n");
        out
    }
}

/// Escapes a string for use inside a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_the_same_handle() {
        let registry = MetricsRegistry::new();
        registry.counter("a.count").add(2);
        registry.counter("a.count").add(3);
        assert_eq!(registry.counter("a.count").get(), 5);
        registry.gauge("a.level").set(-4);
        assert_eq!(registry.gauge("a.level").get(), -4);
        registry.histogram("a.lat").record(100);
        assert_eq!(registry.histogram("a.lat").count(), 1);
        registry.time_series("a.depth", 4, 1).observe(9);
        assert_eq!(registry.time_series("a.depth", 4, 1).len(), 1);
        assert_eq!(registry.len(), 4);
        assert!(!registry.is_empty());
        assert!(registry.get("a.count").is_some());
        assert!(registry.get("missing").is_none());
        assert_eq!(
            registry.names(),
            vec!["a.count", "a.depth", "a.lat", "a.level"]
        );
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn type_mismatch_is_a_naming_bug() {
        let registry = MetricsRegistry::new();
        registry.counter("x");
        registry.gauge("x");
    }

    #[test]
    fn table_renders_sorted_with_all_types() {
        let registry = MetricsRegistry::new();
        registry.counter("z.count").incr();
        registry.histogram("a.lat").record(50);
        registry.gauge("m.level").add(3);
        registry.time_series("q.depth", 4, 1).observe(2);
        let table = registry.to_table();
        let a = table.find("a.lat").expect("histogram line");
        let m = table.find("m.level").expect("gauge line");
        let z = table.find("z.count").expect("counter line");
        assert!(a < m && m < z, "names sort lexicographically");
        assert!(table.contains("count=1"));
        assert!(table.contains("samples=1 last=2 max=2"));
    }

    #[test]
    fn json_renders_every_type_and_escapes_names() {
        let registry = MetricsRegistry::new();
        registry.counter("plain").incr();
        registry.gauge("g").set(1);
        registry.histogram("h").record(10);
        registry.time_series("t", 2, 1).observe(5);
        registry.counter("weird\"name");
        let json = registry.to_json();
        assert!(json.contains("\"type\": \"counter\", \"value\": 1"));
        assert!(json.contains("\"type\": \"gauge\""));
        assert!(json.contains("\"p999\": 10"));
        assert!(json.contains("\"samples\": [[0, 5]]"));
        assert!(json.contains("weird\\\"name"));
        // Well-formedness smoke: braces and brackets balance.
        for (open, close) in [('{', '}'), ('[', ']')] {
            let opens = json.matches(open).count();
            let closes = json.matches(close).count();
            assert_eq!(opens, closes, "{open}{close} balance");
        }
    }

    #[test]
    fn escape_json_handles_control_chars() {
        assert_eq!(escape_json("a\\b\"c\nd\te\r"), "a\\\\b\\\"c\\nd\\te\\r");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }
}
