//! Per-request pipeline trace spans, 1-in-N sampling, and a bounded span
//! log.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// The pipeline stages a request moves through, in order. Stage timestamps
/// are nanosecond offsets from the span's start ([`Stage::Submitted`] is by
/// construction offset 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// The gateway accepted the request and allocated its id.
    Submitted,
    /// The request entered its shard's bounded ingest queue.
    Enqueued,
    /// The shard worker drained it out of the queue into a batch.
    Drained,
    /// The batch holding its event group-committed to the shard log.
    Committed,
    /// Its decision was released toward the gateway.
    Replied,
}

impl Stage {
    /// Number of stages.
    pub const COUNT: usize = 5;

    /// All stages in pipeline order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::Submitted,
        Stage::Enqueued,
        Stage::Drained,
        Stage::Committed,
        Stage::Replied,
    ];

    /// Stable lowercase label (used in rendered spans and trace events).
    pub fn label(self) -> &'static str {
        match self {
            Stage::Submitted => "submitted",
            Stage::Enqueued => "enqueued",
            Stage::Drained => "drained",
            Stage::Committed => "committed",
            Stage::Replied => "replied",
        }
    }
}

/// Sentinel for "stage not reached".
const UNSET: u64 = u64::MAX;

/// A lightweight per-request trace: one `Instant` taken at submission and a
/// fixed array of stage offsets stamped as the request moves through the
/// pipeline. Only sampled requests carry a span (see [`Sampler`]), so the
/// unsampled hot path allocates nothing.
#[derive(Debug, Clone)]
pub struct TraceSpan {
    seq: u64,
    kind: &'static str,
    gateway: Option<u32>,
    shard: Option<u32>,
    start: Instant,
    stages: [u64; Stage::COUNT],
}

impl TraceSpan {
    /// Starts a span for request `seq` of the given operation kind, stamping
    /// [`Stage::Submitted`] at offset 0.
    pub fn begin(seq: u64, kind: &'static str) -> Self {
        let mut stages = [UNSET; Stage::COUNT];
        stages[Stage::Submitted as usize] = 0;
        TraceSpan {
            seq,
            kind,
            gateway: None,
            shard: None,
            start: Instant::now(),
            stages,
        }
    }

    /// Stamps a stage at "now" (nanoseconds since the span began). Stamping
    /// a stage twice keeps the first timestamp.
    pub fn stamp(&mut self, stage: Stage) {
        let slot = &mut self.stages[stage as usize];
        if *slot == UNSET {
            *slot = crate::saturating_nanos(self.start.elapsed()).min(UNSET - 1);
        }
    }

    /// Tags the span with the submitting gateway's index.
    pub fn set_gateway(&mut self, gateway: u32) {
        self.gateway = Some(gateway);
    }

    /// Tags the span with the serving shard's index.
    pub fn set_shard(&mut self, shard: u32) {
        self.shard = Some(shard);
    }

    /// The request id the span traces.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The operation kind label (`"speak"`, `"chat"`, …).
    pub fn kind(&self) -> &'static str {
        self.kind
    }

    /// The submitting gateway's index, if tagged.
    pub fn gateway(&self) -> Option<u32> {
        self.gateway
    }

    /// The serving shard's index, if tagged.
    pub fn shard(&self) -> Option<u32> {
        self.shard
    }

    /// Nanosecond offset of a stage, if it was reached.
    pub fn stage_ns(&self, stage: Stage) -> Option<u64> {
        let ns = self.stages[stage as usize];
        (ns != UNSET).then_some(ns)
    }

    /// Submit→reply latency in nanoseconds, if the span completed.
    pub fn total_ns(&self) -> Option<u64> {
        self.stage_ns(Stage::Replied)
    }

    /// Whether every stage was stamped.
    pub fn is_complete(&self) -> bool {
        self.stages.iter().all(|&ns| ns != UNSET)
    }

    /// One-line rendering: request id, kind, gateway/shard tags, then each
    /// reached stage as `label+OFFSETns`.
    pub fn to_line(&self) -> String {
        let mut line = format!("seq={} kind={}", self.seq, self.kind);
        if let Some(g) = self.gateway {
            line.push_str(&format!(" gateway={g}"));
        }
        if let Some(s) = self.shard {
            line.push_str(&format!(" shard={s}"));
        }
        for stage in Stage::ALL {
            if let Some(ns) = self.stage_ns(stage) {
                line.push_str(&format!(" {}+{}ns", stage.label(), ns));
            }
        }
        line
    }
}

/// A 1-in-N sampling decision source: [`Sampler::hit`] returns `true` for
/// one in every `every` calls (relaxed global tick, so the rate holds across
/// threads). An `every` of 0 disables sampling entirely — and is checked
/// before the atomic, so a disabled sampler costs one branch.
#[derive(Debug, Default)]
pub struct Sampler {
    every: u64,
    tick: AtomicU64,
}

impl Sampler {
    /// A sampler selecting one in `every` calls (0 = never).
    pub fn new(every: u64) -> Self {
        Sampler {
            every,
            tick: AtomicU64::new(0),
        }
    }

    /// The configured rate (0 = disabled).
    pub fn every(&self) -> u64 {
        self.every
    }

    /// Whether this call is sampled.
    pub fn hit(&self) -> bool {
        if self.every == 0 {
            return false;
        }
        self.tick
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(self.every)
    }

    /// Reserves `n` consecutive sampling ticks with a single atomic
    /// operation and returns the run's first tick (`None` when sampling is
    /// disabled). Batch submitters use this so the per-item sampling
    /// decision ([`Sampler::reserved_hit`]) costs no shared-cache-line
    /// traffic.
    pub fn reserve(&self, n: u64) -> Option<u64> {
        (self.every != 0).then(|| self.tick.fetch_add(n, Ordering::Relaxed))
    }

    /// Whether the `offset`th tick of a [`Sampler::reserve`]d run starting
    /// at `start` is sampled.
    pub fn reserved_hit(&self, start: u64, offset: u64) -> bool {
        self.every != 0 && start.wrapping_add(offset).is_multiple_of(self.every)
    }
}

/// A bounded log of completed [`TraceSpan`]s: the newest `capacity` sampled
/// spans are retained, oldest evicted first.
#[derive(Debug)]
pub struct SpanLog {
    capacity: usize,
    ring: Mutex<VecDeque<TraceSpan>>,
    recorded: AtomicU64,
}

impl SpanLog {
    /// A log retaining up to `capacity` spans.
    pub fn new(capacity: usize) -> Self {
        SpanLog {
            capacity,
            ring: Mutex::new(VecDeque::with_capacity(capacity.min(1 << 12))),
            recorded: AtomicU64::new(0),
        }
    }

    /// Records a completed span.
    pub fn record(&self, span: TraceSpan) {
        self.recorded.fetch_add(1, Ordering::Relaxed);
        if self.capacity == 0 {
            return;
        }
        let mut ring = self.ring.lock().expect("span log lock");
        while ring.len() >= self.capacity {
            ring.pop_front();
        }
        ring.push_back(span);
    }

    /// The retained spans, oldest first.
    pub fn snapshot(&self) -> Vec<TraceSpan> {
        self.ring
            .lock()
            .expect("span log lock")
            .iter()
            .cloned()
            .collect()
    }

    /// Number of retained spans.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("span log lock").len()
    }

    /// Whether no span is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total spans ever recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// The retention capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl fmt::Display for TraceSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_line())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_stamp_in_monotonic_order() {
        let mut span = TraceSpan::begin(7, "speak");
        span.set_gateway(1);
        span.set_shard(3);
        assert_eq!(span.stage_ns(Stage::Submitted), Some(0));
        assert_eq!(span.stage_ns(Stage::Enqueued), None);
        assert!(!span.is_complete());
        for stage in [
            Stage::Enqueued,
            Stage::Drained,
            Stage::Committed,
            Stage::Replied,
        ] {
            span.stamp(stage);
        }
        assert!(span.is_complete());
        let offsets: Vec<u64> = Stage::ALL
            .iter()
            .map(|&s| span.stage_ns(s).expect("stamped"))
            .collect();
        let mut sorted = offsets.clone();
        sorted.sort_unstable();
        assert_eq!(offsets, sorted, "stage offsets are monotonic");
        assert_eq!(span.total_ns(), span.stage_ns(Stage::Replied));
        let line = span.to_line();
        assert!(line.contains("seq=7"));
        assert!(line.contains("kind=speak"));
        assert!(line.contains("gateway=1"));
        assert!(line.contains("shard=3"));
        assert!(line.contains("submitted+0ns"));
        assert!(line.contains("replied+"));
        assert_eq!(format!("{span}"), line);
    }

    #[test]
    fn double_stamp_keeps_the_first_timestamp() {
        let mut span = TraceSpan::begin(1, "chat");
        span.stamp(Stage::Enqueued);
        let first = span.stage_ns(Stage::Enqueued);
        std::thread::sleep(std::time::Duration::from_millis(1));
        span.stamp(Stage::Enqueued);
        assert_eq!(span.stage_ns(Stage::Enqueued), first);
    }

    #[test]
    fn sampler_selects_one_in_n() {
        let sampler = Sampler::new(4);
        let hits = (0..100).filter(|_| sampler.hit()).count();
        assert_eq!(hits, 25);
        let off = Sampler::new(0);
        assert!((0..100).filter(|_| off.hit()).count() == 0);
        assert_eq!(off.every(), 0);
        let every = Sampler::new(1);
        assert_eq!((0..10).filter(|_| every.hit()).count(), 10);
    }

    #[test]
    fn reserved_runs_sample_one_in_n_without_per_item_atomics() {
        let sampler = Sampler::new(4);
        let mut hits = 0;
        for _ in 0..10 {
            let start = sampler.reserve(10).expect("sampling on");
            hits += (0..10).filter(|&i| sampler.reserved_hit(start, i)).count();
        }
        assert_eq!(hits, 25, "1-in-4 over 100 reserved ticks");
        let off = Sampler::new(0);
        assert_eq!(off.reserve(10), None);
        assert!(!off.reserved_hit(0, 0));
    }

    #[test]
    fn span_log_is_bounded_and_counts_evictions() {
        let log = SpanLog::new(2);
        assert!(log.is_empty());
        for seq in 0..5u64 {
            log.record(TraceSpan::begin(seq, "speak"));
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.recorded(), 5);
        let retained: Vec<u64> = log.snapshot().iter().map(|s| s.seq()).collect();
        assert_eq!(retained, vec![3, 4], "newest spans survive");
        assert_eq!(log.capacity(), 2);
    }
}
