//! Dependency-free telemetry primitives for the DMPS control plane.
//!
//! The cluster's ingest pipeline (gateway → bounded shard queue → worker
//! drain → group commit → reply) is measured with four primitives, all
//! designed so the *recording* side is cheap enough to live on the hot path:
//!
//! * [`Counter`] / [`Gauge`] — sharded lock-free accumulators: writers touch
//!   one cache-line-padded atomic stripe chosen per thread, readers sum the
//!   stripes. No locks, no contention between writer threads.
//! * [`Histogram`] — a log-bucketed (HDR-style) latency histogram with a
//!   fixed bucket layout: values below 64 are exact, larger values land in
//!   one of 32 sub-buckets per power of two, bounding the relative quantile
//!   error at 1/32 (≈ 3.1%). Histograms are mergeable and track exact
//!   `count`/`sum`/`min`/`max` beside the buckets, so `mean` and `max` never
//!   pay the bucketing error.
//! * [`TimeSeries`] — a bounded ring that retains every Nth observation of a
//!   gauge-like value (queue depth sampled on every drain, for example),
//!   giving history where a point-in-time snapshot loses it.
//! * [`TraceSpan`] / [`SpanLog`] — a per-request stage-timestamp array
//!   (`submitted → enqueued → drained → committed → replied`) recorded for a
//!   1-in-N [`Sampler`]-selected subset of requests and retained in a
//!   bounded log.
//!
//! A [`MetricsRegistry`] names every metric with a stable dotted scheme
//! (`cluster.shard.3.queue_depth`, `gateway.0.submit_latency_ns.speak`, …)
//! and renders the whole set as a human table or machine-readable JSON. The
//! JSON is hand-rendered (the vendored `serde` is an API stand-in, not a
//! serializer), matching the repo's bench-artifact idiom.
//!
//! ```
//! use dmps_telemetry::MetricsRegistry;
//!
//! let registry = MetricsRegistry::new();
//! registry.counter("cluster.shard.0.dedup_hits").add(3);
//! registry.histogram("gateway.0.submit_latency_ns").record(1_850);
//! let table = registry.to_table();
//! assert!(table.contains("cluster.shard.0.dedup_hits"));
//! assert!(registry.to_json().contains("\"type\": \"histogram\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counter;
mod histogram;
mod registry;
mod span;
mod timeseries;

pub use counter::{Counter, Gauge};
pub use histogram::Histogram;
pub use registry::{Metric, MetricsRegistry};
pub use span::{Sampler, SpanLog, Stage, TraceSpan};
pub use timeseries::TimeSeries;

/// Converts a [`std::time::Duration`] to whole nanoseconds, saturating at
/// `u64::MAX` (≈ 584 years) instead of silently wrapping.
pub fn saturating_nanos(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturating_nanos_saturates() {
        assert_eq!(saturating_nanos(std::time::Duration::from_nanos(7)), 7);
        assert_eq!(
            saturating_nanos(std::time::Duration::MAX),
            u64::MAX,
            "beyond-u64 durations clamp instead of wrapping"
        );
    }
}
