//! A bounded ring of periodic gauge samples.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A bounded time-series: every `cadence`-th observation is retained (with
/// its observation index as a logical timestamp), oldest samples evicted
/// first. A cadence of 1 keeps every observation; a cadence of 0 disables
/// sampling entirely (the tick still advances, so a disabled series stays
/// cheap: one relaxed `fetch_add`, no lock).
///
/// The intended use is history for values that today only exist as
/// point-in-time snapshots — the worker samples its queue depth here on
/// every drain, so a stall shows up as a ramp instead of being invisible
/// between two manual `queue_stats` calls.
///
/// ```
/// use dmps_telemetry::TimeSeries;
///
/// let depth = TimeSeries::new(4, 2); // keep 4 samples, every 2nd observation
/// for v in [5, 9, 3, 7, 1, 8] {
///     depth.observe(v);
/// }
/// assert_eq!(depth.samples(), vec![(0, 5), (2, 3), (4, 1)]);
/// ```
#[derive(Debug)]
pub struct TimeSeries {
    capacity: usize,
    cadence: u64,
    tick: AtomicU64,
    ring: Mutex<VecDeque<(u64, u64)>>,
}

impl TimeSeries {
    /// A series retaining up to `capacity` samples, keeping every
    /// `cadence`-th observation.
    pub fn new(capacity: usize, cadence: u64) -> Self {
        TimeSeries {
            capacity,
            cadence,
            tick: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::with_capacity(capacity.min(1 << 16))),
        }
    }

    /// Offers one observation; it is retained only on the cadence.
    pub fn observe(&self, value: u64) {
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        if self.cadence == 0 || !tick.is_multiple_of(self.cadence) {
            return;
        }
        let mut ring = self.ring.lock().expect("time-series lock");
        if self.capacity == 0 {
            return;
        }
        while ring.len() >= self.capacity {
            ring.pop_front();
        }
        ring.push_back((tick, value));
    }

    /// The retained `(observation index, value)` samples, oldest first.
    pub fn samples(&self) -> Vec<(u64, u64)> {
        self.ring
            .lock()
            .expect("time-series lock")
            .iter()
            .copied()
            .collect()
    }

    /// The most recent retained sample.
    pub fn last(&self) -> Option<(u64, u64)> {
        self.ring.lock().expect("time-series lock").back().copied()
    }

    /// The largest retained value.
    pub fn max_value(&self) -> Option<u64> {
        self.ring
            .lock()
            .expect("time-series lock")
            .iter()
            .map(|&(_, v)| v)
            .max()
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("time-series lock").len()
    }

    /// Whether no sample is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total observations offered so far (retained or not).
    pub fn observations(&self) -> u64 {
        self.tick.load(Ordering::Relaxed)
    }

    /// The retention capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The sampling cadence (every Nth observation retained; 0 = disabled).
    pub fn cadence(&self) -> u64 {
        self.cadence
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cadence_selects_every_nth_observation() {
        let series = TimeSeries::new(10, 3);
        for v in 0..9u64 {
            series.observe(v * 10);
        }
        assert_eq!(series.samples(), vec![(0, 0), (3, 30), (6, 60)]);
        assert_eq!(series.observations(), 9);
        assert_eq!(series.last(), Some((6, 60)));
        assert_eq!(series.max_value(), Some(60));
    }

    #[test]
    fn capacity_evicts_oldest_first() {
        let series = TimeSeries::new(2, 1);
        for v in [1u64, 2, 3, 4] {
            series.observe(v);
        }
        assert_eq!(series.samples(), vec![(2, 3), (3, 4)]);
        assert_eq!(series.len(), 2);
    }

    #[test]
    fn zero_cadence_disables_retention() {
        let series = TimeSeries::new(8, 0);
        for v in 0..100u64 {
            series.observe(v);
        }
        assert!(series.is_empty());
        assert_eq!(series.observations(), 100, "the tick still advances");
        assert_eq!(series.last(), None);
        assert_eq!(series.max_value(), None);
    }
}
