//! A log-bucketed (HDR-style) histogram with bounded quantile error.
//!
//! # Bucket layout and error bound
//!
//! The value domain `0..=u64::MAX` is covered by a fixed array of buckets:
//! values below 32 get one bucket each (exact), and every power-of-two
//! octave above that is split into 32 equal sub-buckets. A value `v ≥ 64`
//! therefore lands in a bucket whose width is at most `v / 32`, which bounds
//! the quantile error:
//!
//! > for any quantile `q`, `exact ≤ reported ≤ exact + exact / 32`
//!
//! (integer division; values below 64 are exact because their buckets have
//! width 1). `count`, `sum`, `min` and `max` are tracked exactly beside the
//! buckets, so `mean` and `max` never pay the bucketing error, and reported
//! quantiles are clamped to the exact `max`.
//!
//! Recording is a handful of relaxed atomic operations — no locks, no
//! allocation — so histograms can sit on the ingest hot path.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// log2 of the number of sub-buckets per octave.
const SUB_BITS: u32 = 5;
/// Sub-buckets per octave (32).
const SUBS: usize = 1 << SUB_BITS;
/// Octaves with their own sub-bucket run: msb ∈ `SUB_BITS..=63`.
const OCTAVES: usize = 64 - SUB_BITS as usize;
/// Total buckets: one per value below `SUBS`, then `SUBS` per octave.
const BUCKETS: usize = SUBS + OCTAVES * SUBS;

/// Bucket index of a value.
fn bucket_index(v: u64) -> usize {
    if v < SUBS as u64 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let sub = ((v >> (msb - SUB_BITS)) - SUBS as u64) as usize;
        ((msb - SUB_BITS) as usize) * SUBS + SUBS + sub
    }
}

/// Largest value a bucket holds (inclusive upper bound).
fn bucket_bound(index: usize) -> u64 {
    if index < SUBS {
        index as u64
    } else {
        let msb = (index / SUBS) as u32 - 1 + SUB_BITS;
        let sub = (index % SUBS) as u64;
        let width = 1u64 << (msb - SUB_BITS);
        (1u64 << msb) + sub * width + (width - 1)
    }
}

/// A mergeable, lock-free latency histogram with a fixed log-bucketed
/// layout: values below 64 are exact, larger values report with relative
/// error at most 1/32 (see the bucket-layout notes at the top of this source
/// file); `count`/`sum`/`min`/`max` are tracked exactly.
///
/// ```
/// use dmps_telemetry::Histogram;
///
/// let latency = Histogram::new();
/// for ns in [120, 450, 450, 9_000] {
///     latency.record(ns);
/// }
/// assert_eq!(latency.count(), 4);
/// assert_eq!(latency.max(), 9_000); // max is exact
/// let p50 = latency.quantile(0.50);
/// assert!((450..=450 + 450 / 32).contains(&p50));
/// ```
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Exact sum of all observations (wraps only past `u64::MAX` total).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Exact smallest observation, or 0 when empty.
    pub fn min(&self) -> u64 {
        let min = self.min.load(Ordering::Relaxed);
        if min == u64::MAX && self.is_empty() {
            0
        } else {
            min
        }
    }

    /// Exact largest observation, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Exact arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum() as f64 / count as f64
        }
    }

    /// The quantile `q ∈ [0, 1]` with the documented error bound (`exact ≤
    /// reported ≤ exact + exact / 32`, clamped to the exact max). Returns 0
    /// when the histogram is empty.
    ///
    /// Reads are unsynchronized with concurrent writers: a quantile taken
    /// mid-recording reflects some recent prefix of the observations.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cumulative = 0u64;
        for (index, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            if cumulative >= rank {
                return bucket_bound(index).min(self.max());
            }
        }
        self.max()
    }

    /// Median (`quantile(0.50)`).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Folds another histogram into this one. Equivalent (bucket-for-bucket
    /// and in every exact side-channel) to having recorded the other
    /// histogram's observations here.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// One-line summary: `count mean p50 p90 p99 p999 max`.
    pub fn summary(&self) -> String {
        format!(
            "count={} mean={:.0} p50={} p90={} p99={} p999={} max={}",
            self.count(),
            self.mean(),
            self.p50(),
            self.p90(),
            self.p99(),
            self.p999(),
            self.max()
        )
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("mean", &self.mean())
            .field("p50", &self.p50())
            .field("p99", &self.p99())
            .field("max", &self.max())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_exact_below_64() {
        for v in 0..64u64 {
            let index = bucket_index(v);
            assert_eq!(bucket_bound(index), v, "value {v} has a width-1 bucket");
        }
    }

    #[test]
    fn bucket_bound_brackets_every_probe_value() {
        let probes = [
            64u64,
            65,
            100,
            1_000,
            4_095,
            4_096,
            123_456_789,
            u64::MAX / 3,
            u64::MAX - 1,
            u64::MAX,
        ];
        for &v in &probes {
            let index = bucket_index(v);
            let upper = bucket_bound(index);
            assert!(upper >= v, "bound {upper} below value {v}");
            assert!(
                upper - v <= v / 32,
                "bucket width violates the 1/32 bound at {v}: upper {upper}"
            );
            if index > 0 {
                assert!(
                    bucket_bound(index - 1) < v,
                    "value {v} fits an earlier bucket"
                );
            }
        }
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.p999(), 0);
    }

    #[test]
    fn single_sample_is_exact_at_every_quantile() {
        for v in [0u64, 1, 63, 64, 12_345, u64::MAX] {
            let h = Histogram::new();
            h.record(v);
            for q in [0.0, 0.5, 0.95, 0.999, 1.0] {
                assert_eq!(h.quantile(q), v, "q={q} of a single sample {v}");
            }
            assert_eq!(h.min(), v);
            assert_eq!(h.max(), v);
        }
    }

    #[test]
    fn quantiles_of_a_uniform_ramp_stay_in_bound() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (q, exact) in [(0.50, 5_000u64), (0.90, 9_000), (0.99, 9_900)] {
            let reported = h.quantile(q);
            assert!(reported >= exact, "q={q}: {reported} < exact {exact}");
            assert!(
                reported <= exact + exact / 32,
                "q={q}: {reported} beyond bound of exact {exact}"
            );
        }
        assert_eq!(h.max(), 10_000, "max is exact");
        assert_eq!(h.min(), 1, "min is exact");
        assert!((h.mean() - 5_000.5).abs() < 1e-9, "mean is exact");
    }

    #[test]
    fn merge_equals_recording_everything() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in [3u64, 70, 70, 5_000, 123_456] {
            a.record(v);
            all.record(v);
        }
        for v in [1u64, 70, 999_999_999] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.sum(), all.sum());
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
        for q in [0.01, 0.25, 0.5, 0.75, 0.99] {
            assert_eq!(a.quantile(q), all.quantile(q), "q={q}");
        }
    }

    #[test]
    fn summary_and_debug_render() {
        let h = Histogram::new();
        h.record(100);
        let summary = h.summary();
        assert!(summary.contains("count=1"));
        assert!(summary.contains("max=100"));
        assert!(format!("{h:?}").contains("Histogram"));
    }
}
