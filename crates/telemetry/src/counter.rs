//! Sharded lock-free counters and gauges.
//!
//! Writers pick one stripe per thread (assigned round-robin the first time a
//! thread records anything) and touch only that stripe's cache-line-padded
//! atomic; readers sum the stripes. Recording is a single relaxed
//! `fetch_add` with no cross-thread cache-line bouncing as long as threads
//! land on distinct stripes.

use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};

/// Number of independent stripes. More stripes than the worker + gateway
/// threads a cluster realistically runs keeps collisions rare; the read-side
/// cost (summing 16 atomics) stays negligible.
const STRIPES: usize = 16;

/// Round-robin source of per-thread stripe assignments.
static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static STRIPE: usize = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) % STRIPES;
}

fn stripe() -> usize {
    STRIPE.with(|s| *s)
}

#[repr(align(64))]
#[derive(Default)]
struct PadU64(AtomicU64);

#[repr(align(64))]
#[derive(Default)]
struct PadI64(AtomicI64);

/// A monotonically increasing sharded counter.
///
/// ```
/// use dmps_telemetry::Counter;
/// let hits = Counter::new();
/// hits.incr();
/// hits.add(4);
/// assert_eq!(hits.get(), 5);
/// ```
#[derive(Default)]
pub struct Counter {
    stripes: [PadU64; STRIPES],
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.stripes[stripe()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total (sum over all stripes). Concurrent writers may land
    /// between stripe reads, so the value is a consistent-enough snapshot,
    /// not a linearization point.
    pub fn get(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl fmt::Debug for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Counter")
            .field("value", &self.get())
            .finish()
    }
}

/// A sharded gauge: like [`Counter`] but decrementable, tracked as per-stripe
/// signed deltas summed on read.
///
/// ```
/// use dmps_telemetry::Gauge;
/// let depth = Gauge::new();
/// depth.add(10);
/// depth.sub(3);
/// assert_eq!(depth.get(), 7);
/// ```
#[derive(Default)]
pub struct Gauge {
    stripes: [PadI64; STRIPES],
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Adds `n` to the gauge.
    pub fn add(&self, n: i64) {
        self.stripes[stripe()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n` from the gauge.
    pub fn sub(&self, n: i64) {
        self.add(-n);
    }

    /// Sets the gauge to `v` by applying the needed delta on the calling
    /// thread's stripe. Concurrent `set`s race like any two writers; the
    /// intended use is a single owner publishing a level.
    pub fn set(&self, v: i64) {
        self.add(v - self.get());
    }

    /// The current level (sum of all stripe deltas). May be transiently
    /// negative while paired add/sub operations from different threads are
    /// in flight.
    pub fn get(&self) -> i64 {
        self.stripes
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl fmt::Debug for Gauge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Gauge").field("value", &self.get()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_accumulates_across_threads() {
        let counter = Arc::new(Counter::new());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let counter = Arc::clone(&counter);
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        counter.incr();
                    }
                });
            }
        });
        assert_eq!(counter.get(), 80_000);
    }

    #[test]
    fn gauge_tracks_level_across_threads() {
        let gauge = Arc::new(Gauge::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let gauge = Arc::clone(&gauge);
                scope.spawn(move || {
                    for _ in 0..1_000 {
                        gauge.add(3);
                        gauge.sub(1);
                    }
                });
            }
        });
        assert_eq!(gauge.get(), 4 * 1_000 * 2);
    }

    #[test]
    fn gauge_set_publishes_a_level() {
        let gauge = Gauge::new();
        gauge.set(42);
        assert_eq!(gauge.get(), 42);
        gauge.set(7);
        assert_eq!(gauge.get(), 7);
        gauge.set(-3);
        assert_eq!(gauge.get(), -3);
    }

    #[test]
    fn debug_prints_the_aggregate() {
        let counter = Counter::new();
        counter.add(5);
        assert!(format!("{counter:?}").contains('5'));
        let gauge = Gauge::new();
        gauge.add(-2);
        assert!(format!("{gauge:?}").contains("-2"));
    }
}
