//! Robustness properties of the wire codec: decoding is total. No input —
//! truncated, bit-flipped, or arbitrary garbage — may panic the decoder;
//! every outcome is `Ok` or a `WireError`. This is the contract the
//! fault-injection plane leans on: corrupt durable bytes must surface as
//! detectable errors, never a process abort.

use std::collections::BTreeMap;

use dmps_wire::{from_str, from_str_checksummed, to_string, to_string_checksummed};
use proptest::prelude::*;

/// A value exercising every shape the codec has to parse: nested
/// collections, strings with separators and length-prefix look-alikes,
/// options, maps and tuples.
type Deep = (
    u64,
    String,
    Vec<(Option<String>, Vec<u64>)>,
    BTreeMap<String, (i64, bool)>,
);

/// Strings biased toward the codec's own metacharacters (spaces, colons,
/// digits) plus some multi-byte codepoints, so mutations land on parser
/// edges, not just payload bytes.
fn arb_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..16, 0..10).prop_map(|picks| {
        const ALPHABET: [char; 16] = [
            ' ', ':', '0', '9', '1', 'x', 'a', '-', '%', 'é', '→', '🦀', 'z', '5', ':', ' ',
        ];
        picks.into_iter().map(|i| ALPHABET[i]).collect()
    })
}

fn arb_option_string() -> impl Strategy<Value = Option<String>> {
    (proptest::bool::ANY, arb_string()).prop_map(|(some, s)| some.then_some(s))
}

fn arb_deep() -> impl Strategy<Value = Deep> {
    (
        0u64..u64::MAX,
        arb_string(),
        proptest::collection::vec(
            (
                arb_option_string(),
                proptest::collection::vec(0u64..u64::MAX, 0..4),
            ),
            0..4,
        ),
        proptest::collection::vec(
            (arb_string(), (i64::MIN..i64::MAX, proptest::bool::ANY)),
            0..4,
        )
        .prop_map(|pairs| pairs.into_iter().collect::<BTreeMap<_, _>>()),
    )
}

/// Flips one bit of one byte, keeping the buffer valid UTF-8 by retrying on
/// a different bit of the same byte when the flip lands mid-codepoint.
fn flip_bit(encoded: &str, byte_idx: usize, bit: u8) -> Option<String> {
    if encoded.is_empty() {
        return None;
    }
    let bytes = encoded.as_bytes();
    let i = byte_idx % bytes.len();
    for b in 0..8u8 {
        let mut mutated = bytes.to_vec();
        mutated[i] ^= 1 << ((bit + b) % 8);
        if let Ok(s) = String::from_utf8(mutated) {
            return Some(s);
        }
    }
    let mut fallback = bytes.to_vec();
    fallback[i] = b'?';
    String::from_utf8(fallback).ok()
}

proptest! {
    /// Decoding any prefix of a valid encoding returns Ok or an error —
    /// never a panic (a panic fails the test).
    #[test]
    fn truncated_encodings_never_panic(value in arb_deep(), cut in 0usize..4096) {
        let encoded = to_string(&value);
        let mut end = cut % (encoded.len() + 1);
        // Truncation may land mid-codepoint; clamp to a char boundary.
        while !encoded.is_char_boundary(end) {
            end -= 1;
        }
        let _ = from_str::<Deep>(&encoded[..end]);
    }

    /// Decoding a bit-flipped valid encoding returns Ok or an error — never
    /// a panic, even when the flip corrupts a length prefix.
    #[test]
    fn bit_flipped_encodings_never_panic(
        value in arb_deep(),
        byte_idx in 0usize..4096,
        bit in 0u8..8,
    ) {
        let encoded = to_string(&value);
        if let Some(mutated) = flip_bit(&encoded, byte_idx, bit) {
            let _ = from_str::<Deep>(&mutated);
        }
    }

    /// Arbitrary garbage (never derived from a valid encoding) does not
    /// panic the decoder either.
    #[test]
    fn arbitrary_input_never_panics(tokens in proptest::collection::vec(arb_string(), 0..8)) {
        let input = tokens.join(" ");
        let _ = from_str::<Deep>(&input);
        let _ = from_str::<String>(&input);
        let _ = from_str::<Vec<u64>>(&input);
        let _ = from_str_checksummed::<Deep>(&input);
    }

    /// A checksummed frame either round-trips exactly or reports an error on
    /// any single-bit payload corruption; the only silent path is the
    /// unmodified frame.
    #[test]
    fn checksummed_frames_catch_every_bit_flip(
        value in arb_deep(),
        byte_idx in 0usize..4096,
        bit in 0u8..8,
    ) {
        let framed = to_string_checksummed(&value);
        prop_assert_eq!(from_str_checksummed::<Deep>(&framed).unwrap(), value);
        if let Some(mutated) = flip_bit(&framed, byte_idx, bit) {
            if mutated != framed {
                prop_assert!(from_str_checksummed::<Deep>(&mutated).is_err());
            }
        }
    }
}

/// Exhaustive single-byte truncation of one tricky value — cheaper than the
/// proptest sweep and certain to cover every boundary.
#[test]
fn every_truncation_point_is_total() {
    let value: Deep = (
        u64::MAX,
        "a b:2 x%  ".into(),
        vec![(Some(":".into()), vec![1, u64::MAX]), (None, vec![])],
        [("k v".into(), (i64::MIN, true))].into_iter().collect(),
    );
    let encoded = to_string(&value);
    for end in 0..=encoded.len() {
        if encoded.is_char_boundary(end) {
            let _ = from_str::<Deep>(&encoded[..end]);
        }
    }
}
