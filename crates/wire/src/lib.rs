//! # dmps-wire
//!
//! A compact, dependency-free serialization codec used across the DMPS
//! workspace for durable state: arbiter snapshots (`dmps-floor`'s
//! `ArbiterSnapshot`), shard event logs (`dmps-cluster`), and experiment
//! traces (`dmps-simnet`).
//!
//! The format is a flat token stream: integers in decimal, floats as exact
//! IEEE-754 bit patterns in hex, strings length-prefixed (`len:bytes`), all
//! separated by single spaces. It is deliberately boring — deterministic,
//! byte-exact round-trips (including every `f64`), trivially diffable in
//! test failures, and fast enough that snapshot encode/decode never shows up
//! in shard-failover profiles.
//!
//! # Example
//!
//! ```
//! use dmps_wire::{from_str, to_string, Wire};
//!
//! let value: (u64, String, Vec<bool>) = (7, "floor".into(), vec![true, false]);
//! let encoded = to_string(&value);
//! let back: (u64, String, Vec<bool>) = from_str(&encoded).unwrap();
//! assert_eq!(value, back);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::time::Duration;

/// Errors raised while decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The input ended before the value was complete.
    UnexpectedEnd,
    /// A token could not be parsed as the expected type.
    BadToken {
        /// What the decoder expected.
        expected: &'static str,
        /// The offending token (truncated).
        token: String,
    },
    /// Trailing bytes remained after the top-level value was decoded.
    TrailingInput,
    /// A checksummed frame's CRC did not match its payload (bit rot, a torn
    /// write, or truncation of the durable bytes).
    Checksum {
        /// The CRC the frame claimed.
        expected: u32,
        /// The CRC the payload actually hashes to.
        actual: u32,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEnd => write!(f, "input ended mid-value"),
            WireError::BadToken { expected, token } => {
                write!(f, "expected {expected}, got `{token}`")
            }
            WireError::TrailingInput => write!(f, "trailing input after value"),
            WireError::Checksum { expected, actual } => {
                write!(
                    f,
                    "checksum mismatch: frame says {expected:08x}, payload hashes to {actual:08x}"
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, WireError>;

/// Serializes values into the token stream.
#[derive(Debug, Default)]
pub struct Writer {
    out: String,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    fn sep(&mut self) {
        if !self.out.is_empty() {
            self.out.push(' ');
        }
    }

    /// Writes an unsigned integer.
    pub fn u64(&mut self, v: u64) {
        self.sep();
        self.out.push_str(&v.to_string());
    }

    /// Writes a signed integer.
    pub fn i64(&mut self, v: i64) {
        self.sep();
        self.out.push_str(&v.to_string());
    }

    /// Writes a float as its exact bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.sep();
        self.out.push_str(&format!("x{:016x}", v.to_bits()));
    }

    /// Writes a boolean.
    pub fn bool(&mut self, v: bool) {
        self.sep();
        self.out.push(if v { '1' } else { '0' });
    }

    /// Writes a length-prefixed string.
    pub fn str(&mut self, s: &str) {
        self.sep();
        self.out.push_str(&s.len().to_string());
        self.out.push(':');
        self.out.push_str(s);
    }

    /// Finishes and returns the encoded buffer.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Deserializes values from the token stream.
#[derive(Debug)]
pub struct Reader<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over an encoded buffer.
    pub fn new(input: &'a str) -> Self {
        Reader { input, pos: 0 }
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.input.len()
    }

    fn skip_sep(&mut self) {
        if self.pos < self.input.len() && self.input.as_bytes()[self.pos] == b' ' {
            self.pos += 1;
        }
    }

    fn token(&mut self) -> Result<&'a str> {
        self.skip_sep();
        if self.pos >= self.input.len() {
            return Err(WireError::UnexpectedEnd);
        }
        let rest = &self.input[self.pos..];
        let end = rest.find(' ').unwrap_or(rest.len());
        let tok = &rest[..end];
        self.pos += end;
        Ok(tok)
    }

    /// Reads an unsigned integer.
    pub fn u64(&mut self) -> Result<u64> {
        let tok = self.token()?;
        tok.parse().map_err(|_| WireError::BadToken {
            expected: "u64",
            token: tok.chars().take(32).collect(),
        })
    }

    /// Reads a signed integer.
    pub fn i64(&mut self) -> Result<i64> {
        let tok = self.token()?;
        tok.parse().map_err(|_| WireError::BadToken {
            expected: "i64",
            token: tok.chars().take(32).collect(),
        })
    }

    /// Reads a float from its bit pattern.
    pub fn f64(&mut self) -> Result<f64> {
        let tok = self.token()?;
        let hex = tok.strip_prefix('x').ok_or_else(|| WireError::BadToken {
            expected: "f64 bits",
            token: tok.chars().take(32).collect(),
        })?;
        u64::from_str_radix(hex, 16)
            .map(f64::from_bits)
            .map_err(|_| WireError::BadToken {
                expected: "f64 bits",
                token: tok.chars().take(32).collect(),
            })
    }

    /// Reads a boolean.
    pub fn bool(&mut self) -> Result<bool> {
        match self.token()? {
            "1" => Ok(true),
            "0" => Ok(false),
            other => Err(WireError::BadToken {
                expected: "bool",
                token: other.chars().take(32).collect(),
            }),
        }
    }

    /// Reads a length-prefixed string.
    pub fn str(&mut self) -> Result<String> {
        self.skip_sep();
        if self.pos >= self.input.len() {
            return Err(WireError::UnexpectedEnd);
        }
        let rest = &self.input[self.pos..];
        let colon = rest.find(':').ok_or(WireError::BadToken {
            expected: "string length prefix",
            token: rest.chars().take(32).collect(),
        })?;
        let len: usize = rest[..colon].parse().map_err(|_| WireError::BadToken {
            expected: "string length",
            token: rest[..colon].chars().take(32).collect(),
        })?;
        let start = colon + 1;
        // Checked: a corrupt length prefix can claim usize::MAX bytes, and
        // `start + len` must not overflow on it.
        let end = start.checked_add(len).ok_or(WireError::UnexpectedEnd)?;
        if rest.len() < end {
            return Err(WireError::UnexpectedEnd);
        }
        let s = rest.get(start..end).ok_or(WireError::UnexpectedEnd)?;
        self.pos += end;
        Ok(s.to_string())
    }
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected) — the checksum under every durable frame.
// Hand-rolled because the workspace is dependency-free; the table is built at
// compile time.

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// Folds `bytes` into a running CRC32 state. Start from
/// [`CRC32_INIT`] and finish with [`crc32_finish`]; or use [`crc32`] for a
/// one-shot hash.
pub fn crc32_update(mut state: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        state = (state >> 8) ^ CRC32_TABLE[((state ^ b as u32) & 0xFF) as usize];
    }
    state
}

/// The initial CRC32 state.
pub const CRC32_INIT: u32 = 0xFFFF_FFFF;

/// Finalizes a running CRC32 state.
pub fn crc32_finish(state: u32) -> u32 {
    !state
}

/// One-shot CRC32 (IEEE) of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_finish(crc32_update(CRC32_INIT, bytes))
}

/// Encodes a value with a CRC32 frame: the first token is the checksum of
/// the encoded payload that follows. [`from_str_checksummed`] refuses the
/// frame when the payload no longer hashes to it — the detection layer under
/// self-healing durability.
pub fn to_string_checksummed<T: Wire>(value: &T) -> String {
    let payload = to_string(value);
    let mut framed = String::with_capacity(payload.len() + 11);
    framed.push_str(&crc32(payload.as_bytes()).to_string());
    framed.push(' ');
    framed.push_str(&payload);
    framed
}

/// Decodes a CRC32-framed value, verifying the checksum first.
///
/// # Errors
///
/// [`WireError::Checksum`] when the payload does not hash to the frame's
/// CRC; any decode error the payload itself raises.
pub fn from_str_checksummed<T: Wire>(s: &str) -> Result<T> {
    let mut r = Reader::new(s);
    let expected = r.u64()?;
    let expected = u32::try_from(expected).map_err(|_| WireError::BadToken {
        expected: "crc32",
        token: expected.to_string(),
    })?;
    let payload = s.get(r.pos..).unwrap_or("").strip_prefix(' ').unwrap_or("");
    let actual = crc32(payload.as_bytes());
    if actual != expected {
        return Err(WireError::Checksum { expected, actual });
    }
    from_str(payload)
}

/// Types encodable to / decodable from the wire format.
pub trait Wire: Sized {
    /// Appends this value to the writer.
    fn encode(&self, w: &mut Writer);

    /// Reads one value from the reader.
    fn decode(r: &mut Reader<'_>) -> Result<Self>;
}

/// Encodes a value to a string.
pub fn to_string<T: Wire>(value: &T) -> String {
    let mut w = Writer::new();
    value.encode(&mut w);
    w.finish()
}

/// Decodes a value from a string, requiring all input to be consumed.
pub fn from_str<T: Wire>(s: &str) -> Result<T> {
    let mut r = Reader::new(s);
    let v = T::decode(&mut r)?;
    if !r.is_empty() {
        return Err(WireError::TrailingInput);
    }
    Ok(v)
}

macro_rules! wire_unsigned {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            fn encode(&self, w: &mut Writer) {
                w.u64(*self as u64);
            }
            fn decode(r: &mut Reader<'_>) -> Result<Self> {
                let v = r.u64()?;
                <$t>::try_from(v).map_err(|_| WireError::BadToken {
                    expected: stringify!($t),
                    token: v.to_string(),
                })
            }
        }
    )*};
}

wire_unsigned!(u8, u16, u32, u64, usize);

macro_rules! wire_signed {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            fn encode(&self, w: &mut Writer) {
                w.i64(*self as i64);
            }
            fn decode(r: &mut Reader<'_>) -> Result<Self> {
                let v = r.i64()?;
                <$t>::try_from(v).map_err(|_| WireError::BadToken {
                    expected: stringify!($t),
                    token: v.to_string(),
                })
            }
        }
    )*};
}

wire_signed!(i8, i16, i32, i64, isize);

impl Wire for f64 {
    fn encode(&self, w: &mut Writer) {
        w.f64(*self);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        r.f64()
    }
}

impl Wire for bool {
    fn encode(&self, w: &mut Writer) {
        w.bool(*self);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        r.bool()
    }
}

impl Wire for String {
    fn encode(&self, w: &mut Writer) {
        w.str(self);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        r.str()
    }
}

impl Wire for Duration {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.as_secs());
        w.u64(self.subsec_nanos() as u64);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let secs = r.u64()?;
        let nanos = r.u64()?;
        Ok(Duration::new(secs, nanos as u32))
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            Some(v) => {
                w.bool(true);
                v.encode(w);
            }
            None => w.bool(false),
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        if r.bool()? {
            Ok(Some(T::decode(r)?))
        } else {
            Ok(None)
        }
    }
}

fn decode_len(r: &mut Reader<'_>) -> Result<usize> {
    usize::decode(r)
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.len() as u64);
        for v in self {
            v.encode(w);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let len = decode_len(r)?;
        let mut out = Vec::with_capacity(len.min(4_096));
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Wire> Wire for VecDeque<T> {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.len() as u64);
        for v in self {
            v.encode(w);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let len = decode_len(r)?;
        let mut out = VecDeque::with_capacity(len.min(4_096));
        for _ in 0..len {
            out.push_back(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Wire + Ord> Wire for BTreeSet<T> {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.len() as u64);
        for v in self {
            v.encode(w);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let len = decode_len(r)?;
        let mut out = BTreeSet::new();
        for _ in 0..len {
            out.insert(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<K: Wire + Ord, V: Wire> Wire for BTreeMap<K, V> {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.len() as u64);
        for (k, v) in self {
            k.encode(w);
            v.encode(w);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let len = decode_len(r)?;
        let mut out = BTreeMap::new();
        for _ in 0..len {
            let k = K::decode(r)?;
            let v = V::decode(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

macro_rules! wire_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Wire),+> Wire for ($($name,)+) {
            fn encode(&self, w: &mut Writer) {
                $(self.$idx.encode(w);)+
            }
            fn decode(r: &mut Reader<'_>) -> Result<Self> {
                Ok(($($name::decode(r)?,)+))
            }
        }
    };
}

wire_tuple!(A: 0);
wire_tuple!(A: 0, B: 1);
wire_tuple!(A: 0, B: 1, C: 2);
wire_tuple!(A: 0, B: 1, C: 2, D: 3);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(from_str::<u64>(&to_string(&42u64)).unwrap(), 42);
        assert_eq!(from_str::<i32>(&to_string(&-7i32)).unwrap(), -7);
        assert!(from_str::<bool>(&to_string(&true)).unwrap());
        assert_eq!(
            from_str::<String>(&to_string(&"hello world".to_string())).unwrap(),
            "hello world"
        );
        assert_eq!(from_str::<String>(&to_string(&String::new())).unwrap(), "");
    }

    #[test]
    fn float_roundtrip_is_bit_exact() {
        for v in [0.0, -0.0, 1.5, 0.1, f64::MAX, f64::MIN_POSITIVE, f64::NAN] {
            let back = from_str::<f64>(&to_string(&v)).unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn strings_with_separators_roundtrip() {
        let tricky = "1:2 3:4  x0000 :".to_string();
        assert_eq!(from_str::<String>(&to_string(&tricky)).unwrap(), tricky);
        let unicode = "čéß → 🦀".to_string();
        assert_eq!(from_str::<String>(&to_string(&unicode)).unwrap(), unicode);
    }

    #[test]
    fn collection_roundtrips() {
        let v: Vec<u32> = vec![1, 2, 3];
        assert_eq!(from_str::<Vec<u32>>(&to_string(&v)).unwrap(), v);
        let m: BTreeMap<String, i64> = [("a".into(), -1), ("b c".into(), 2)].into_iter().collect();
        assert_eq!(
            from_str::<BTreeMap<String, i64>>(&to_string(&m)).unwrap(),
            m
        );
        let s: BTreeSet<u8> = [3, 1, 2].into_iter().collect();
        assert_eq!(from_str::<BTreeSet<u8>>(&to_string(&s)).unwrap(), s);
        let q: VecDeque<bool> = [true, false].into_iter().collect();
        assert_eq!(from_str::<VecDeque<bool>>(&to_string(&q)).unwrap(), q);
        let empty: Vec<String> = Vec::new();
        assert_eq!(from_str::<Vec<String>>(&to_string(&empty)).unwrap(), empty);
    }

    #[test]
    fn nested_values_roundtrip() {
        let v: Vec<(Option<String>, Vec<u64>)> =
            vec![(Some("x y".into()), vec![1, 2]), (None, vec![])];
        assert_eq!(
            from_str::<Vec<(Option<String>, Vec<u64>)>>(&to_string(&v)).unwrap(),
            v
        );
        let d = Duration::new(5, 123_456_789);
        assert_eq!(from_str::<Duration>(&to_string(&d)).unwrap(), d);
    }

    #[test]
    fn malformed_input_is_rejected() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("abc").is_err());
        assert!(from_str::<bool>("2").is_err());
        assert!(from_str::<String>("5:ab").is_err());
        assert!(from_str::<f64>("1.5").is_err());
        assert_eq!(
            from_str::<u64>("1 2").unwrap_err(),
            WireError::TrailingInput
        );
        assert!(from_str::<u8>("300").is_err(), "u8 range check");
        assert!(!WireError::UnexpectedEnd.to_string().is_empty());
    }

    #[test]
    fn huge_string_length_prefix_is_an_error_not_a_panic() {
        // A corrupt length prefix may claim usize::MAX bytes; the checked
        // arithmetic must turn that into UnexpectedEnd.
        let huge = format!("{}:abc", usize::MAX);
        assert_eq!(
            from_str::<String>(&huge).unwrap_err(),
            WireError::UnexpectedEnd
        );
        let near = format!("{}:x", usize::MAX - 1);
        assert!(from_str::<String>(&near).is_err());
    }

    #[test]
    fn crc32_matches_reference_vectors() {
        // IEEE 802.3 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
        // Streaming equals one-shot.
        let state = crc32_update(CRC32_INIT, b"1234");
        let state = crc32_update(state, b"56789");
        assert_eq!(crc32_finish(state), 0xCBF4_3926);
    }

    #[test]
    fn checksummed_frames_roundtrip_and_detect_corruption() {
        let value: (u64, String, Vec<bool>) = (9, "floor token".into(), vec![true, false]);
        let framed = to_string_checksummed(&value);
        let back: (u64, String, Vec<bool>) = from_str_checksummed(&framed).unwrap();
        assert_eq!(back, value);

        // A single flipped payload byte fails the checksum, not the decoder.
        let mut bytes = framed.clone().into_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        let tampered = String::from_utf8(bytes).unwrap();
        assert!(matches!(
            from_str_checksummed::<(u64, String, Vec<bool>)>(&tampered).unwrap_err(),
            WireError::Checksum { .. }
        ));

        // A torn write (truncated frame) is caught the same way.
        let torn = &framed[..framed.len() - 3];
        assert!(from_str_checksummed::<(u64, String, Vec<bool>)>(torn).is_err());
    }
}
