//! Property-based tests over the compiler and the timed execution.

use std::time::Duration;

use dmps_docpn::schedule::evaluate;
use dmps_docpn::verify::verify_presentation;
use dmps_docpn::{compile, CompileOptions, ModelKind, TimedExecution};
use dmps_media::{MediaKind, MediaObject, PresentationDocument, TemporalRelation};
use proptest::prelude::*;

/// Builds a random but well-formed presentation: a sequential backbone of
/// segments (Meets chains), each optionally accompanied by a lip-synced
/// overlay (Equals).
fn arb_presentation() -> impl Strategy<Value = PresentationDocument> {
    proptest::collection::vec((1u64..60, proptest::bool::ANY), 1..8).prop_map(|segments| {
        let mut doc = PresentationDocument::new("prop-presentation");
        let mut prev = None;
        for (i, (secs, with_overlay)) in segments.into_iter().enumerate() {
            let seg = doc.add_object(MediaObject::new(
                format!("segment-{i}"),
                MediaKind::Video,
                Duration::from_secs(secs),
            ));
            if let Some(p) = prev {
                doc.relate(p, TemporalRelation::Meets, seg).unwrap();
            }
            if with_overlay {
                let overlay = doc.add_object(MediaObject::new(
                    format!("narration-{i}"),
                    MediaKind::Audio,
                    Duration::from_secs(secs),
                ));
                doc.relate(seg, TemporalRelation::Equals, overlay).unwrap();
            }
            prev = Some(seg);
        }
        doc
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every model compiles any well-formed presentation, the nominal
    /// execution reaches completion, and its makespan equals the solved
    /// timeline's total duration.
    #[test]
    fn nominal_execution_matches_timeline(doc in arb_presentation(), model_idx in 0usize..3) {
        let model = ModelKind::all()[model_idx];
        let compiled = compile(&doc, &CompileOptions::new(model)).unwrap();
        let exec = TimedExecution::run_to_completion(&compiled.net, &compiled.initial).unwrap();
        let nominal = doc.timeline().unwrap().total_duration();
        prop_assert_eq!(exec.makespan(), nominal);
        prop_assert!(!exec.token_entries(compiled.done_place).is_empty());
        // Every media start transition fires exactly at its ideal time.
        for (&media, &t) in &compiled.media_start_transition {
            let ideal = compiled.ideal_start(media).unwrap();
            prop_assert_eq!(exec.firing_of(t).unwrap().at, ideal);
        }
    }

    /// Verification passes for every model on nominal input.
    #[test]
    fn verification_passes_on_nominal_input(doc in arb_presentation(), model_idx in 0usize..3) {
        let model = ModelKind::all()[model_idx];
        let compiled = compile(&doc, &CompileOptions::new(model)).unwrap();
        let report = verify_presentation(&compiled).unwrap();
        prop_assert!(report.is_valid());
        prop_assert!(report.bounded);
    }

    /// Under DOCPN, no matter how late deliveries are, the synchronization
    /// points stay on the nominal schedule (zero stall), while under XOCPN
    /// the total stall grows at least as large as the worst delivery overrun.
    #[test]
    fn docpn_never_stalls_xocpn_does(
        doc in arb_presentation(),
        delay_secs in 1u64..120,
    ) {
        // Delay the delivery of the *first* object.
        let first = doc.objects().next().unwrap().0;
        let delay = Duration::from_secs(delay_secs);

        let docpn = compile(
            &doc,
            &CompileOptions::new(ModelKind::Docpn).with_transfer_delay(first, delay),
        ).unwrap();
        let exec = TimedExecution::run_to_completion(&docpn.net, &docpn.initial).unwrap();
        let report = evaluate(&docpn, &exec, Duration::from_millis(1)).unwrap();
        prop_assert!(report.on_schedule(), "DOCPN stalled: {:?}", report.total_stall);

        let xocpn = compile(
            &doc,
            &CompileOptions::new(ModelKind::Xocpn).with_transfer_delay(first, delay),
        ).unwrap();
        let exec = TimedExecution::run_to_completion(&xocpn.net, &xocpn.initial).unwrap();
        let report = evaluate(&xocpn, &exec, Duration::from_millis(1)).unwrap();
        prop_assert!(report.max_stall >= delay, "XOCPN stall {:?} < delay {:?}", report.max_stall, delay);
    }

    /// Firings of a timed execution are non-decreasing in time and every
    /// transition of the compiled presentation fires at most once (the nets
    /// are acyclic by construction).
    #[test]
    fn firings_are_ordered_and_unique(doc in arb_presentation()) {
        let compiled = compile(&doc, &CompileOptions::new(ModelKind::Docpn)).unwrap();
        let exec = TimedExecution::run_to_completion(&compiled.net, &compiled.initial).unwrap();
        let firings = exec.firings();
        for pair in firings.windows(2) {
            prop_assert!(pair[0].at <= pair[1].at);
        }
        let mut seen = std::collections::HashSet::new();
        for f in firings {
            prop_assert!(seen.insert(f.transition), "transition fired twice");
        }
    }
}
