//! User interaction modelling.
//!
//! The DOCPN model "adds user interaction control into OCPN, thus user
//! interaction can be a new important factor in synchronization". Each
//! interaction point of a presentation document becomes a pair of
//! transitions in the compiled DOCPN net: one fired by the user's action, one
//! fired by the timeout clock (through a priority arc), guarded by a mutual
//! exclusion place so exactly one of them responds.

use std::time::Duration;

use serde::{Deserialize, Serialize};

/// How a given interaction point behaves during one execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum InteractionBehavior {
    /// The user never responds; the timeout transition fires.
    #[default]
    TimesOut,
    /// The user responds this long after presentation start.
    ActedAt(Duration),
}

impl InteractionBehavior {
    /// The user's action time, if any.
    pub fn action_time(self) -> Option<Duration> {
        match self {
            InteractionBehavior::TimesOut => None,
            InteractionBehavior::ActedAt(t) => Some(t),
        }
    }
}

/// A user action observed during a live session (used by the `dmps` layer to
/// feed interactions back into a running presentation).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UserAction {
    /// The interaction point label this action answers.
    pub label: String,
    /// When the user acted, measured from presentation start.
    pub at: Duration,
}

impl UserAction {
    /// Creates a user action.
    pub fn new(label: impl Into<String>, at: Duration) -> Self {
        UserAction {
            label: label.into(),
            at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn behavior_action_time() {
        assert_eq!(InteractionBehavior::TimesOut.action_time(), None);
        assert_eq!(
            InteractionBehavior::ActedAt(Duration::from_secs(3)).action_time(),
            Some(Duration::from_secs(3))
        );
        assert_eq!(
            InteractionBehavior::default(),
            InteractionBehavior::TimesOut
        );
    }

    #[test]
    fn user_action_constructor() {
        let a = UserAction::new("quiz", Duration::from_secs(5));
        assert_eq!(a.label, "quiz");
        assert_eq!(a.at, Duration::from_secs(5));
    }
}
