//! Schedule evaluation: comparing an execution of a compiled presentation
//! against its nominal timeline.
//!
//! This is the measurement layer behind experiment **E5** (priority firing
//! vs. the OCPN/XOCPN baselines): per-object lateness and deadline misses,
//! per-synchronization-point drift, total and maximum stall, and the number
//! of priority firings that kept the schedule on time.

use std::time::Duration;

use serde::{Deserialize, Serialize};

use dmps_media::MediaId;
use dmps_petri::TransitionId;

use crate::compile::CompiledPresentation;
use crate::error::Result;
use crate::timed::TimedExecution;

/// Schedule outcome for one media object.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MediaScheduleEntry {
    /// The media object.
    pub media: MediaId,
    /// Its nominal start time.
    pub ideal_start: Duration,
    /// When its start synchronization transition actually fired (`None` when
    /// the presentation never reached it).
    pub sync_fired_at: Option<Duration>,
    /// When the object was actually ready to render: the later of the sync
    /// firing and the delivery availability (equal to the sync firing when
    /// the model does not include delivery places).
    pub effective_start: Option<Duration>,
    /// `effective_start − ideal_start`, saturating at zero.
    pub lateness: Duration,
    /// Whether the lateness exceeded the report's tolerance.
    pub missed_deadline: bool,
}

/// Schedule outcome for one synchronization point.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyncScheduleEntry {
    /// The transition implementing the synchronization point.
    pub transition: TransitionId,
    /// Its nominal time.
    pub ideal: Duration,
    /// When it actually fired.
    pub fired_at: Option<Duration>,
    /// `fired_at − ideal`, saturating at zero (the stall introduced at this
    /// point).
    pub stall: Duration,
}

/// The complete evaluation of one execution against the nominal schedule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleReport {
    /// Which model produced the execution.
    pub model: String,
    /// Per-object outcomes, in media-id order.
    pub media: Vec<MediaScheduleEntry>,
    /// Per-synchronization-point outcomes, in timeline order.
    pub sync_points: Vec<SyncScheduleEntry>,
    /// Sum of the per-point stalls.
    pub total_stall: Duration,
    /// Largest single-point stall.
    pub max_stall: Duration,
    /// Number of media objects whose lateness exceeded the tolerance.
    pub deadline_misses: usize,
    /// Number of firings that used the priority rule.
    pub priority_firings: usize,
    /// Time of the last firing.
    pub makespan: Duration,
    /// The nominal end of the presentation.
    pub nominal_makespan: Duration,
    /// The tolerance used to count deadline misses.
    pub tolerance: Duration,
}

impl ScheduleReport {
    /// Whether the presentation stayed fully on schedule (no stall anywhere).
    pub fn on_schedule(&self) -> bool {
        self.total_stall.is_zero()
    }

    /// The mean lateness across media objects.
    pub fn mean_lateness(&self) -> Duration {
        if self.media.is_empty() {
            return Duration::ZERO;
        }
        let total: Duration = self.media.iter().map(|m| m.lateness).sum();
        total / self.media.len() as u32
    }

    /// Renders the report as a small text table (one row per media object),
    /// the format printed by the experiment binaries.
    pub fn to_table(&self) -> String {
        let mut out = format!(
            "model={} makespan={}ms nominal={}ms stall={}ms priority_firings={} misses={}\n",
            self.model,
            self.makespan.as_millis(),
            self.nominal_makespan.as_millis(),
            self.total_stall.as_millis(),
            self.priority_firings,
            self.deadline_misses
        );
        out.push_str("media\tideal_ms\teffective_ms\tlateness_ms\tmissed\n");
        for m in &self.media {
            out.push_str(&format!(
                "{}\t{}\t{}\t{}\t{}\n",
                m.media,
                m.ideal_start.as_millis(),
                m.effective_start
                    .map(|d| d.as_millis() as i64)
                    .unwrap_or(-1),
                m.lateness.as_millis(),
                m.missed_deadline
            ));
        }
        out
    }
}

/// Evaluates an execution of a compiled presentation against its nominal
/// timeline. `tolerance` is how late a media object may start before it is
/// counted as a deadline miss.
///
/// # Errors
///
/// Returns media-model errors when the compiled metadata is inconsistent with
/// the document timeline (which cannot happen for values produced by
/// [`crate::compile()`]).
pub fn evaluate(
    compiled: &CompiledPresentation,
    execution: &TimedExecution,
    tolerance: Duration,
) -> Result<ScheduleReport> {
    let mut media = Vec::new();
    for (&id, &start_t) in &compiled.media_start_transition {
        let ideal_start = compiled.ideal_start(id)?;
        let sync_fired_at = execution.firing_of(start_t).map(|f| f.at);
        let delivery_ready = compiled.media_delivery_place.get(&id).map(|&p| {
            // Delivery tokens are initially marked, so their availability is
            // exactly the place duration.
            compiled.net.place_duration(p)
        });
        let effective_start = sync_fired_at.map(|fired| match delivery_ready {
            Some(ready) => fired.max(ready),
            None => fired,
        });
        let lateness = effective_start
            .map(|e| e.saturating_sub(ideal_start))
            .unwrap_or(Duration::MAX);
        let missed_deadline = lateness > tolerance;
        media.push(MediaScheduleEntry {
            media: id,
            ideal_start,
            sync_fired_at,
            effective_start,
            lateness: if effective_start.is_some() {
                lateness
            } else {
                Duration::ZERO
            },
            missed_deadline,
        });
    }

    let mut sync_points = Vec::new();
    let mut total_stall = Duration::ZERO;
    let mut max_stall = Duration::ZERO;
    for sp in &compiled.sync_points {
        let fired_at = execution.firing_of(sp.transition).map(|f| f.at);
        let stall = fired_at
            .map(|f| f.saturating_sub(sp.ideal))
            .unwrap_or(Duration::ZERO);
        total_stall += stall;
        max_stall = max_stall.max(stall);
        sync_points.push(SyncScheduleEntry {
            transition: sp.transition,
            ideal: sp.ideal,
            fired_at,
            stall,
        });
    }

    let deadline_misses = media.iter().filter(|m| m.missed_deadline).count();
    Ok(ScheduleReport {
        model: compiled.model.to_string(),
        media,
        sync_points,
        total_stall,
        max_stall,
        deadline_misses,
        priority_firings: execution.priority_firing_count(),
        makespan: execution.makespan(),
        nominal_makespan: compiled.timeline.total_duration(),
        tolerance,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, CompileOptions, ModelKind};
    use crate::timed::TimedExecution;
    use dmps_media::{MediaKind, MediaObject, PresentationDocument, TemporalRelation};

    fn doc_with_two_segments() -> (PresentationDocument, MediaId, MediaId) {
        let mut doc = PresentationDocument::new("two-segments");
        let intro = doc.add_object(MediaObject::new(
            "intro",
            MediaKind::Video,
            Duration::from_secs(10),
        ));
        let body = doc.add_object(MediaObject::new(
            "body",
            MediaKind::Video,
            Duration::from_secs(20),
        ));
        doc.relate(intro, TemporalRelation::Meets, body).unwrap();
        (doc, intro, body)
    }

    #[test]
    fn on_time_execution_has_no_stall_or_misses() {
        let (doc, intro, body) = doc_with_two_segments();
        let compiled = compile(&doc, &CompileOptions::new(ModelKind::Ocpn)).unwrap();
        let exec = TimedExecution::run_to_completion(&compiled.net, &compiled.initial).unwrap();
        let report = evaluate(&compiled, &exec, Duration::from_millis(100)).unwrap();
        assert!(report.on_schedule());
        assert_eq!(report.deadline_misses, 0);
        assert_eq!(report.total_stall, Duration::ZERO);
        assert_eq!(report.makespan, Duration::from_secs(30));
        assert_eq!(report.nominal_makespan, Duration::from_secs(30));
        assert_eq!(report.mean_lateness(), Duration::ZERO);
        let intro_entry = report.media.iter().find(|m| m.media == intro).unwrap();
        assert_eq!(intro_entry.ideal_start, Duration::ZERO);
        assert_eq!(intro_entry.effective_start, Some(Duration::ZERO));
        let body_entry = report.media.iter().find(|m| m.media == body).unwrap();
        assert_eq!(body_entry.ideal_start, Duration::from_secs(10));
    }

    #[test]
    fn xocpn_late_delivery_stalls_and_misses() {
        let (doc, intro, body) = doc_with_two_segments();
        let options = CompileOptions::new(ModelKind::Xocpn)
            .with_transfer_delay(intro, Duration::from_secs(5));
        let compiled = compile(&doc, &options).unwrap();
        let exec = TimedExecution::run_to_completion(&compiled.net, &compiled.initial).unwrap();
        let report = evaluate(&compiled, &exec, Duration::from_millis(100)).unwrap();
        assert!(!report.on_schedule());
        // The intro could not start until its delivery finished at 5 s, so
        // every later point shifted by 5 s.
        assert_eq!(report.max_stall, Duration::from_secs(5));
        assert_eq!(report.makespan, Duration::from_secs(35));
        assert_eq!(report.deadline_misses, 2, "both objects started late");
        let body_entry = report.media.iter().find(|m| m.media == body).unwrap();
        assert_eq!(body_entry.lateness, Duration::from_secs(5));
    }

    #[test]
    fn docpn_late_delivery_keeps_schedule_but_marks_the_late_object() {
        let (doc, intro, body) = doc_with_two_segments();
        let options = CompileOptions::new(ModelKind::Docpn)
            .with_transfer_delay(intro, Duration::from_secs(5));
        let compiled = compile(&doc, &options).unwrap();
        let exec = TimedExecution::run_to_completion(&compiled.net, &compiled.initial).unwrap();
        let report = evaluate(&compiled, &exec, Duration::from_millis(100)).unwrap();
        // The clock keeps sync points on time: no stall.
        assert!(report.on_schedule());
        assert_eq!(report.makespan, Duration::from_secs(30));
        assert!(report.priority_firings >= 1);
        // But the intro itself was effectively 5 s late (it could only render
        // once delivered), so exactly one deadline miss is recorded.
        assert_eq!(report.deadline_misses, 1);
        let intro_entry = report.media.iter().find(|m| m.media == intro).unwrap();
        assert_eq!(intro_entry.lateness, Duration::from_secs(5));
        let body_entry = report.media.iter().find(|m| m.media == body).unwrap();
        assert_eq!(body_entry.lateness, Duration::ZERO);
    }

    #[test]
    fn table_rendering_contains_headline_numbers() {
        let (doc, ..) = doc_with_two_segments();
        let compiled = compile(&doc, &CompileOptions::new(ModelKind::Docpn)).unwrap();
        let exec = TimedExecution::run_to_completion(&compiled.net, &compiled.initial).unwrap();
        let report = evaluate(&compiled, &exec, Duration::from_millis(100)).unwrap();
        let table = report.to_table();
        assert!(table.contains("model=DOCPN"));
        assert!(table.contains("media\tideal_ms"));
        assert!(table.lines().count() >= 4);
    }
}
