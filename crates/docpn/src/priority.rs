//! The untimed prioritized Petri net of Yang et al. (Section 2.2 of the
//! paper), kept separate from the timed machinery so the fire rules can be
//! studied and tested in isolation.
//!
//! A prioritized net is `C = (P, T, I, I_p, O)`: a classical net plus a
//! priority input function `I_p`. The fire rules:
//!
//! * a transition with only non-priority inputs fires when **all** inputs are
//!   marked (classical rule);
//! * a transition with priority inputs fires as soon as **all priority
//!   inputs** are marked, without waiting for the others ("AND" over the
//!   priority inputs);
//! * when one place enables several transitions, the transition reached by a
//!   priority arc from that place is chosen first.

use serde::{Deserialize, Serialize};

use dmps_petri::{Marking, NetBuilder, PetriNet, PlaceId, TransitionId};

use crate::error::{DocpnError, Result};

/// Conflict-resolution policy when several transitions are enabled at once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PriorityPolicy {
    /// Transitions enabled through a priority arc are chosen before
    /// transitions enabled only through normal arcs (the paper's rule).
    #[default]
    PriorityFirst,
    /// Ignore priority when resolving conflicts (ablation baseline): pick the
    /// lowest-indexed enabled transition.
    IndexOrder,
}

/// An untimed prioritized Petri net.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrioritizedNet {
    net: PetriNet,
    priority_inputs: Vec<Vec<PlaceId>>,
}

impl PrioritizedNet {
    /// Wraps a structural net with a priority-input relation.
    ///
    /// # Errors
    ///
    /// Returns [`DocpnError::PriorityArcWithoutInput`] if a `(transition,
    /// place)` pair names a place that is not an input of that transition.
    pub fn new(net: PetriNet, priority: &[(TransitionId, PlaceId)]) -> Result<Self> {
        let mut priority_inputs = vec![Vec::new(); net.transition_count()];
        for &(t, p) in priority {
            if !net.input_arcs(t).iter().any(|a| a.place == p) {
                return Err(DocpnError::PriorityArcWithoutInput);
            }
            if !priority_inputs[t.0].contains(&p) {
                priority_inputs[t.0].push(p);
            }
        }
        Ok(PrioritizedNet {
            net,
            priority_inputs,
        })
    }

    /// The underlying structural net.
    pub fn net(&self) -> &PetriNet {
        &self.net
    }

    /// The priority input places of a transition.
    pub fn priority_inputs(&self, t: TransitionId) -> &[PlaceId] {
        &self.priority_inputs[t.0]
    }

    /// Whether the transition is enabled under the prioritized fire rule:
    /// either classically enabled, or all of its priority inputs are marked.
    pub fn enabled(&self, m: &Marking, t: TransitionId) -> bool {
        if self.net.enabled(m, t) {
            return true;
        }
        let prio = &self.priority_inputs[t.0];
        if prio.is_empty() {
            return false;
        }
        self.net
            .input_arcs(t)
            .iter()
            .filter(|a| prio.contains(&a.place))
            .all(|a| m.tokens(a.place) >= a.weight)
    }

    /// Whether the transition would fire *by priority* (priority inputs
    /// marked but at least one non-priority input unmarked).
    pub fn enabled_by_priority_only(&self, m: &Marking, t: TransitionId) -> bool {
        self.enabled(m, t) && !self.net.enabled(m, t)
    }

    /// Fires `t` under the prioritized rule: required (priority) tokens are
    /// consumed; non-priority input tokens are consumed only as far as they
    /// are present. Returns the successor marking and the list of input
    /// places that were short of tokens.
    ///
    /// # Errors
    ///
    /// Returns [`dmps_petri::NetError::NotEnabled`] (wrapped) when the
    /// transition is not enabled under the prioritized rule.
    pub fn fire(&self, m: &Marking, t: TransitionId) -> Result<(Marking, Vec<PlaceId>)> {
        if !self.enabled(m, t) {
            return Err(DocpnError::Net(dmps_petri::NetError::NotEnabled(t)));
        }
        if self.net.enabled(m, t) {
            return Ok((self.net.fire(m, t)?, Vec::new()));
        }
        // Priority firing with partial consumption of non-priority inputs.
        let mut next = m.clone();
        let mut missing = Vec::new();
        let prio = &self.priority_inputs[t.0];
        for arc in self.net.input_arcs(t) {
            let have = next.tokens(arc.place);
            let want = arc.weight;
            if prio.contains(&arc.place) {
                next.remove_tokens(arc.place, want)
                    .expect("priority inputs checked by enabled()");
            } else {
                let take = have.min(want);
                if take < want {
                    missing.push(arc.place);
                }
                if take > 0 {
                    next.remove_tokens(arc.place, take)
                        .expect("taking at most the tokens present");
                }
            }
        }
        for arc in self.net.output_arcs(t) {
            next.add_tokens(arc.place, arc.weight);
        }
        Ok((next, missing))
    }

    /// All transitions enabled under the prioritized rule, ordered according
    /// to `policy`.
    pub fn enabled_transitions(&self, m: &Marking, policy: PriorityPolicy) -> Vec<TransitionId> {
        let mut enabled: Vec<TransitionId> = self
            .net
            .transitions()
            .filter(|&t| self.enabled(m, t))
            .collect();
        if policy == PriorityPolicy::PriorityFirst {
            enabled.sort_by_key(|&t| (self.priority_inputs[t.0].is_empty(), t));
        }
        enabled
    }
}

/// Builds the small prioritized net of the paper's Section 2.2 discussion: a
/// time-schedule place drives an event transition through a priority arc so
/// the event occurs "when its time schedule is due" even if a non-priority
/// resource has not arrived. Exposed for tests, examples and benches.
pub fn example_priority_net() -> (PrioritizedNet, Marking, TransitionId) {
    let mut b = NetBuilder::new("yang-priority-example");
    let schedule = b.place("time-schedule-due");
    let resource = b.place("optional-resource");
    let fired = b.place("event-occurred");
    let event = b.transition("event");
    b.arc_in(schedule, event, 1);
    b.arc_in(resource, event, 1);
    b.arc_out(event, fired, 1);
    let net = b.build().expect("example net is valid");
    let prioritized =
        PrioritizedNet::new(net, &[(event, schedule)]).expect("schedule is an input of event");
    let m0 = Marking::from_pairs(prioritized.net().place_count(), &[(schedule, 1)]);
    (prioritized, m0, event)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_fires_on_schedule_without_resource() {
        let (net, m0, event) = example_priority_net();
        assert!(net.enabled(&m0, event));
        assert!(net.enabled_by_priority_only(&m0, event));
        let (next, missing) = net.fire(&m0, event).unwrap();
        assert_eq!(missing.len(), 1);
        let fired_place = net.net().place_by_name("event-occurred").unwrap();
        assert_eq!(next.tokens(fired_place), 1);
    }

    #[test]
    fn classical_firing_when_all_inputs_present() {
        let (net, _m0, event) = example_priority_net();
        let schedule = net.net().place_by_name("time-schedule-due").unwrap();
        let resource = net.net().place_by_name("optional-resource").unwrap();
        let m = Marking::from_pairs(net.net().place_count(), &[(schedule, 1), (resource, 1)]);
        assert!(net.enabled(&m, event));
        assert!(!net.enabled_by_priority_only(&m, event));
        let (next, missing) = net.fire(&m, event).unwrap();
        assert!(missing.is_empty());
        assert_eq!(next.tokens(resource), 0);
    }

    #[test]
    fn not_enabled_without_priority_input() {
        let (net, _m0, event) = example_priority_net();
        let resource = net.net().place_by_name("optional-resource").unwrap();
        let m = Marking::from_pairs(net.net().place_count(), &[(resource, 1)]);
        assert!(!net.enabled(&m, event));
        assert!(net.fire(&m, event).is_err());
    }

    #[test]
    fn priority_first_policy_orders_priority_transitions_first() {
        // One place enables two transitions; the one with a priority arc from
        // that place is listed first under PriorityFirst.
        let mut b = NetBuilder::new("conflict");
        let p = b.place("p");
        let out = b.place("out");
        let plain = b.transition("plain");
        let prioritized = b.transition("prioritized");
        b.arc_in(p, plain, 1);
        b.arc_out(plain, out, 1);
        b.arc_in(p, prioritized, 1);
        b.arc_out(prioritized, out, 1);
        let net = PrioritizedNet::new(b.build().unwrap(), &[(prioritized, p)]).unwrap();
        let m = Marking::from_pairs(net.net().place_count(), &[(p, 1)]);
        let order = net.enabled_transitions(&m, PriorityPolicy::PriorityFirst);
        assert_eq!(order, vec![prioritized, plain]);
        let order = net.enabled_transitions(&m, PriorityPolicy::IndexOrder);
        assert_eq!(order, vec![plain, prioritized]);
    }

    #[test]
    fn invalid_priority_pair_rejected() {
        let mut b = NetBuilder::new("bad");
        let p = b.place("p");
        let q = b.place("q");
        let t = b.transition("t");
        b.arc_in(p, t, 1);
        b.arc_out(t, q, 1);
        let net = b.build().unwrap();
        assert_eq!(
            PrioritizedNet::new(net, &[(t, q)]).unwrap_err(),
            DocpnError::PriorityArcWithoutInput
        );
    }

    #[test]
    fn default_policy_is_priority_first() {
        assert_eq!(PriorityPolicy::default(), PriorityPolicy::PriorityFirst);
    }
}
