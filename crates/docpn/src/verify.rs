//! Structural and behavioural verification of compiled presentations.
//!
//! Section 4 of the paper: *"To verify the structural mechanism, we implement
//! an algorithm using the Petri net diagram, analyzing the model by time
//! schedule of multimedia objects, and produce a synchronous set of
//! multimedia objects with respect to time duration."* This module performs
//! that verification mechanically: the compiled net must be bounded and
//! deadlock-free up to its final marking, every synchronization transition
//! must fire exactly once in the nominal execution, and the nominal execution
//! must reproduce the solved timeline.

use std::time::Duration;

use serde::{Deserialize, Serialize};

use dmps_petri::analysis::{analyze, AnalysisReport};
use dmps_petri::ReachabilityLimits;

use crate::compile::CompiledPresentation;
use crate::error::Result;
use crate::timed::TimedExecution;

/// The outcome of verifying a compiled presentation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VerificationReport {
    /// Whether the structural net is bounded from the initial marking.
    pub bounded: bool,
    /// Whether the structural net is safe (1-bounded).
    pub safe: bool,
    /// Whether every synchronization transition fired exactly once in the
    /// nominal timed execution.
    pub all_sync_points_fire_once: bool,
    /// Whether the nominal execution reproduces the solved timeline (every
    /// media object starts at its ideal time when no delays are injected).
    pub schedule_matches_timeline: bool,
    /// Whether the final `done` place is reached.
    pub reaches_completion: bool,
    /// The largest deviation between nominal execution and timeline.
    pub max_deviation: Duration,
    /// The full structural analysis report of the underlying net.
    pub analysis: AnalysisReport,
}

impl VerificationReport {
    /// Whether every check passed.
    pub fn is_valid(&self) -> bool {
        self.bounded
            && self.all_sync_points_fire_once
            && self.schedule_matches_timeline
            && self.reaches_completion
    }
}

/// Verifies a compiled presentation.
///
/// # Errors
///
/// Returns errors from the timed execution (budget exceeded) or the
/// structural analysis (marking mismatch).
pub fn verify_presentation(compiled: &CompiledPresentation) -> Result<VerificationReport> {
    let analysis = analyze(
        compiled.net.net(),
        &compiled.initial,
        ReachabilityLimits::default(),
    )?;

    let execution = TimedExecution::run_to_completion(&compiled.net, &compiled.initial)?;

    let mut all_sync_points_fire_once = true;
    for sp in &compiled.sync_points {
        let count = execution
            .firings()
            .iter()
            .filter(|f| f.transition == sp.transition)
            .count();
        if count != 1 {
            all_sync_points_fire_once = false;
        }
    }

    let mut schedule_matches_timeline = true;
    let mut max_deviation = Duration::ZERO;
    for (&media, &start_t) in &compiled.media_start_transition {
        let ideal = compiled.ideal_start(media)?;
        match execution.firing_of(start_t) {
            Some(f) => {
                let deviation = f.at.abs_diff(ideal);
                max_deviation = max_deviation.max(deviation);
                if !deviation.is_zero() {
                    schedule_matches_timeline = false;
                }
            }
            None => {
                schedule_matches_timeline = false;
                max_deviation = Duration::MAX;
            }
        }
    }

    let reaches_completion = !execution.token_entries(compiled.done_place).is_empty();

    Ok(VerificationReport {
        bounded: analysis.bounded,
        safe: analysis.safe,
        all_sync_points_fire_once,
        schedule_matches_timeline,
        reaches_completion,
        max_deviation,
        analysis,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, CompileOptions, ModelKind};
    use dmps_media::{MediaKind, MediaObject, PresentationDocument, TemporalRelation};

    fn doc() -> PresentationDocument {
        let mut doc = PresentationDocument::new("verify-me");
        let v = doc.add_object(MediaObject::new(
            "video",
            MediaKind::Video,
            Duration::from_secs(12),
        ));
        let a = doc.add_object(MediaObject::new(
            "audio",
            MediaKind::Audio,
            Duration::from_secs(12),
        ));
        let s = doc.add_object(MediaObject::new(
            "summary",
            MediaKind::Slide,
            Duration::from_secs(6),
        ));
        doc.relate(v, TemporalRelation::Equals, a).unwrap();
        doc.relate(v, TemporalRelation::Meets, s).unwrap();
        doc
    }

    #[test]
    fn all_three_models_verify_on_nominal_input() {
        for model in ModelKind::all() {
            let compiled = compile(&doc(), &CompileOptions::new(model)).unwrap();
            let report = verify_presentation(&compiled).unwrap();
            assert!(report.is_valid(), "model {model} failed: {report:?}");
            assert!(report.bounded, "model {model} must be bounded");
            assert!(
                report.safe,
                "compiled presentation nets are 1-safe ({model})"
            );
            assert_eq!(report.max_deviation, Duration::ZERO);
            assert!(!report.analysis.has_deadlock || report.reaches_completion);
        }
    }

    #[test]
    fn late_delivery_under_xocpn_breaks_timeline_match_but_not_boundedness() {
        let d = doc();
        let video = d.objects().next().unwrap().0;
        let options = CompileOptions::new(ModelKind::Xocpn)
            .with_transfer_delay(video, Duration::from_secs(3));
        let compiled = compile(&d, &options).unwrap();
        let report = verify_presentation(&compiled).unwrap();
        assert!(report.bounded);
        assert!(report.all_sync_points_fire_once);
        assert!(report.reaches_completion);
        assert!(!report.schedule_matches_timeline);
        assert_eq!(report.max_deviation, Duration::from_secs(3));
        assert!(!report.is_valid());
    }

    #[test]
    fn docpn_with_late_delivery_still_verifies() {
        let d = doc();
        let video = d.objects().next().unwrap().0;
        let options = CompileOptions::new(ModelKind::Docpn)
            .with_transfer_delay(video, Duration::from_secs(3));
        let compiled = compile(&d, &options).unwrap();
        let report = verify_presentation(&compiled).unwrap();
        // The clock keeps sync transitions on time, so the *schedule* is
        // intact even though the video itself is late.
        assert!(report.is_valid(), "{report:?}");
    }
}
