//! Error types for the DOCPN models.

use std::fmt;

use dmps_media::MediaError;
use dmps_petri::NetError;

/// Convenience result alias for the crate.
pub type Result<T> = std::result::Result<T, DocpnError>;

/// Errors raised while building, compiling, or executing presentation nets.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DocpnError {
    /// An underlying Petri net error.
    Net(NetError),
    /// An underlying media-model error.
    Media(MediaError),
    /// The timed execution did not terminate within the configured bounds.
    ExecutionBudgetExceeded {
        /// Number of firings performed before giving up.
        firings: usize,
    },
    /// A priority arc references a place that is not an input of the
    /// transition.
    PriorityArcWithoutInput,
    /// The compiled presentation is empty (no media objects).
    EmptyPresentation,
    /// An interaction label used by the caller does not exist in the
    /// document.
    UnknownInteraction(String),
}

impl fmt::Display for DocpnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DocpnError::Net(e) => write!(f, "petri net error: {e}"),
            DocpnError::Media(e) => write!(f, "media model error: {e}"),
            DocpnError::ExecutionBudgetExceeded { firings } => {
                write!(
                    f,
                    "timed execution exceeded its budget after {firings} firings"
                )
            }
            DocpnError::PriorityArcWithoutInput => {
                write!(f, "priority arc declared on a place that is not an input")
            }
            DocpnError::EmptyPresentation => write!(f, "presentation document has no objects"),
            DocpnError::UnknownInteraction(label) => {
                write!(f, "unknown interaction point `{label}`")
            }
        }
    }
}

impl std::error::Error for DocpnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DocpnError::Net(e) => Some(e),
            DocpnError::Media(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetError> for DocpnError {
    fn from(e: NetError) -> Self {
        DocpnError::Net(e)
    }
}

impl From<MediaError> for DocpnError {
    fn from(e: MediaError) -> Self {
        DocpnError::Media(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmps_petri::PlaceId;

    #[test]
    fn display_and_source() {
        use std::error::Error as _;
        let e = DocpnError::from(NetError::UnknownPlace(PlaceId(1)));
        assert!(e.to_string().contains("petri net error"));
        assert!(e.source().is_some());
        let e = DocpnError::ExecutionBudgetExceeded { firings: 10 };
        assert!(e.to_string().contains("10"));
        assert!(e.source().is_none());
        let e = DocpnError::UnknownInteraction("quiz".into());
        assert!(e.to_string().contains("quiz"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync + std::error::Error>() {}
        check::<DocpnError>();
    }
}
