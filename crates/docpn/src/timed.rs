//! Timed Petri nets with prioritized firing and their deterministic
//! earliest-firing-time execution.
//!
//! The model follows the paper's DOCPN firing rules (Section 2.2, after Yang
//! et al.):
//!
//! 1. a transition with only non-priority inputs fires when **all** its input
//!    tokens are present and their place durations have elapsed;
//! 2. a transition with priority inputs fires as soon as **all its priority
//!    inputs** are available, *without waiting* for the non-priority inputs;
//! 3. among simultaneously enabled transitions the earliest scheduled one
//!    fires first (ties broken by transition index, which keeps executions
//!    deterministic).
//!
//! A token entering a place `p` at time `t` becomes *available* to output
//! transitions at `t + duration(p)` — the OCPN convention where a place is a
//! medium being played out for its duration.

use std::collections::HashMap;
use std::time::Duration;

use serde::{Deserialize, Serialize};

use dmps_petri::{Marking, NetBuilder, PetriNet, PlaceId, TransitionId};

use crate::error::{DocpnError, Result};

/// A timed Petri net: a structural net plus place durations and a set of
/// priority input arcs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimedNet {
    net: PetriNet,
    place_durations: Vec<Duration>,
    /// For each transition, the subset of its input places whose arcs are
    /// priority arcs.
    priority_inputs: Vec<Vec<PlaceId>>,
}

impl TimedNet {
    /// The underlying structural net.
    pub fn net(&self) -> &PetriNet {
        &self.net
    }

    /// The playout duration of a place.
    pub fn place_duration(&self, p: PlaceId) -> Duration {
        self.place_durations
            .get(p.0)
            .copied()
            .unwrap_or(Duration::ZERO)
    }

    /// The priority input places of a transition.
    pub fn priority_inputs(&self, t: TransitionId) -> &[PlaceId] {
        &self.priority_inputs[t.0]
    }

    /// Whether the transition has at least one priority input arc.
    pub fn has_priority_inputs(&self, t: TransitionId) -> bool {
        !self.priority_inputs[t.0].is_empty()
    }

    /// Number of places.
    pub fn place_count(&self) -> usize {
        self.net.place_count()
    }

    /// Number of transitions.
    pub fn transition_count(&self) -> usize {
        self.net.transition_count()
    }
}

/// Builder for [`TimedNet`], wrapping [`NetBuilder`] with durations and
/// priority arcs.
#[derive(Debug, Clone, Default)]
pub struct TimedNetBuilder {
    inner: NetBuilder,
    durations: Vec<Duration>,
    priority: Vec<(TransitionId, PlaceId)>,
}

impl TimedNetBuilder {
    /// Creates a builder for a timed net with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        TimedNetBuilder {
            inner: NetBuilder::new(name),
            durations: Vec::new(),
            priority: Vec::new(),
        }
    }

    /// Adds a place with zero duration (an instantaneous condition).
    pub fn place(&mut self, name: impl Into<String>) -> PlaceId {
        self.timed_place(name, Duration::ZERO)
    }

    /// Adds a place whose tokens become available `duration` after arrival
    /// (a media playout or timer place).
    pub fn timed_place(&mut self, name: impl Into<String>, duration: Duration) -> PlaceId {
        let id = self.inner.place(name);
        self.durations.push(duration);
        id
    }

    /// Adds a transition.
    pub fn transition(&mut self, name: impl Into<String>) -> TransitionId {
        self.inner.transition(name)
    }

    /// Adds a normal (non-priority) input arc.
    pub fn arc_in(&mut self, place: PlaceId, transition: TransitionId, weight: u64) -> &mut Self {
        self.inner.arc_in(place, transition, weight);
        self
    }

    /// Adds a **priority** input arc. Per the DOCPN fire rule, availability
    /// of all priority inputs lets the transition fire without waiting for
    /// its non-priority inputs.
    pub fn arc_in_priority(
        &mut self,
        place: PlaceId,
        transition: TransitionId,
        weight: u64,
    ) -> &mut Self {
        self.inner.arc_in(place, transition, weight);
        self.priority.push((transition, place));
        self
    }

    /// Adds an output arc.
    pub fn arc_out(&mut self, transition: TransitionId, place: PlaceId, weight: u64) -> &mut Self {
        self.inner.arc_out(transition, place, weight);
        self
    }

    /// Builds and validates the timed net.
    ///
    /// # Errors
    ///
    /// Returns structural errors from the underlying [`NetBuilder`] and
    /// [`DocpnError::PriorityArcWithoutInput`] if a priority arc was declared
    /// for a place that is not an input of its transition.
    pub fn build(&self) -> Result<TimedNet> {
        let net = self.inner.build()?;
        let mut priority_inputs = vec![Vec::new(); net.transition_count()];
        for &(t, p) in &self.priority {
            if !net.input_arcs(t).iter().any(|a| a.place == p) {
                return Err(DocpnError::PriorityArcWithoutInput);
            }
            if !priority_inputs[t.0].contains(&p) {
                priority_inputs[t.0].push(p);
            }
        }
        Ok(TimedNet {
            net,
            place_durations: self.durations.clone(),
            priority_inputs,
        })
    }
}

/// One firing recorded by a timed execution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FiringEvent {
    /// The transition that fired.
    pub transition: TransitionId,
    /// The absolute time (offset from execution start) of the firing.
    pub at: Duration,
    /// Whether the firing used the priority rule (fired on priority inputs
    /// while at least one non-priority input was missing or not yet
    /// available).
    pub fired_by_priority: bool,
    /// The non-priority input places that were missing or unavailable at the
    /// moment of a priority firing.
    pub missing_inputs: Vec<PlaceId>,
}

/// The result of executing a timed net: the firing sequence plus, for every
/// place, the times at which tokens entered it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimedExecution {
    firings: Vec<FiringEvent>,
    token_entries: Vec<Vec<Duration>>,
    completed: bool,
}

/// Default bound on the number of firings in a single execution.
pub const DEFAULT_MAX_FIRINGS: usize = 100_000;

impl TimedExecution {
    /// Runs the net from an initial marking whose tokens are all available at
    /// time zero, until no transition can fire any more.
    ///
    /// # Errors
    ///
    /// Returns [`DocpnError::ExecutionBudgetExceeded`] when more than
    /// [`DEFAULT_MAX_FIRINGS`] firings occur (a cyclic presentation net), and
    /// marking-shape errors from the structural net.
    pub fn run_to_completion(net: &TimedNet, initial: &Marking) -> Result<Self> {
        Self::run_with_injections(net, initial, &HashMap::new(), DEFAULT_MAX_FIRINGS)
    }

    /// Runs the net with *injected token availabilities*: for each listed
    /// place, the `k`-th initial token in that place becomes available at the
    /// `k`-th listed time instead of at time zero. This is how late media
    /// deliveries and user actions are modelled without changing the net.
    ///
    /// # Errors
    ///
    /// Returns [`DocpnError::ExecutionBudgetExceeded`] when `max_firings` is
    /// exceeded and marking-shape errors from the structural net.
    pub fn run_with_injections(
        net: &TimedNet,
        initial: &Marking,
        injected_availability: &HashMap<PlaceId, Vec<Duration>>,
        max_firings: usize,
    ) -> Result<Self> {
        net.net().check_marking(initial)?;
        let places = net.place_count();
        // Token pool per place: availability times, kept sorted ascending.
        let mut tokens: Vec<Vec<Duration>> = vec![Vec::new(); places];
        let mut token_entries: Vec<Vec<Duration>> = vec![Vec::new(); places];
        for p in 0..places {
            let count = initial.tokens(PlaceId(p));
            let inject = injected_availability.get(&PlaceId(p));
            for k in 0..count {
                let entry = inject
                    .and_then(|v| v.get(k as usize).copied())
                    .unwrap_or(Duration::ZERO);
                let avail = entry + net.place_duration(PlaceId(p));
                tokens[p].push(avail);
                token_entries[p].push(entry);
            }
            tokens[p].sort();
        }

        let mut firings: Vec<FiringEvent> = Vec::new();
        let mut now = Duration::ZERO;

        loop {
            if firings.len() >= max_firings {
                return Err(DocpnError::ExecutionBudgetExceeded {
                    firings: firings.len(),
                });
            }
            // Find the transition that can fire earliest.
            let mut best: Option<(Duration, TransitionId, bool)> = None;
            for t in net.net().transitions() {
                let (normal_time, priority_time) = enable_times(net, &tokens, t);
                let candidate = match (normal_time, priority_time) {
                    (Some(n), Some(p)) => Some((n.min(p), n > p)),
                    (Some(n), None) => Some((n, false)),
                    (None, Some(p)) => Some((p, true)),
                    (None, None) => None,
                };
                if let Some((time, by_priority)) = candidate {
                    let time = time.max(now);
                    let better = match &best {
                        None => true,
                        Some((bt, bid, _)) => time < *bt || (time == *bt && t < *bid),
                    };
                    if better {
                        best = Some((time, t, by_priority));
                    }
                }
            }
            let Some((fire_time, t, by_priority)) = best else {
                break;
            };
            now = fire_time;

            // Consume tokens.
            let mut missing = Vec::new();
            let priority_places = net.priority_inputs(t);
            for arc in net.net().input_arcs(t) {
                let pool = &mut tokens[arc.place.0];
                let is_priority = priority_places.contains(&arc.place);
                if by_priority && !is_priority {
                    // Best effort: consume up to `weight` tokens that are
                    // already available; record the shortfall.
                    let mut consumed = 0;
                    while consumed < arc.weight {
                        match pool.first() {
                            Some(&avail) if avail <= fire_time => {
                                pool.remove(0);
                                consumed += 1;
                            }
                            _ => break,
                        }
                    }
                    if consumed < arc.weight {
                        missing.push(arc.place);
                    }
                } else {
                    // Required input: the enable-time computation guarantees
                    // enough available tokens exist.
                    for _ in 0..arc.weight {
                        debug_assert!(
                            pool.first().map(|&a| a <= fire_time).unwrap_or(false),
                            "required token must be available at fire time"
                        );
                        pool.remove(0);
                    }
                }
            }
            // Produce tokens.
            for arc in net.net().output_arcs(t) {
                for _ in 0..arc.weight {
                    let avail = fire_time + net.place_duration(arc.place);
                    let pool = &mut tokens[arc.place.0];
                    let pos = pool.partition_point(|&x| x <= avail);
                    pool.insert(pos, avail);
                    token_entries[arc.place.0].push(fire_time);
                }
            }
            firings.push(FiringEvent {
                transition: t,
                at: fire_time,
                fired_by_priority: by_priority,
                missing_inputs: missing,
            });
        }

        Ok(TimedExecution {
            firings,
            token_entries,
            completed: true,
        })
    }

    /// The recorded firings in time order.
    pub fn firings(&self) -> &[FiringEvent] {
        &self.firings
    }

    /// The times at which tokens entered each place.
    pub fn token_entries(&self, p: PlaceId) -> &[Duration] {
        &self.token_entries[p.0]
    }

    /// The first firing of a given transition, if it fired at all.
    pub fn firing_of(&self, t: TransitionId) -> Option<&FiringEvent> {
        self.firings.iter().find(|f| f.transition == t)
    }

    /// The time of the last firing (the makespan of the presentation).
    pub fn makespan(&self) -> Duration {
        self.firings.last().map(|f| f.at).unwrap_or(Duration::ZERO)
    }

    /// Whether the execution ran to quiescence (it always does unless the
    /// firing budget was exceeded, in which case an error is returned
    /// instead).
    pub fn completed(&self) -> bool {
        self.completed
    }

    /// Total number of firings that used the priority rule.
    pub fn priority_firing_count(&self) -> usize {
        self.firings.iter().filter(|f| f.fired_by_priority).count()
    }
}

/// Computes the earliest time at which transition `t` could fire in normal
/// mode (all inputs) and in priority mode (priority inputs only), given the
/// current token pools. `None` means that mode cannot fire with the tokens
/// currently present.
fn enable_times(
    net: &TimedNet,
    tokens: &[Vec<Duration>],
    t: TransitionId,
) -> (Option<Duration>, Option<Duration>) {
    let priority_places = net.priority_inputs(t);
    let mut normal_ready: Option<Duration> = Some(Duration::ZERO);
    for arc in net.net().input_arcs(t) {
        let pool = &tokens[arc.place.0];
        if (pool.len() as u64) < arc.weight {
            normal_ready = None;
            break;
        }
        let kth = pool[arc.weight as usize - 1];
        normal_ready = normal_ready.map(|r| r.max(kth));
    }
    let priority_ready = if priority_places.is_empty() {
        None
    } else {
        let mut ready: Option<Duration> = Some(Duration::ZERO);
        for arc in net.net().input_arcs(t) {
            if !priority_places.contains(&arc.place) {
                continue;
            }
            let pool = &tokens[arc.place.0];
            if (pool.len() as u64) < arc.weight {
                ready = None;
                break;
            }
            let kth = pool[arc.weight as usize - 1];
            ready = ready.map(|r| r.max(kth));
        }
        ready
    };
    (normal_ready, priority_ready)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A two-segment sequential presentation:
    /// source -> t_start -> [video 10s] -> t_mid -> [quiz 5s] -> t_end -> done
    fn sequential_net() -> (TimedNet, Marking, Vec<TransitionId>, Vec<PlaceId>) {
        let mut b = TimedNetBuilder::new("sequential");
        let source = b.place("source");
        let video = b.timed_place("video", Duration::from_secs(10));
        let quiz = b.timed_place("quiz", Duration::from_secs(5));
        let done = b.place("done");
        let t_start = b.transition("start");
        let t_mid = b.transition("mid");
        let t_end = b.transition("end");
        b.arc_in(source, t_start, 1);
        b.arc_out(t_start, video, 1);
        b.arc_in(video, t_mid, 1);
        b.arc_out(t_mid, quiz, 1);
        b.arc_in(quiz, t_end, 1);
        b.arc_out(t_end, done, 1);
        let net = b.build().unwrap();
        let m0 = Marking::from_pairs(net.place_count(), &[(source, 1)]);
        (
            net,
            m0,
            vec![t_start, t_mid, t_end],
            vec![source, video, quiz, done],
        )
    }

    #[test]
    fn sequential_presentation_fires_on_schedule() {
        let (net, m0, ts, places) = sequential_net();
        let exec = TimedExecution::run_to_completion(&net, &m0).unwrap();
        assert!(exec.completed());
        assert_eq!(exec.firings().len(), 3);
        assert_eq!(exec.firing_of(ts[0]).unwrap().at, Duration::ZERO);
        assert_eq!(exec.firing_of(ts[1]).unwrap().at, Duration::from_secs(10));
        assert_eq!(exec.firing_of(ts[2]).unwrap().at, Duration::from_secs(15));
        assert_eq!(exec.makespan(), Duration::from_secs(15));
        assert_eq!(exec.priority_firing_count(), 0);
        // The done place received its token at 15 s.
        assert_eq!(exec.token_entries(places[3]), &[Duration::from_secs(15)]);
    }

    #[test]
    fn parallel_media_synchronize_at_the_later_one() {
        // t0 -> [video 10s] -\
        //    -> [audio  8s] --> t_sync -> done
        let mut b = TimedNetBuilder::new("sync");
        let source = b.place("source");
        let video = b.timed_place("video", Duration::from_secs(10));
        let audio = b.timed_place("audio", Duration::from_secs(8));
        let done = b.place("done");
        let t0 = b.transition("start");
        let t_sync = b.transition("sync");
        b.arc_in(source, t0, 1);
        b.arc_out(t0, video, 1);
        b.arc_out(t0, audio, 1);
        b.arc_in(video, t_sync, 1);
        b.arc_in(audio, t_sync, 1);
        b.arc_out(t_sync, done, 1);
        let net = b.build().unwrap();
        let m0 = Marking::from_pairs(net.place_count(), &[(source, 1)]);
        let exec = TimedExecution::run_to_completion(&net, &m0).unwrap();
        // The sync transition waits for the longer medium: OCPN semantics.
        assert_eq!(exec.firing_of(t_sync).unwrap().at, Duration::from_secs(10));
    }

    #[test]
    fn priority_arc_fires_without_waiting() {
        // Clock chain guarantees the sync transition fires at 10 s even though
        // the (late) medium is only available at 30 s.
        let mut b = TimedNetBuilder::new("priority");
        let source = b.place("source");
        let late_media = b.timed_place("late-media", Duration::from_secs(30));
        let clock = b.timed_place("clock", Duration::from_secs(10));
        let done = b.place("done");
        let t0 = b.transition("start");
        let t_sync = b.transition("sync");
        b.arc_in(source, t0, 1);
        b.arc_out(t0, late_media, 1);
        b.arc_out(t0, clock, 1);
        b.arc_in(late_media, t_sync, 1);
        b.arc_in_priority(clock, t_sync, 1);
        b.arc_out(t_sync, done, 1);
        let net = b.build().unwrap();
        let m0 = Marking::from_pairs(net.place_count(), &[(source, 1)]);
        let exec = TimedExecution::run_to_completion(&net, &m0).unwrap();
        let sync = exec.firing_of(t_sync).unwrap();
        assert_eq!(sync.at, Duration::from_secs(10));
        assert!(sync.fired_by_priority);
        assert_eq!(sync.missing_inputs, vec![late_media]);
        assert_eq!(exec.priority_firing_count(), 1);
    }

    #[test]
    fn priority_arc_does_not_fire_early_when_normal_inputs_are_ready() {
        // Medium available at 5 s, clock at 10 s: normal firing at 5 s wins…
        // no: the DOCPN rule is the transition needs *either* all inputs
        // (normal mode, ready at max(5,10)=10 because the clock is also an
        // input) or all priority inputs (ready at 10). Both give 10 s, and the
        // firing is *not* flagged as priority because nothing was missing.
        let mut b = TimedNetBuilder::new("not-early");
        let source = b.place("source");
        let media = b.timed_place("media", Duration::from_secs(5));
        let clock = b.timed_place("clock", Duration::from_secs(10));
        let done = b.place("done");
        let t0 = b.transition("start");
        let t_sync = b.transition("sync");
        b.arc_in(source, t0, 1);
        b.arc_out(t0, media, 1);
        b.arc_out(t0, clock, 1);
        b.arc_in(media, t_sync, 1);
        b.arc_in_priority(clock, t_sync, 1);
        b.arc_out(t_sync, done, 1);
        let net = b.build().unwrap();
        let m0 = Marking::from_pairs(net.place_count(), &[(source, 1)]);
        let exec = TimedExecution::run_to_completion(&net, &m0).unwrap();
        let sync = exec.firing_of(t_sync).unwrap();
        assert_eq!(sync.at, Duration::from_secs(10));
        assert!(!sync.fired_by_priority);
        assert!(sync.missing_inputs.is_empty());
    }

    #[test]
    fn injections_delay_token_availability() {
        let (net, m0, ts, places) = sequential_net();
        let source = places[0];
        let mut injections = HashMap::new();
        injections.insert(source, vec![Duration::from_secs(3)]);
        let exec = TimedExecution::run_with_injections(&net, &m0, &injections, DEFAULT_MAX_FIRINGS)
            .unwrap();
        assert_eq!(exec.firing_of(ts[0]).unwrap().at, Duration::from_secs(3));
        assert_eq!(exec.makespan(), Duration::from_secs(18));
    }

    #[test]
    fn cyclic_net_exceeds_budget() {
        let mut b = TimedNetBuilder::new("cycle");
        let p = b.timed_place("p", Duration::from_millis(1));
        let q = b.place("q");
        let t0 = b.transition("t0");
        let t1 = b.transition("t1");
        b.arc_in(p, t0, 1);
        b.arc_out(t0, q, 1);
        b.arc_in(q, t1, 1);
        b.arc_out(t1, p, 1);
        let net = b.build().unwrap();
        let m0 = Marking::from_pairs(net.place_count(), &[(p, 1)]);
        let err = TimedExecution::run_with_injections(&net, &m0, &HashMap::new(), 100).unwrap_err();
        assert!(matches!(
            err,
            DocpnError::ExecutionBudgetExceeded { firings: 100 }
        ));
    }

    #[test]
    fn priority_arc_on_non_input_rejected() {
        let mut b = TimedNetBuilder::new("bad");
        let p = b.place("p");
        let q = b.place("q");
        let t = b.transition("t");
        b.arc_in(p, t, 1);
        // q is not an input of t, so a priority arc on it is invalid.
        b.priority.push((t, q));
        assert_eq!(b.build().unwrap_err(), DocpnError::PriorityArcWithoutInput);
    }

    #[test]
    fn weighted_timed_arcs_wait_for_kth_token() {
        let mut b = TimedNetBuilder::new("weighted");
        let pool = b.timed_place("pool", Duration::from_secs(2));
        let out = b.place("out");
        let t = b.transition("take2");
        b.arc_in(pool, t, 2);
        b.arc_out(t, out, 1);
        let net = b.build().unwrap();
        let m0 = Marking::from_pairs(net.place_count(), &[(pool, 2)]);
        let exec = TimedExecution::run_to_completion(&net, &m0).unwrap();
        assert_eq!(exec.firing_of(t).unwrap().at, Duration::from_secs(2));
        // With only one token the transition never fires.
        let m1 = Marking::from_pairs(net.place_count(), &[(pool, 1)]);
        let exec = TimedExecution::run_to_completion(&net, &m1).unwrap();
        assert!(exec.firing_of(t).is_none());
        assert_eq!(exec.makespan(), Duration::ZERO);
    }

    #[test]
    fn accessors_expose_structure() {
        let (net, _m0, ts, places) = sequential_net();
        assert_eq!(net.place_count(), 4);
        assert_eq!(net.transition_count(), 3);
        assert_eq!(net.place_duration(places[1]), Duration::from_secs(10));
        assert_eq!(net.place_duration(PlaceId(99)), Duration::ZERO);
        assert!(!net.has_priority_inputs(ts[0]));
        assert!(net.priority_inputs(ts[0]).is_empty());
        assert_eq!(net.net().name(), "sequential");
    }
}
