//! # dmps-docpn
//!
//! The Petri-net presentation models of the DMPS paper: timed nets,
//! prioritized (DOCPN-style) firing, the OCPN / XOCPN / DOCPN compilers that
//! turn a [`dmps_media::PresentationDocument`] into an executable net, and
//! the scheduler that produces the synchronous presentation schedule.
//!
//! The three models reproduce the lineage the paper describes in Sections 2
//! and 3:
//!
//! * **OCPN** (Little & Ghafoor) — places carry media playout durations,
//!   transitions are synchronization points; every input must arrive before a
//!   transition fires.
//! * **XOCPN** (Woo, Qazi & Ghafoor) — adds per-object communication places
//!   so network transfer time is part of the model and channels are set up
//!   according to each object's QoS.
//! * **DOCPN** (this paper, after Yang et al.'s prioritized Petri nets) —
//!   adds a **global-clock chain with priority arcs** into every
//!   synchronization transition and **user-interaction transitions**, so a
//!   transition whose schedule is due fires even if some non-priority input
//!   (a late medium, a silent user) has not arrived.
//!
//! # Example
//!
//! ```
//! use dmps_docpn::{compile, CompileOptions, ModelKind, TimedExecution};
//! use dmps_media::{MediaKind, MediaObject, PresentationDocument, TemporalRelation};
//! use std::time::Duration;
//!
//! let mut doc = PresentationDocument::new("demo");
//! let v = doc.add_object(MediaObject::new("video", MediaKind::Video, Duration::from_secs(10)));
//! let a = doc.add_object(MediaObject::new("audio", MediaKind::Audio, Duration::from_secs(10)));
//! doc.relate(v, TemporalRelation::Equals, a).unwrap();
//!
//! let compiled = compile(&doc, &CompileOptions::new(ModelKind::Docpn)).unwrap();
//! let execution = TimedExecution::run_to_completion(&compiled.net, &compiled.initial).unwrap();
//! assert!(execution.completed());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compile;
pub mod error;
pub mod interaction;
pub mod priority;
pub mod schedule;
pub mod timed;
pub mod verify;

pub use compile::{compile, CompileOptions, CompiledPresentation, ModelKind};
pub use error::{DocpnError, Result};
pub use interaction::{InteractionBehavior, UserAction};
pub use priority::PriorityPolicy;
pub use schedule::{MediaScheduleEntry, ScheduleReport};
pub use timed::{FiringEvent, TimedExecution, TimedNet, TimedNetBuilder};
pub use verify::{verify_presentation, VerificationReport};
