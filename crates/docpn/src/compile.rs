//! Compilation of a [`PresentationDocument`] into an executable timed net
//! under one of the three models (OCPN, XOCPN, DOCPN).
//!
//! The construction follows the standard OCPN encoding of a solved timeline:
//!
//! * one **synchronization transition** per distinct event time (any media
//!   start or end),
//! * one **playout place** per media object (duration = its presentation
//!   length) between its start and end transitions,
//! * **timer places** chaining consecutive synchronization transitions so the
//!   nominal schedule is carried even across gaps.
//!
//! The XOCPN variant adds one **delivery place** per object (duration = the
//! object's network transfer time, channels set up at presentation start) as
//! an extra input to the object's start transition. The DOCPN variant
//! additionally marks every timer-chain arc as a **priority arc** (the global
//! clock dominates) and compiles the document's interaction points into
//! user/timeout transition pairs.

use std::collections::{BTreeMap, HashMap};
use std::time::Duration;

use serde::{Deserialize, Serialize};

use dmps_media::{MediaId, PresentationDocument, Timeline};
use dmps_petri::{Marking, PlaceId, TransitionId};

use crate::error::{DocpnError, Result};
use crate::interaction::InteractionBehavior;
use crate::timed::{TimedNet, TimedNetBuilder};

/// Which of the three presentation models to compile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// Object Composition Petri Net (Little & Ghafoor): local media, no
    /// priority, no user interaction.
    Ocpn,
    /// Extended OCPN (Woo, Qazi & Ghafoor): adds per-object delivery places
    /// representing QoS-provisioned channels.
    Xocpn,
    /// Distributed OCPN (this paper): XOCPN plus global-clock priority arcs
    /// and user-interaction transitions.
    Docpn,
}

impl ModelKind {
    /// All three models, in historical order.
    pub fn all() -> [ModelKind; 3] {
        [ModelKind::Ocpn, ModelKind::Xocpn, ModelKind::Docpn]
    }

    /// Whether the model includes delivery (network transfer) places.
    pub fn models_transport(self) -> bool {
        matches!(self, ModelKind::Xocpn | ModelKind::Docpn)
    }

    /// Whether the model uses the global-clock priority arcs.
    pub fn has_priority_clock(self) -> bool {
        matches!(self, ModelKind::Docpn)
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ModelKind::Ocpn => "OCPN",
            ModelKind::Xocpn => "XOCPN",
            ModelKind::Docpn => "DOCPN",
        };
        f.write_str(s)
    }
}

/// Options controlling compilation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CompileOptions {
    /// The model to compile.
    pub model: Option<ModelKind>,
    /// Per-object network transfer delay (used by XOCPN/DOCPN delivery
    /// places). Objects not listed get [`CompileOptions::default_transfer`].
    pub transfer_delays: HashMap<MediaId, Duration>,
    /// Transfer delay for objects not listed in `transfer_delays`.
    pub default_transfer: Duration,
    /// Behaviour of each interaction point, keyed by label (DOCPN only).
    pub interaction_behaviors: HashMap<String, InteractionBehavior>,
}

impl CompileOptions {
    /// Creates options for the given model with no transfer delays and all
    /// interactions timing out.
    pub fn new(model: ModelKind) -> Self {
        CompileOptions {
            model: Some(model),
            ..Default::default()
        }
    }

    /// The selected model (defaults to DOCPN).
    pub fn model(&self) -> ModelKind {
        self.model.unwrap_or(ModelKind::Docpn)
    }

    /// Sets the transfer delay of one object.
    pub fn with_transfer_delay(mut self, media: MediaId, delay: Duration) -> Self {
        self.transfer_delays.insert(media, delay);
        self
    }

    /// Sets the default transfer delay for unlisted objects.
    pub fn with_default_transfer(mut self, delay: Duration) -> Self {
        self.default_transfer = delay;
        self
    }

    /// Sets the behaviour of one interaction point.
    pub fn with_interaction(
        mut self,
        label: impl Into<String>,
        behavior: InteractionBehavior,
    ) -> Self {
        self.interaction_behaviors.insert(label.into(), behavior);
        self
    }

    /// The transfer delay to use for an object.
    pub fn transfer_delay(&self, media: MediaId) -> Duration {
        self.transfer_delays
            .get(&media)
            .copied()
            .unwrap_or(self.default_transfer)
    }
}

/// One synchronization point of the compiled net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyncPoint {
    /// The transition implementing the synchronization point.
    pub transition: TransitionId,
    /// The nominal (ideal) time of the point on the presentation timeline.
    pub ideal: Duration,
}

/// The output of [`compile`]: the timed net plus the metadata needed to map
/// executions back onto media objects and the nominal schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledPresentation {
    /// The executable timed net.
    pub net: TimedNet,
    /// The initial marking (a single token in the source place, plus any
    /// delivery / clock / interaction tokens the model needs).
    pub initial: Marking,
    /// Which model was compiled.
    pub model: ModelKind,
    /// The solved nominal timeline of the document.
    pub timeline: Timeline,
    /// Playout place of each media object.
    pub media_playout_place: BTreeMap<MediaId, PlaceId>,
    /// Delivery place of each media object (XOCPN/DOCPN only).
    pub media_delivery_place: BTreeMap<MediaId, PlaceId>,
    /// The synchronization transition at which each media object starts.
    pub media_start_transition: BTreeMap<MediaId, TransitionId>,
    /// Every synchronization point with its nominal time, in timeline order.
    pub sync_points: Vec<SyncPoint>,
    /// The user/timeout transition pair of each interaction point
    /// (DOCPN only), keyed by label.
    pub interaction_transitions: BTreeMap<String, (TransitionId, TransitionId)>,
    /// The final "presentation complete" place.
    pub done_place: PlaceId,
}

impl CompiledPresentation {
    /// The nominal start time of a media object.
    ///
    /// # Errors
    ///
    /// Returns an error when the media id is not part of the document.
    pub fn ideal_start(&self, media: MediaId) -> Result<Duration> {
        Ok(self.timeline.interval(media)?.start)
    }

    /// The synchronization transition scheduled at the given nominal time, if
    /// any.
    pub fn sync_at(&self, ideal: Duration) -> Option<TransitionId> {
        self.sync_points
            .iter()
            .find(|sp| sp.ideal == ideal)
            .map(|sp| sp.transition)
    }
}

/// Compiles a presentation document into a timed net under the given model.
///
/// # Errors
///
/// Returns [`DocpnError::EmptyPresentation`] for a document with no objects,
/// timeline-solving errors from the media crate, and structural errors from
/// the Petri net builder.
pub fn compile(
    doc: &PresentationDocument,
    options: &CompileOptions,
) -> Result<CompiledPresentation> {
    if doc.object_count() == 0 {
        return Err(DocpnError::EmptyPresentation);
    }
    let model = options.model();
    let timeline = doc.timeline()?;

    // 1. Distinct event times.
    let mut event_times: Vec<Duration> = vec![Duration::ZERO];
    for (id, _) in doc.objects() {
        let iv = timeline.interval(id)?;
        event_times.push(iv.start);
        event_times.push(iv.end());
    }
    event_times.sort();
    event_times.dedup();

    let mut b = TimedNetBuilder::new(format!("{model}:{}", doc.name()));

    // 2. Synchronization transitions.
    let sync_transitions: Vec<TransitionId> = event_times
        .iter()
        .map(|t| b.transition(format!("sync@{}ms", t.as_millis())))
        .collect();

    // 3. Source and done places.
    let source = b.place("source");
    let done_place = b.place("done");
    b.arc_in(source, sync_transitions[0], 1);
    b.arc_out(
        *sync_transitions.last().expect("at least one event time"),
        done_place,
        1,
    );

    let mut initial_tokens: Vec<(PlaceId, u64)> = vec![(source, 1)];

    // Under DOCPN the very first synchronization transition is also clock
    // driven: an initially marked clock place with a priority arc lets the
    // presentation start on time even if some delivery has not completed.
    if model.has_priority_clock() {
        let clock0 = b.place("clock@0ms");
        b.arc_in_priority(clock0, sync_transitions[0], 1);
        initial_tokens.push((clock0, 1));
    }

    // 4. Timer chain carrying the nominal schedule between consecutive
    //    synchronization transitions. Under DOCPN these are the global-clock
    //    places and their arcs into the next transition are priority arcs.
    for w in 0..event_times.len() - 1 {
        let gap = event_times[w + 1] - event_times[w];
        let timer = b.timed_place(
            format!(
                "{}@{}ms",
                if model.has_priority_clock() {
                    "clock"
                } else {
                    "timer"
                },
                event_times[w + 1].as_millis()
            ),
            gap,
        );
        b.arc_out(sync_transitions[w], timer, 1);
        if model.has_priority_clock() {
            b.arc_in_priority(timer, sync_transitions[w + 1], 1);
        } else {
            b.arc_in(timer, sync_transitions[w + 1], 1);
        }
    }

    // 5. Media playout places between their start and end transitions.
    let index_of = |t: Duration| -> usize {
        event_times
            .binary_search(&t)
            .expect("event time collected above")
    };
    let mut media_playout_place = BTreeMap::new();
    let mut media_delivery_place = BTreeMap::new();
    let mut media_start_transition = BTreeMap::new();
    for (id, obj) in doc.objects() {
        let iv = timeline.interval(id)?;
        let start_t = sync_transitions[index_of(iv.start)];
        let end_t = sync_transitions[index_of(iv.end())];
        let playout = b.timed_place(format!("play:{}", obj.name), obj.duration);
        b.arc_out(start_t, playout, 1);
        b.arc_in(playout, end_t, 1);
        media_playout_place.insert(id, playout);
        media_start_transition.insert(id, start_t);

        if model.models_transport() {
            // Delivery place: the channel is set up at presentation start, so
            // the token is initially marked and becomes available after the
            // transfer delay.
            let delivery =
                b.timed_place(format!("deliver:{}", obj.name), options.transfer_delay(id));
            b.arc_in(delivery, start_t, 1);
            media_delivery_place.insert(id, delivery);
            initial_tokens.push((delivery, 1));
        }
    }

    // 6. Interaction points (DOCPN only): a user transition and a timeout
    //    transition racing for a shared pending token; whichever fires
    //    produces the response place consumed by the next synchronization
    //    transition after the interaction instant.
    let mut interaction_transitions = BTreeMap::new();
    if model == ModelKind::Docpn {
        for ip in doc.interactions() {
            let behavior = options
                .interaction_behaviors
                .get(&ip.label)
                .copied()
                .unwrap_or_default();
            let pending = b.place(format!("pending:{}", ip.label));
            let response = b.place(format!("response:{}", ip.label));
            // The user's action: a timed place whose token becomes available
            // when the user acts. When the behaviour is `TimesOut` the place
            // is never marked.
            let user_input = match behavior.action_time() {
                Some(at) => {
                    let p = b.timed_place(format!("user:{}", ip.label), at);
                    initial_tokens.push((p, 1));
                    p
                }
                None => b.place(format!("user:{}", ip.label)),
            };
            let timeout_clock = b.timed_place(format!("timeout:{}", ip.label), ip.at + ip.timeout);
            initial_tokens.push((timeout_clock, 1));
            initial_tokens.push((pending, 1));

            let t_user = b.transition(format!("interact:{}", ip.label));
            let t_timeout = b.transition(format!("interact-timeout:{}", ip.label));
            b.arc_in(pending, t_user, 1);
            b.arc_in(user_input, t_user, 1);
            b.arc_out(t_user, response, 1);
            // Both arcs of the timeout path are priority arcs (the paper's
            // "AND" rule for same-priority events): the timeout only fires
            // when the pending token is still there, i.e. the user has not
            // already answered.
            b.arc_in_priority(pending, t_timeout, 1);
            b.arc_in_priority(timeout_clock, t_timeout, 1);
            b.arc_out(t_timeout, response, 1);

            // The response gates the first synchronization transition at or
            // after the interaction instant (excluding the very first).
            let gate_index = event_times
                .iter()
                .position(|&t| t >= ip.at && t > Duration::ZERO)
                .unwrap_or(event_times.len() - 1);
            b.arc_in(response, sync_transitions[gate_index], 1);
            interaction_transitions.insert(ip.label.clone(), (t_user, t_timeout));
        }
    }

    let net = b.build()?;
    let initial = Marking::from_pairs(net.place_count(), &initial_tokens);
    let sync_points = event_times
        .iter()
        .zip(&sync_transitions)
        .map(|(&ideal, &transition)| SyncPoint { transition, ideal })
        .collect();

    Ok(CompiledPresentation {
        net,
        initial,
        model,
        timeline,
        media_playout_place,
        media_delivery_place,
        media_start_transition,
        sync_points,
        interaction_transitions,
        done_place,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timed::TimedExecution;
    use dmps_media::{MediaKind, MediaObject, TemporalRelation};

    fn lecture() -> PresentationDocument {
        let mut doc = PresentationDocument::new("lecture");
        let video = doc.add_object(MediaObject::new(
            "video",
            MediaKind::Video,
            Duration::from_secs(30),
        ));
        let audio = doc.add_object(MediaObject::new(
            "audio",
            MediaKind::Audio,
            Duration::from_secs(30),
        ));
        let slides = doc.add_object(MediaObject::new(
            "slides",
            MediaKind::Slide,
            Duration::from_secs(20),
        ));
        let quiz = doc.add_object(MediaObject::new(
            "quiz",
            MediaKind::Text,
            Duration::from_secs(10),
        ));
        doc.relate(video, TemporalRelation::Equals, audio).unwrap();
        doc.relate(video, TemporalRelation::StartedBy, slides)
            .unwrap();
        doc.relate(video, TemporalRelation::Meets, quiz).unwrap();
        doc
    }

    #[test]
    fn empty_document_rejected() {
        let doc = PresentationDocument::new("empty");
        assert_eq!(
            compile(&doc, &CompileOptions::new(ModelKind::Ocpn)).unwrap_err(),
            DocpnError::EmptyPresentation
        );
    }

    #[test]
    fn ocpn_compiles_and_runs_on_nominal_schedule() {
        let doc = lecture();
        let compiled = compile(&doc, &CompileOptions::new(ModelKind::Ocpn)).unwrap();
        assert_eq!(compiled.model, ModelKind::Ocpn);
        assert!(compiled.media_delivery_place.is_empty());
        assert!(compiled.interaction_transitions.is_empty());
        let exec = TimedExecution::run_to_completion(&compiled.net, &compiled.initial).unwrap();
        // The presentation ends at 40 s (30 s lecture + 10 s quiz).
        assert_eq!(exec.makespan(), Duration::from_secs(40));
        assert_eq!(exec.priority_firing_count(), 0);
        // Every sync transition fired exactly at its ideal time.
        for sp in &compiled.sync_points {
            assert_eq!(exec.firing_of(sp.transition).unwrap().at, sp.ideal);
        }
    }

    #[test]
    fn xocpn_adds_delivery_places() {
        let doc = lecture();
        let options =
            CompileOptions::new(ModelKind::Xocpn).with_default_transfer(Duration::from_secs(1));
        let compiled = compile(&doc, &options).unwrap();
        assert_eq!(compiled.media_delivery_place.len(), doc.object_count());
        let exec = TimedExecution::run_to_completion(&compiled.net, &compiled.initial).unwrap();
        // 1 s of delivery delay on the first objects pushes the whole
        // presentation back by 1 s under XOCPN (no priority clock).
        assert_eq!(exec.makespan(), Duration::from_secs(41));
        assert_eq!(exec.priority_firing_count(), 0);
    }

    #[test]
    fn docpn_priority_clock_holds_the_schedule_despite_late_media() {
        let doc = lecture();
        let slides_id = doc.objects().find(|(_, o)| o.name == "slides").unwrap().0;
        let options = CompileOptions::new(ModelKind::Docpn)
            .with_transfer_delay(slides_id, Duration::from_secs(90));
        let compiled = compile(&doc, &options).unwrap();
        let exec = TimedExecution::run_to_completion(&compiled.net, &compiled.initial).unwrap();
        // The clock keeps every sync transition on its nominal time.
        for sp in &compiled.sync_points {
            assert_eq!(
                exec.firing_of(sp.transition).unwrap().at,
                sp.ideal,
                "sync point at {:?}",
                sp.ideal
            );
        }
        assert_eq!(exec.makespan(), Duration::from_secs(40));
        // At least one firing had to use the priority rule because the slides
        // never arrived in time.
        assert!(exec.priority_firing_count() >= 1);
        let start_t = compiled.media_start_transition[&slides_id];
        let firing = exec.firing_of(start_t).unwrap();
        assert!(firing.fired_by_priority);
        assert!(firing
            .missing_inputs
            .contains(&compiled.media_delivery_place[&slides_id]));
    }

    #[test]
    fn docpn_compiles_interactions_with_user_and_timeout_paths() {
        let mut doc = lecture();
        doc.add_interaction("poll", Duration::from_secs(30), Duration::from_secs(5));

        // Case 1: the user never answers; the timeout transition fires at 35 s.
        let compiled = compile(&doc, &CompileOptions::new(ModelKind::Docpn)).unwrap();
        assert_eq!(compiled.interaction_transitions.len(), 1);
        let (t_user, t_timeout) = compiled.interaction_transitions["poll"];
        let exec = TimedExecution::run_to_completion(&compiled.net, &compiled.initial).unwrap();
        assert!(exec.firing_of(t_user).is_none());
        assert_eq!(
            exec.firing_of(t_timeout).unwrap().at,
            Duration::from_secs(35)
        );

        // Case 2: the user answers at 31 s; the user transition fires and the
        // timeout path never does.
        let options = CompileOptions::new(ModelKind::Docpn).with_interaction(
            "poll",
            InteractionBehavior::ActedAt(Duration::from_secs(31)),
        );
        let compiled = compile(&doc, &options).unwrap();
        let (t_user, t_timeout) = compiled.interaction_transitions["poll"];
        let exec = TimedExecution::run_to_completion(&compiled.net, &compiled.initial).unwrap();
        assert_eq!(exec.firing_of(t_user).unwrap().at, Duration::from_secs(31));
        assert!(exec.firing_of(t_timeout).is_none());
    }

    #[test]
    fn sync_points_and_lookup_helpers() {
        let doc = lecture();
        let compiled = compile(&doc, &CompileOptions::new(ModelKind::Docpn)).unwrap();
        // Event times: 0, 20 (slides end), 30 (video/audio end), 40 (quiz end).
        let ideals: Vec<Duration> = compiled.sync_points.iter().map(|s| s.ideal).collect();
        assert_eq!(
            ideals,
            vec![
                Duration::ZERO,
                Duration::from_secs(20),
                Duration::from_secs(30),
                Duration::from_secs(40)
            ]
        );
        assert!(compiled.sync_at(Duration::from_secs(30)).is_some());
        assert!(compiled.sync_at(Duration::from_secs(31)).is_none());
        let video_id = doc.objects().find(|(_, o)| o.name == "video").unwrap().0;
        assert_eq!(compiled.ideal_start(video_id).unwrap(), Duration::ZERO);
    }

    #[test]
    fn model_kind_helpers() {
        assert_eq!(ModelKind::all().len(), 3);
        assert!(!ModelKind::Ocpn.models_transport());
        assert!(ModelKind::Xocpn.models_transport());
        assert!(ModelKind::Docpn.models_transport());
        assert!(ModelKind::Docpn.has_priority_clock());
        assert!(!ModelKind::Xocpn.has_priority_clock());
        assert_eq!(ModelKind::Docpn.to_string(), "DOCPN");
        assert_eq!(CompileOptions::default().model(), ModelKind::Docpn);
    }
}
