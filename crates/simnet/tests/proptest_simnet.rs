//! Property-based tests for the network simulator.

use std::time::Duration;

use dmps_simnet::{Link, LocalClock, Network, SimTime};
use proptest::prelude::*;

fn arb_link() -> impl Strategy<Value = Link> {
    (1u64..200, 0u64..50, 64u32..100_000, 0.0f64..0.2).prop_map(
        |(latency_ms, jitter_ms, bw, loss)| Link {
            latency: Duration::from_millis(latency_ms),
            jitter: Duration::from_millis(jitter_ms),
            bandwidth_kbps: bw,
            loss_rate: loss,
            up: true,
        },
    )
}

proptest! {
    /// Deliveries always come out in non-decreasing time order, time never
    /// runs backwards, and delivered + dropped equals the number of sends.
    #[test]
    fn conservation_and_monotonicity(
        link in arb_link(),
        sizes in proptest::collection::vec(1u64..10_000, 1..100),
        seed in 0u64..1_000,
    ) {
        let mut net = Network::new(seed);
        let a = net.add_host("a");
        let b = net.add_host("b");
        net.connect(a, b, link).unwrap();
        for (i, &size) in sizes.iter().enumerate() {
            net.send(a, b, i, size).unwrap();
        }
        let mut last = SimTime::ZERO;
        let mut delivered = 0usize;
        while let Some(d) = net.next_delivery() {
            prop_assert!(d.at >= last);
            prop_assert_eq!(net.now(), d.at);
            last = d.at;
            delivered += 1;
        }
        prop_assert_eq!(delivered + net.dropped().len(), sizes.len());
    }

    /// Every delivery over a link arrives no earlier than the link's minimum
    /// possible delay (latency + transmission).
    #[test]
    fn deliveries_respect_minimum_delay(
        link in arb_link(),
        size in 1u64..100_000,
        seed in 0u64..1_000,
    ) {
        let mut net = Network::new(seed);
        let a = net.add_host("a");
        let b = net.add_host("b");
        let lossless = Link { loss_rate: 0.0, ..link };
        net.connect(a, b, lossless).unwrap();
        net.send(a, b, 0u8, size).unwrap();
        let d = net.next_delivery().unwrap();
        let min = lossless.latency + lossless.transmission_delay(size);
        prop_assert!(d.at.duration_since(SimTime::ZERO) >= min);
        // And no later than min + jitter.
        prop_assert!(d.at.duration_since(SimTime::ZERO) <= min + lossless.jitter);
    }

    /// The same seed reproduces the exact same delivery schedule.
    #[test]
    fn determinism(seed in 0u64..500, n in 1usize..80) {
        let run = || {
            let mut net = Network::new(seed);
            let a = net.add_host("a");
            let b = net.add_host("b");
            net.connect(a, b, Link::wan()).unwrap();
            for i in 0..n {
                net.send(a, b, i, (i as u64 + 1) * 10).unwrap();
            }
            net.run_until_idle()
                .into_iter()
                .map(|d| (d.seq, d.at.as_nanos()))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }

    /// Local clock conversion functions are mutual inverses within rounding
    /// error for realistic drifts.
    #[test]
    fn clock_roundtrip(drift_ppm in -1_000.0f64..1_000.0, offset_ms in -10_000i64..10_000, at_s in 0u64..100_000) {
        let clock = LocalClock::new(drift_ppm, offset_ms * 1_000_000);
        let global = SimTime::from_secs(at_s);
        let local = clock.local_at(global);
        if local > SimTime::ZERO {
            let back = clock.global_at(local);
            let err = back.signed_offset_from(global).abs();
            prop_assert!(err < 1_000, "round-trip error {err} ns");
        }
    }

    /// Clock skew grows linearly with drift: doubling elapsed time roughly
    /// doubles the skew for a pure-drift clock.
    #[test]
    fn skew_grows_with_time(drift_ppm in 1.0f64..1_000.0, at_s in 10u64..10_000) {
        let clock = LocalClock::new(drift_ppm, 0);
        let skew1 = clock.skew_nanos_at(SimTime::from_secs(at_s));
        let skew2 = clock.skew_nanos_at(SimTime::from_secs(at_s * 2));
        prop_assert!(skew1 > 0);
        let ratio = skew2 as f64 / skew1 as f64;
        prop_assert!((ratio - 2.0).abs() < 0.01, "ratio {ratio}");
    }
}
