//! Structured event traces for the experiment harness.
//!
//! Every experiment binary in `dmps-bench` records a [`Trace`] so that
//! `EXPERIMENTS.md` entries can point at reproducible, diffable evidence.

use serde::{Deserialize, Serialize};

use crate::network::HostId;
use crate::time::SimTime;

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Global simulation time of the event.
    pub at: SimTime,
    /// The host the event concerns, if any.
    pub host: Option<HostId>,
    /// Event category (free-form, e.g. `"fire"`, `"grant"`, `"suspend"`).
    pub category: String,
    /// Human-readable detail.
    pub detail: String,
}

/// An append-only, time-ordered event trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Records an event.
    pub fn record(
        &mut self,
        at: SimTime,
        host: Option<HostId>,
        category: impl Into<String>,
        detail: impl Into<String>,
    ) {
        self.events.push(TraceEvent {
            at,
            host,
            category: category.into(),
            detail: detail.into(),
        });
    }

    /// All events in recording order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events of a given category.
    pub fn of_category<'a>(&'a self, category: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.events.iter().filter(move |e| e.category == category)
    }

    /// Events concerning a given host.
    pub fn of_host(&self, host: HostId) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.host == Some(host))
    }

    /// Renders the trace as a simple tab-separated text table, one event per
    /// line — the format the experiment binaries print.
    pub fn to_table(&self) -> String {
        let mut out = String::from("time\thost\tcategory\tdetail\n");
        for e in &self.events {
            out.push_str(&format!(
                "{}\t{}\t{}\t{}\n",
                e.at,
                e.host.map(|h| h.to_string()).unwrap_or_else(|| "-".into()),
                e.category,
                e.detail
            ));
        }
        out
    }
}

impl Extend<TraceEvent> for Trace {
    fn extend<T: IntoIterator<Item = TraceEvent>>(&mut self, iter: T) {
        self.events.extend(iter);
    }
}

impl dmps_wire::Wire for TraceEvent {
    fn encode(&self, w: &mut dmps_wire::Writer) {
        self.at.encode(w);
        self.host.encode(w);
        self.category.encode(w);
        self.detail.encode(w);
    }

    fn decode(r: &mut dmps_wire::Reader<'_>) -> dmps_wire::Result<Self> {
        Ok(TraceEvent {
            at: SimTime::decode(r)?,
            host: Option::<HostId>::decode(r)?,
            category: String::decode(r)?,
            detail: String::decode(r)?,
        })
    }
}

impl dmps_wire::Wire for Trace {
    fn encode(&self, w: &mut dmps_wire::Writer) {
        self.events.encode(w);
    }

    fn decode(r: &mut dmps_wire::Reader<'_>) -> dmps_wire::Result<Self> {
        Ok(Trace {
            events: Vec::<TraceEvent>::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_filter() {
        let mut trace = Trace::new();
        assert!(trace.is_empty());
        trace.record(SimTime::from_millis(1), Some(HostId(0)), "fire", "t0");
        trace.record(
            SimTime::from_millis(2),
            Some(HostId(1)),
            "grant",
            "floor to h1",
        );
        trace.record(SimTime::from_millis(3), None, "fire", "t1");
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.of_category("fire").count(), 2);
        assert_eq!(trace.of_host(HostId(1)).count(), 1);
        assert!(!trace.is_empty());
    }

    #[test]
    fn table_renders_every_event() {
        let mut trace = Trace::new();
        trace.record(
            SimTime::from_millis(5),
            Some(HostId(2)),
            "suspend",
            "member 3",
        );
        let table = trace.to_table();
        assert!(table.starts_with("time\thost\tcategory\tdetail\n"));
        assert!(table.contains("h2"));
        assert!(table.contains("suspend"));
        assert!(table.contains("member 3"));
    }

    #[test]
    fn extend_appends_events() {
        let mut trace = Trace::new();
        trace.extend(vec![TraceEvent {
            at: SimTime::ZERO,
            host: None,
            category: "x".into(),
            detail: "y".into(),
        }]);
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.events()[0].category, "x");
    }

    #[test]
    fn serde_roundtrip() {
        let mut trace = Trace::new();
        trace.record(SimTime::from_secs(1), Some(HostId(0)), "fire", "a");
        let encoded = dmps_wire::to_string(&trace);
        let back: Trace = dmps_wire::from_str(&encoded).unwrap();
        assert_eq!(trace, back);
    }
}
