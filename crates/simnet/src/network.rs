//! The discrete-event network: hosts, links, message delivery and drops.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::clock::LocalClock;
use crate::error::{Result, SimError};
use crate::link::Link;
use crate::time::SimTime;

/// Identifier of a simulated host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HostId(pub usize);

impl HostId {
    /// The dense index of the host.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// A message delivered to a host.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Delivery<M> {
    /// Global simulation time of the delivery.
    pub at: SimTime,
    /// Sending host (equal to `to` for self-scheduled timers).
    pub from: HostId,
    /// Receiving host.
    pub to: HostId,
    /// The payload.
    pub payload: M,
    /// Monotonically increasing send sequence number (global).
    pub seq: u64,
}

/// Why a message was not delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropReason {
    /// Random loss on the link.
    Loss,
    /// The link was administratively down (Figure 3c red light).
    LinkDown,
    /// The sending or receiving host was down (crashed).
    HostDown,
}

impl dmps_wire::Wire for HostId {
    fn encode(&self, w: &mut dmps_wire::Writer) {
        self.0.encode(w);
    }

    fn decode(r: &mut dmps_wire::Reader<'_>) -> dmps_wire::Result<Self> {
        Ok(HostId(usize::decode(r)?))
    }
}

/// A message that was dropped instead of delivered.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dropped<M> {
    /// Global simulation time of the send attempt.
    pub at: SimTime,
    /// Sending host.
    pub from: HostId,
    /// Intended receiver.
    pub to: HostId,
    /// The payload that was lost.
    pub payload: M,
    /// Why it was dropped.
    pub reason: DropReason,
}

#[derive(Debug)]
struct Host {
    name: String,
    clock: LocalClock,
    up: bool,
}

#[derive(Debug)]
struct LinkState {
    link: Link,
    /// The earliest time the link can start serializing the next message in
    /// each direction, keyed by the sending side.
    busy_until: HashMap<HostId, SimTime>,
}

#[derive(Debug)]
struct Queued<M> {
    at: SimTime,
    seq: u64,
    delivery: Delivery<M>,
}

impl<M> PartialEq for Queued<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Queued<M> {}
impl<M> PartialOrd for Queued<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Queued<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: reverse so the earliest event pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A deterministic discrete-event network connecting hosts with links.
///
/// All randomness (jitter, loss) comes from a single seeded RNG, so two runs
/// with the same seed and the same sequence of calls produce identical
/// deliveries — the property every experiment in `EXPERIMENTS.md` relies on.
#[derive(Debug)]
pub struct Network<M> {
    now: SimTime,
    hosts: Vec<Host>,
    links: HashMap<(HostId, HostId), LinkState>,
    queue: BinaryHeap<Queued<M>>,
    rng: StdRng,
    seq: u64,
    dropped: Vec<Dropped<M>>,
    delivered_count: u64,
}

impl<M> Network<M> {
    /// Creates an empty network with a deterministic RNG seed.
    pub fn new(seed: u64) -> Self {
        Network {
            now: SimTime::ZERO,
            hosts: Vec::new(),
            links: HashMap::new(),
            queue: BinaryHeap::new(),
            rng: StdRng::seed_from_u64(seed),
            seq: 0,
            dropped: Vec::new(),
            delivered_count: 0,
        }
    }

    /// Adds a host with a perfect local clock.
    pub fn add_host(&mut self, name: impl Into<String>) -> HostId {
        self.hosts.push(Host {
            name: name.into(),
            clock: LocalClock::perfect(),
            up: true,
        });
        HostId(self.hosts.len() - 1)
    }

    /// Adds a host with the given local clock.
    pub fn add_host_with_clock(&mut self, name: impl Into<String>, clock: LocalClock) -> HostId {
        let id = self.add_host(name);
        self.hosts[id.0].clock = clock;
        id
    }

    /// Number of hosts.
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// The name of a host.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownHost`] for an unknown id.
    pub fn host_name(&self, id: HostId) -> Result<&str> {
        self.hosts
            .get(id.0)
            .map(|h| h.name.as_str())
            .ok_or(SimError::UnknownHost(id))
    }

    /// The local clock of a host.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownHost`] for an unknown id.
    pub fn clock(&self, id: HostId) -> Result<&LocalClock> {
        self.hosts
            .get(id.0)
            .map(|h| &h.clock)
            .ok_or(SimError::UnknownHost(id))
    }

    /// Mutable access to the local clock of a host (used by the global-clock
    /// synchronization client to slew its offset).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownHost`] for an unknown id.
    pub fn clock_mut(&mut self, id: HostId) -> Result<&mut LocalClock> {
        self.hosts
            .get_mut(id.0)
            .map(|h| &mut h.clock)
            .ok_or(SimError::UnknownHost(id))
    }

    /// The local time a host's clock currently shows.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownHost`] for an unknown id.
    pub fn local_time(&self, id: HostId) -> Result<SimTime> {
        Ok(self.clock(id)?.local_at(self.now))
    }

    /// Connects two hosts with a link (bidirectional).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SelfLink`] when `a == b`,
    /// [`SimError::UnknownHost`] for unknown ids, and
    /// [`SimError::InvalidLink`] when the link fails validation.
    pub fn connect(&mut self, a: HostId, b: HostId, link: Link) -> Result<()> {
        if a == b {
            return Err(SimError::SelfLink(a));
        }
        if a.0 >= self.hosts.len() {
            return Err(SimError::UnknownHost(a));
        }
        if b.0 >= self.hosts.len() {
            return Err(SimError::UnknownHost(b));
        }
        link.validate()?;
        self.links.insert(
            Self::key(a, b),
            LinkState {
                link,
                busy_until: HashMap::new(),
            },
        );
        Ok(())
    }

    fn key(a: HostId, b: HostId) -> (HostId, HostId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// The link between two hosts, if any.
    pub fn link(&self, a: HostId, b: HostId) -> Option<&Link> {
        self.links.get(&Self::key(a, b)).map(|s| &s.link)
    }

    /// Marks the link between two hosts up or down.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NotConnected`] when no link exists.
    pub fn set_link_up(&mut self, a: HostId, b: HostId, up: bool) -> Result<()> {
        let state = self
            .links
            .get_mut(&Self::key(a, b))
            .ok_or(SimError::NotConnected { from: a, to: b })?;
        state.link.up = up;
        Ok(())
    }

    /// Whether two hosts are connected, the link is up, and both hosts are
    /// up.
    pub fn is_reachable(&self, a: HostId, b: HostId) -> bool {
        self.link(a, b).map(|l| l.up).unwrap_or(false) && self.is_host_up(a) && self.is_host_up(b)
    }

    /// Whether a host is up (unknown hosts count as down).
    pub fn is_host_up(&self, host: HostId) -> bool {
        self.hosts.get(host.0).map(|h| h.up).unwrap_or(false)
    }

    /// Marks a host up or down. Bringing a host **down** models a crash of
    /// the process on that station: every queued delivery *to or from* the
    /// host — including its own timers — is purged and recorded as dropped
    /// with [`DropReason::HostDown`]. Bringing it back up models a standby
    /// process taking over the station: it starts with an empty event queue
    /// and must rebuild its state (e.g. from a snapshot + log replay, as
    /// `dmps-cluster` does).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownHost`] for an unknown id.
    pub fn set_host_up(&mut self, host: HostId, up: bool) -> Result<()> {
        let h = self
            .hosts
            .get_mut(host.0)
            .ok_or(SimError::UnknownHost(host))?;
        let was_up = h.up;
        h.up = up;
        if was_up && !up {
            // Purge in-flight traffic involving the crashed host.
            let queue = std::mem::take(&mut self.queue);
            let now = self.now;
            for q in queue.into_sorted_vec() {
                let d = q.delivery;
                if d.from == host || d.to == host {
                    self.dropped.push(Dropped {
                        at: now,
                        from: d.from,
                        to: d.to,
                        payload: d.payload,
                        reason: DropReason::HostDown,
                    });
                } else {
                    self.queue.push(Queued {
                        at: d.at,
                        seq: d.seq,
                        delivery: d,
                    });
                }
            }
        }
        Ok(())
    }

    /// Convenience alias for [`Network::set_host_up`]`(host, false)`: crashes
    /// a host, purging its in-flight traffic and timers.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownHost`] for an unknown id.
    pub fn crash_host(&mut self, host: HostId) -> Result<()> {
        self.set_host_up(host, false)
    }

    /// The current global simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Sends a message of `size_bytes` from `from` to `to`. Returns the
    /// global sequence number of the send attempt; the message may still be
    /// dropped (recorded in [`Network::dropped`]).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NotConnected`] when the hosts have no link and
    /// [`SimError::UnknownHost`] for unknown ids.
    pub fn send(&mut self, from: HostId, to: HostId, payload: M, size_bytes: u64) -> Result<u64> {
        if from.0 >= self.hosts.len() {
            return Err(SimError::UnknownHost(from));
        }
        if to.0 >= self.hosts.len() {
            return Err(SimError::UnknownHost(to));
        }
        let seq = self.seq;
        self.seq += 1;
        if !self.hosts[from.0].up || !self.hosts[to.0].up {
            self.dropped.push(Dropped {
                at: self.now,
                from,
                to,
                payload,
                reason: DropReason::HostDown,
            });
            return Ok(seq);
        }
        let state = self
            .links
            .get_mut(&Self::key(from, to))
            .ok_or(SimError::NotConnected { from, to })?;
        if !state.link.up {
            self.dropped.push(Dropped {
                at: self.now,
                from,
                to,
                payload,
                reason: DropReason::LinkDown,
            });
            return Ok(seq);
        }
        if state.link.loss_rate > 0.0 && self.rng.gen::<f64>() < state.link.loss_rate {
            self.dropped.push(Dropped {
                at: self.now,
                from,
                to,
                payload,
                reason: DropReason::Loss,
            });
            return Ok(seq);
        }
        let start = (*state.busy_until.get(&from).unwrap_or(&SimTime::ZERO)).max(self.now);
        let transmission = state.link.transmission_delay(size_bytes);
        let serialized_at = start + transmission;
        state.busy_until.insert(from, serialized_at);
        let jitter_nanos = if state.link.jitter.is_zero() {
            0
        } else {
            self.rng.gen_range(0..=state.link.jitter.as_nanos() as u64)
        };
        let arrival =
            serialized_at + state.link.latency + std::time::Duration::from_nanos(jitter_nanos);
        self.queue.push(Queued {
            at: arrival,
            seq,
            delivery: Delivery {
                at: arrival,
                from,
                to,
                payload,
                seq,
            },
        });
        Ok(seq)
    }

    /// Schedules a payload to be delivered back to `host` at an absolute
    /// global time — a timer. Timers are never dropped.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownHost`] for an unknown host and
    /// [`SimError::TimeWentBackwards`] when `at` is in the past.
    pub fn schedule(&mut self, host: HostId, at: SimTime, payload: M) -> Result<u64> {
        if host.0 >= self.hosts.len() {
            return Err(SimError::UnknownHost(host));
        }
        if !self.hosts[host.0].up {
            return Err(SimError::HostDown(host));
        }
        if at < self.now {
            return Err(SimError::TimeWentBackwards);
        }
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Queued {
            at,
            seq,
            delivery: Delivery {
                at,
                from: host,
                to: host,
                payload,
                seq,
            },
        });
        Ok(seq)
    }

    /// The time of the next queued event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek().map(|q| q.at)
    }

    /// Pops the next delivery, advancing global time to its timestamp.
    pub fn next_delivery(&mut self) -> Option<Delivery<M>> {
        let q = self.queue.pop()?;
        debug_assert!(q.at >= self.now, "event queue must be monotone");
        self.now = q.at;
        self.delivered_count += 1;
        Some(q.delivery)
    }

    /// Runs the network until no events remain, collecting every delivery in
    /// timestamp order.
    pub fn run_until_idle(&mut self) -> Vec<Delivery<M>> {
        let mut out = Vec::new();
        while let Some(d) = self.next_delivery() {
            out.push(d);
        }
        out
    }

    /// Advances global time to `t` without processing events scheduled after
    /// `t`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TimeWentBackwards`] when `t` is before the current
    /// time, and refuses (same error) to jump over pending events.
    pub fn advance_to(&mut self, t: SimTime) -> Result<()> {
        if t < self.now {
            return Err(SimError::TimeWentBackwards);
        }
        if let Some(next) = self.peek_time() {
            if next < t {
                return Err(SimError::TimeWentBackwards);
            }
        }
        self.now = t;
        Ok(())
    }

    /// Messages dropped so far.
    pub fn dropped(&self) -> &[Dropped<M>] {
        &self.dropped
    }

    /// Number of messages delivered so far.
    pub fn delivered_count(&self) -> u64 {
        self.delivered_count
    }

    /// Number of send attempts so far (delivered + in flight + dropped).
    pub fn send_count(&self) -> u64 {
        self.seq
    }

    /// Number of events still queued.
    pub fn pending_count(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn two_host_net(link: Link) -> (Network<u32>, HostId, HostId) {
        let mut net = Network::new(7);
        let a = net.add_host("a");
        let b = net.add_host("b");
        net.connect(a, b, link).unwrap();
        (net, a, b)
    }

    #[test]
    fn message_arrives_after_latency_and_transmission() {
        let link = Link {
            latency: Duration::from_millis(10),
            jitter: Duration::ZERO,
            bandwidth_kbps: 8, // 1 kB/s
            loss_rate: 0.0,
            up: true,
        };
        let (mut net, a, b) = two_host_net(link);
        net.send(a, b, 1, 1_000).unwrap(); // 1 s transmission
        let d = net.next_delivery().unwrap();
        assert_eq!(d.to, b);
        assert_eq!(d.at, SimTime::from_millis(1_010));
        assert_eq!(net.now(), d.at);
    }

    #[test]
    fn queueing_serializes_back_to_back_sends() {
        let link = Link {
            latency: Duration::from_millis(5),
            jitter: Duration::ZERO,
            bandwidth_kbps: 8,
            loss_rate: 0.0,
            up: true,
        };
        let (mut net, a, b) = two_host_net(link);
        net.send(a, b, 1, 1_000).unwrap();
        net.send(a, b, 2, 1_000).unwrap();
        let d1 = net.next_delivery().unwrap();
        let d2 = net.next_delivery().unwrap();
        assert_eq!(d1.at, SimTime::from_millis(1_005));
        assert_eq!(
            d2.at,
            SimTime::from_millis(2_005),
            "second message queues behind the first"
        );
        assert_eq!(d1.payload, 1);
        assert_eq!(d2.payload, 2);
    }

    #[test]
    fn deliveries_come_out_in_time_order() {
        let (mut net, a, b) = two_host_net(Link::lan());
        for i in 0..50u32 {
            net.send(a, b, i, 100).unwrap();
        }
        let deliveries = net.run_until_idle();
        assert_eq!(deliveries.len(), 50);
        for pair in deliveries.windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
    }

    #[test]
    fn same_seed_is_deterministic() {
        let run = |seed: u64| -> Vec<(u64, u32)> {
            let mut net = Network::new(seed);
            let a = net.add_host("a");
            let b = net.add_host("b");
            net.connect(a, b, Link::wan()).unwrap();
            for i in 0..200u32 {
                net.send(a, b, i, 500).unwrap();
            }
            net.run_until_idle()
                .into_iter()
                .map(|d| (d.at.as_nanos(), d.payload))
                .collect()
        };
        assert_eq!(run(99), run(99));
        assert_ne!(run(99), run(100), "different seeds should differ (jitter)");
    }

    #[test]
    fn down_link_drops_messages() {
        let (mut net, a, b) = two_host_net(Link::lan());
        net.set_link_up(a, b, false).unwrap();
        assert!(!net.is_reachable(a, b));
        net.send(a, b, 42, 10).unwrap();
        assert!(net.next_delivery().is_none());
        assert_eq!(net.dropped().len(), 1);
        assert_eq!(net.dropped()[0].reason, DropReason::LinkDown);
        net.set_link_up(a, b, true).unwrap();
        assert!(net.is_reachable(a, b));
    }

    #[test]
    fn lossy_link_drops_roughly_at_rate() {
        let link = Link::lan().with_loss_rate(0.5);
        let (mut net, a, b) = two_host_net(link);
        for i in 0..1_000u32 {
            net.send(a, b, i, 10).unwrap();
        }
        let delivered = net.run_until_idle().len();
        let dropped = net.dropped().len();
        assert_eq!(delivered + dropped, 1_000);
        assert!(
            (300..700).contains(&dropped),
            "dropped {dropped} of 1000 at 50% loss"
        );
        assert!(net.dropped().iter().all(|d| d.reason == DropReason::Loss));
    }

    #[test]
    fn unconnected_hosts_cannot_send() {
        let mut net: Network<u8> = Network::new(1);
        let a = net.add_host("a");
        let b = net.add_host("b");
        assert_eq!(
            net.send(a, b, 0, 1).unwrap_err(),
            SimError::NotConnected { from: a, to: b }
        );
        assert!(net.link(a, b).is_none());
    }

    #[test]
    fn self_link_and_unknown_host_rejected() {
        let mut net: Network<u8> = Network::new(1);
        let a = net.add_host("a");
        assert_eq!(
            net.connect(a, a, Link::lan()).unwrap_err(),
            SimError::SelfLink(a)
        );
        assert!(net.connect(a, HostId(5), Link::lan()).is_err());
        assert!(net.host_name(HostId(5)).is_err());
        assert_eq!(net.host_name(a).unwrap(), "a");
    }

    #[test]
    fn timers_fire_at_the_requested_time() {
        let mut net: Network<&str> = Network::new(1);
        let a = net.add_host("a");
        net.schedule(a, SimTime::from_secs(5), "tick").unwrap();
        net.schedule(a, SimTime::from_secs(2), "early").unwrap();
        let d1 = net.next_delivery().unwrap();
        assert_eq!(d1.payload, "early");
        assert_eq!(d1.at, SimTime::from_secs(2));
        let d2 = net.next_delivery().unwrap();
        assert_eq!(d2.payload, "tick");
        assert_eq!(net.now(), SimTime::from_secs(5));
        // Scheduling in the past is rejected.
        assert_eq!(
            net.schedule(a, SimTime::from_secs(1), "late").unwrap_err(),
            SimError::TimeWentBackwards
        );
    }

    #[test]
    fn advance_to_moves_time_but_not_over_events() {
        let mut net: Network<&str> = Network::new(1);
        let a = net.add_host("a");
        net.advance_to(SimTime::from_secs(1)).unwrap();
        assert_eq!(net.now(), SimTime::from_secs(1));
        assert!(net.advance_to(SimTime::from_millis(500)).is_err());
        net.schedule(a, SimTime::from_secs(3), "t").unwrap();
        assert!(net.advance_to(SimTime::from_secs(10)).is_err());
        net.advance_to(SimTime::from_secs(2)).unwrap();
    }

    #[test]
    fn drifting_clock_reports_local_time() {
        let mut net: Network<&str> = Network::new(1);
        let a = net.add_host_with_clock("a", LocalClock::new(1_000.0, 0));
        let b = net.add_host("b");
        net.connect(a, b, Link::lan()).unwrap();
        net.schedule(a, SimTime::from_secs(100), "t").unwrap();
        net.next_delivery();
        let local = net.local_time(a).unwrap();
        assert!(local > net.now());
        assert_eq!(net.local_time(b).unwrap(), net.now());
        assert!(net.local_time(HostId(9)).is_err());
    }

    #[test]
    fn crashed_host_drops_traffic_and_timers() {
        let (mut net, a, b) = two_host_net(Link::lan());
        net.send(a, b, 1, 10).unwrap();
        net.schedule(b, SimTime::from_secs(5), 99).unwrap();
        assert_eq!(net.pending_count(), 2);
        net.crash_host(b).unwrap();
        assert!(!net.is_host_up(b));
        assert!(!net.is_reachable(a, b));
        assert_eq!(net.pending_count(), 0, "in-flight traffic purged");
        assert_eq!(net.dropped().len(), 2);
        assert!(net
            .dropped()
            .iter()
            .all(|d| d.reason == DropReason::HostDown));
        // Sends to a crashed host are dropped, its own timers are refused.
        net.send(a, b, 2, 10).unwrap();
        assert_eq!(net.dropped().len(), 3);
        assert_eq!(
            net.schedule(b, SimTime::from_secs(9), 1).unwrap_err(),
            SimError::HostDown(b)
        );
        // Recovery: the standby host starts clean and is reachable again.
        net.set_host_up(b, true).unwrap();
        assert!(net.is_reachable(a, b));
        net.send(a, b, 3, 10).unwrap();
        assert_eq!(net.run_until_idle().len(), 1);
    }

    #[test]
    fn counters_track_activity() {
        let (mut net, a, b) = two_host_net(Link::lan());
        net.send(a, b, 1, 10).unwrap();
        net.send(a, b, 2, 10).unwrap();
        assert_eq!(net.send_count(), 2);
        assert_eq!(net.pending_count(), 2);
        net.run_until_idle();
        assert_eq!(net.delivered_count(), 2);
        assert_eq!(net.pending_count(), 0);
        assert_eq!(net.host_count(), 2);
    }
}
