//! The discrete-event network: hosts, links, message delivery and drops.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::fmt;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::clock::LocalClock;
use crate::error::{Result, SimError};
use crate::link::Link;
use crate::time::SimTime;

/// Identifier of a simulated host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HostId(pub usize);

impl HostId {
    /// The dense index of the host.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// A message delivered to a host.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Delivery<M> {
    /// Global simulation time of the delivery.
    pub at: SimTime,
    /// Sending host (equal to `to` for self-scheduled timers).
    pub from: HostId,
    /// Receiving host.
    pub to: HostId,
    /// The payload.
    pub payload: M,
    /// Monotonically increasing send sequence number (global).
    pub seq: u64,
}

/// Why a message was not delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropReason {
    /// Random loss on the link.
    Loss,
    /// The link was administratively down (Figure 3c red light).
    LinkDown,
    /// The sending or receiving host was down (crashed).
    HostDown,
    /// A network partition blocked the directed edge between the hosts.
    Partitioned,
}

/// A linearly interpolated extra-delay ramp injected on one *directed* link
/// edge — the "gray failure" primitive: a link that is not down, just slowly
/// getting worse (or better).
///
/// Before `start` the ramp is inert. At `start` it adds `from_extra` to every
/// message's one-way delay, interpolating linearly to `to_extra` over
/// `duration` and holding `to_extra` afterwards until cleared. `jitter` is an
/// additional uniformly-random delay bound that scales with the same ramp
/// progress, so a degrading link also gets noisier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DelayRamp {
    /// Global time the ramp switches on.
    pub start: SimTime,
    /// Time taken to interpolate from `from_extra` to `to_extra`. Zero means
    /// a step change at `start`.
    pub duration: Duration,
    /// Extra one-way delay at `start`.
    pub from_extra: Duration,
    /// Extra one-way delay once the ramp completes (held until cleared).
    pub to_extra: Duration,
    /// Upper bound of the extra uniform jitter at full ramp progress.
    pub jitter: Duration,
}

impl DelayRamp {
    /// A constant extra delay switching on at `start` (no slope, no jitter).
    pub fn step(start: SimTime, extra: Duration) -> Self {
        DelayRamp {
            start,
            duration: Duration::ZERO,
            from_extra: extra,
            to_extra: extra,
            jitter: Duration::ZERO,
        }
    }

    /// Ramp progress in `[0, 1]` at global time `now`.
    fn progress(&self, now: SimTime) -> f64 {
        if now < self.start {
            return 0.0;
        }
        if self.duration.is_zero() {
            return 1.0;
        }
        let elapsed = (now - self.start).as_nanos() as f64;
        (elapsed / self.duration.as_nanos() as f64).min(1.0)
    }

    /// The deterministic extra delay injected at global time `now` (zero
    /// before `start`).
    pub fn extra_delay_at(&self, now: SimTime) -> Duration {
        if now < self.start {
            return Duration::ZERO;
        }
        let p = self.progress(now);
        let from = self.from_extra.as_nanos() as f64;
        let to = self.to_extra.as_nanos() as f64;
        Duration::from_nanos((from + (to - from) * p).max(0.0) as u64)
    }

    /// The extra jitter bound at global time `now` (zero before `start`).
    pub fn jitter_bound_at(&self, now: SimTime) -> Duration {
        if now < self.start {
            return Duration::ZERO;
        }
        Duration::from_nanos((self.jitter.as_nanos() as f64 * self.progress(now)) as u64)
    }
}

impl dmps_wire::Wire for HostId {
    fn encode(&self, w: &mut dmps_wire::Writer) {
        self.0.encode(w);
    }

    fn decode(r: &mut dmps_wire::Reader<'_>) -> dmps_wire::Result<Self> {
        Ok(HostId(usize::decode(r)?))
    }
}

/// A message that was dropped instead of delivered.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dropped<M> {
    /// Global simulation time of the send attempt.
    pub at: SimTime,
    /// Sending host.
    pub from: HostId,
    /// Intended receiver.
    pub to: HostId,
    /// The payload that was lost.
    pub payload: M,
    /// Why it was dropped.
    pub reason: DropReason,
}

#[derive(Debug)]
struct Host {
    name: String,
    clock: LocalClock,
    up: bool,
}

#[derive(Debug)]
struct LinkState {
    link: Link,
    /// The earliest time the link can start serializing the next message in
    /// each direction, keyed by the sending side.
    busy_until: HashMap<HostId, SimTime>,
}

#[derive(Debug)]
struct Queued<M> {
    at: SimTime,
    seq: u64,
    delivery: Delivery<M>,
}

impl<M> PartialEq for Queued<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Queued<M> {}
impl<M> PartialOrd for Queued<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Queued<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: reverse so the earliest event pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A deterministic discrete-event network connecting hosts with links.
///
/// All randomness (jitter, loss) comes from a single seeded RNG, so two runs
/// with the same seed and the same sequence of calls produce identical
/// deliveries — the property every experiment in `EXPERIMENTS.md` relies on.
#[derive(Debug)]
pub struct Network<M> {
    now: SimTime,
    hosts: Vec<Host>,
    links: HashMap<(HostId, HostId), LinkState>,
    /// Directed edges currently severed by a partition. Blocking is checked
    /// at send time only: messages already in flight when the partition
    /// starts still arrive, like packets already on the wire.
    blocked: HashSet<(HostId, HostId)>,
    /// Injected gray-failure delay ramps, keyed by directed edge.
    ramps: HashMap<(HostId, HostId), DelayRamp>,
    queue: BinaryHeap<Queued<M>>,
    rng: StdRng,
    seq: u64,
    dropped: Vec<Dropped<M>>,
    delivered_count: u64,
}

impl<M> Network<M> {
    /// Creates an empty network with a deterministic RNG seed.
    pub fn new(seed: u64) -> Self {
        Network {
            now: SimTime::ZERO,
            hosts: Vec::new(),
            links: HashMap::new(),
            blocked: HashSet::new(),
            ramps: HashMap::new(),
            queue: BinaryHeap::new(),
            rng: StdRng::seed_from_u64(seed),
            seq: 0,
            dropped: Vec::new(),
            delivered_count: 0,
        }
    }

    /// Adds a host with a perfect local clock.
    pub fn add_host(&mut self, name: impl Into<String>) -> HostId {
        self.hosts.push(Host {
            name: name.into(),
            clock: LocalClock::perfect(),
            up: true,
        });
        HostId(self.hosts.len() - 1)
    }

    /// Adds a host with the given local clock.
    pub fn add_host_with_clock(&mut self, name: impl Into<String>, clock: LocalClock) -> HostId {
        let id = self.add_host(name);
        self.hosts[id.0].clock = clock;
        id
    }

    /// Number of hosts.
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// The name of a host.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownHost`] for an unknown id.
    pub fn host_name(&self, id: HostId) -> Result<&str> {
        self.hosts
            .get(id.0)
            .map(|h| h.name.as_str())
            .ok_or(SimError::UnknownHost(id))
    }

    /// The local clock of a host.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownHost`] for an unknown id.
    pub fn clock(&self, id: HostId) -> Result<&LocalClock> {
        self.hosts
            .get(id.0)
            .map(|h| &h.clock)
            .ok_or(SimError::UnknownHost(id))
    }

    /// Mutable access to the local clock of a host (used by the global-clock
    /// synchronization client to slew its offset).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownHost`] for an unknown id.
    pub fn clock_mut(&mut self, id: HostId) -> Result<&mut LocalClock> {
        self.hosts
            .get_mut(id.0)
            .map(|h| &mut h.clock)
            .ok_or(SimError::UnknownHost(id))
    }

    /// The local time a host's clock currently shows.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownHost`] for an unknown id.
    pub fn local_time(&self, id: HostId) -> Result<SimTime> {
        Ok(self.clock(id)?.local_at(self.now))
    }

    /// Connects two hosts with a link (bidirectional).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SelfLink`] when `a == b`,
    /// [`SimError::UnknownHost`] for unknown ids, and
    /// [`SimError::InvalidLink`] when the link fails validation.
    pub fn connect(&mut self, a: HostId, b: HostId, link: Link) -> Result<()> {
        if a == b {
            return Err(SimError::SelfLink(a));
        }
        if a.0 >= self.hosts.len() {
            return Err(SimError::UnknownHost(a));
        }
        if b.0 >= self.hosts.len() {
            return Err(SimError::UnknownHost(b));
        }
        link.validate()?;
        self.links.insert(
            Self::key(a, b),
            LinkState {
                link,
                busy_until: HashMap::new(),
            },
        );
        Ok(())
    }

    fn key(a: HostId, b: HostId) -> (HostId, HostId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// The link between two hosts, if any.
    pub fn link(&self, a: HostId, b: HostId) -> Option<&Link> {
        self.links.get(&Self::key(a, b)).map(|s| &s.link)
    }

    /// Marks the link between two hosts up or down.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NotConnected`] when no link exists.
    pub fn set_link_up(&mut self, a: HostId, b: HostId, up: bool) -> Result<()> {
        let state = self
            .links
            .get_mut(&Self::key(a, b))
            .ok_or(SimError::NotConnected { from: a, to: b })?;
        state.link.up = up;
        Ok(())
    }

    /// Severs the network between two host sets: every message from a host
    /// in `side_a` to a host in `side_b` is dropped at send time with
    /// [`DropReason::Partitioned`] — and vice versa, unless `asymmetric` is
    /// set, in which case `side_b → side_a` traffic still flows (the
    /// one-way-visibility gray failure). Messages already in flight are not
    /// purged: packets on the wire when the cable is cut still arrive.
    ///
    /// Sets may be arbitrary (they need not cover all hosts, and repeated
    /// calls accumulate edges); a host appearing on both sides never blocks
    /// itself. [`Network::heal`] removes every blocked edge.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownHost`] when either set names an unknown
    /// host (no edges are blocked in that case).
    pub fn partition(
        &mut self,
        side_a: &[HostId],
        side_b: &[HostId],
        asymmetric: bool,
    ) -> Result<()> {
        for &h in side_a.iter().chain(side_b) {
            if h.0 >= self.hosts.len() {
                return Err(SimError::UnknownHost(h));
            }
        }
        for &a in side_a {
            for &b in side_b {
                if a == b {
                    continue;
                }
                self.blocked.insert((a, b));
                if !asymmetric {
                    self.blocked.insert((b, a));
                }
            }
        }
        Ok(())
    }

    /// Heals every partition: all blocked edges are removed. Injected delay
    /// ramps are independent — clear those with
    /// [`Network::clear_delay_ramps`].
    pub fn heal(&mut self) {
        self.blocked.clear();
    }

    /// Whether a partition currently blocks the directed edge `from → to`.
    pub fn is_partitioned(&self, from: HostId, to: HostId) -> bool {
        self.blocked.contains(&(from, to))
    }

    /// Number of directed edges currently blocked by partitions.
    pub fn partitioned_edge_count(&self) -> usize {
        self.blocked.len()
    }

    /// Injects (or replaces) a gray-failure delay ramp on the directed edge
    /// `from → to`. The ramp's extra delay and jitter are added on top of
    /// the link's own latency for messages sent while the ramp is active.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownHost`] for unknown ids and
    /// [`SimError::NotConnected`] when the hosts have no link.
    pub fn inject_delay_ramp(&mut self, from: HostId, to: HostId, ramp: DelayRamp) -> Result<()> {
        if from.0 >= self.hosts.len() {
            return Err(SimError::UnknownHost(from));
        }
        if to.0 >= self.hosts.len() {
            return Err(SimError::UnknownHost(to));
        }
        if !self.links.contains_key(&Self::key(from, to)) {
            return Err(SimError::NotConnected { from, to });
        }
        self.ramps.insert((from, to), ramp);
        Ok(())
    }

    /// Removes the delay ramp on the directed edge `from → to`, if any.
    pub fn clear_delay_ramp(&mut self, from: HostId, to: HostId) {
        self.ramps.remove(&(from, to));
    }

    /// Removes every injected delay ramp.
    pub fn clear_delay_ramps(&mut self) {
        self.ramps.clear();
    }

    /// The delay ramp injected on the directed edge `from → to`, if any.
    pub fn delay_ramp(&self, from: HostId, to: HostId) -> Option<&DelayRamp> {
        self.ramps.get(&(from, to))
    }

    /// Whether two hosts are connected, the link is up, both hosts are up,
    /// and no partition blocks the directed edge `a → b`.
    pub fn is_reachable(&self, a: HostId, b: HostId) -> bool {
        self.link(a, b).map(|l| l.up).unwrap_or(false)
            && self.is_host_up(a)
            && self.is_host_up(b)
            && !self.blocked.contains(&(a, b))
    }

    /// Whether a host is up (unknown hosts count as down).
    pub fn is_host_up(&self, host: HostId) -> bool {
        self.hosts.get(host.0).map(|h| h.up).unwrap_or(false)
    }

    /// Marks a host up or down. Bringing a host **down** models a crash of
    /// the process on that station: every queued delivery *to or from* the
    /// host — including its own timers — is purged and recorded as dropped
    /// with [`DropReason::HostDown`]. Bringing it back up models a standby
    /// process taking over the station: it starts with an empty event queue
    /// and must rebuild its state (e.g. from a snapshot + log replay, as
    /// `dmps-cluster` does).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownHost`] for an unknown id.
    pub fn set_host_up(&mut self, host: HostId, up: bool) -> Result<()> {
        let h = self
            .hosts
            .get_mut(host.0)
            .ok_or(SimError::UnknownHost(host))?;
        let was_up = h.up;
        h.up = up;
        if was_up && !up {
            // Purge in-flight traffic involving the crashed host.
            let queue = std::mem::take(&mut self.queue);
            let now = self.now;
            for q in queue.into_sorted_vec() {
                let d = q.delivery;
                if d.from == host || d.to == host {
                    self.dropped.push(Dropped {
                        at: now,
                        from: d.from,
                        to: d.to,
                        payload: d.payload,
                        reason: DropReason::HostDown,
                    });
                } else {
                    self.queue.push(Queued {
                        at: d.at,
                        seq: d.seq,
                        delivery: d,
                    });
                }
            }
        }
        Ok(())
    }

    /// Convenience alias for [`Network::set_host_up`]`(host, false)`: crashes
    /// a host, purging its in-flight traffic and timers.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownHost`] for an unknown id.
    pub fn crash_host(&mut self, host: HostId) -> Result<()> {
        self.set_host_up(host, false)
    }

    /// The current global simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Sends a message of `size_bytes` from `from` to `to`. Returns the
    /// global sequence number of the send attempt; the message may still be
    /// dropped (recorded in [`Network::dropped`]).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NotConnected`] when the hosts have no link and
    /// [`SimError::UnknownHost`] for unknown ids.
    pub fn send(&mut self, from: HostId, to: HostId, payload: M, size_bytes: u64) -> Result<u64> {
        if from.0 >= self.hosts.len() {
            return Err(SimError::UnknownHost(from));
        }
        if to.0 >= self.hosts.len() {
            return Err(SimError::UnknownHost(to));
        }
        let seq = self.seq;
        self.seq += 1;
        if !self.hosts[from.0].up || !self.hosts[to.0].up {
            self.dropped.push(Dropped {
                at: self.now,
                from,
                to,
                payload,
                reason: DropReason::HostDown,
            });
            return Ok(seq);
        }
        let state = self
            .links
            .get_mut(&Self::key(from, to))
            .ok_or(SimError::NotConnected { from, to })?;
        if !state.link.up {
            self.dropped.push(Dropped {
                at: self.now,
                from,
                to,
                payload,
                reason: DropReason::LinkDown,
            });
            return Ok(seq);
        }
        if self.blocked.contains(&(from, to)) {
            self.dropped.push(Dropped {
                at: self.now,
                from,
                to,
                payload,
                reason: DropReason::Partitioned,
            });
            return Ok(seq);
        }
        if state.link.loss_rate > 0.0 && self.rng.gen::<f64>() < state.link.loss_rate {
            self.dropped.push(Dropped {
                at: self.now,
                from,
                to,
                payload,
                reason: DropReason::Loss,
            });
            return Ok(seq);
        }
        let start = (*state.busy_until.get(&from).unwrap_or(&SimTime::ZERO)).max(self.now);
        let transmission = state.link.transmission_delay(size_bytes);
        let serialized_at = start + transmission;
        state.busy_until.insert(from, serialized_at);
        let jitter_nanos = if state.link.jitter.is_zero() {
            0
        } else {
            self.rng.gen_range(0..=state.link.jitter.as_nanos() as u64)
        };
        let mut arrival =
            serialized_at + state.link.latency + std::time::Duration::from_nanos(jitter_nanos);
        if let Some(ramp) = self.ramps.get(&(from, to)) {
            arrival += ramp.extra_delay_at(self.now);
            let bound = ramp.jitter_bound_at(self.now);
            if !bound.is_zero() {
                let extra_jitter = self.rng.gen_range(0..=bound.as_nanos() as u64);
                arrival += std::time::Duration::from_nanos(extra_jitter);
            }
        }
        self.queue.push(Queued {
            at: arrival,
            seq,
            delivery: Delivery {
                at: arrival,
                from,
                to,
                payload,
                seq,
            },
        });
        Ok(seq)
    }

    /// Schedules a payload to be delivered back to `host` at an absolute
    /// global time — a timer. Timers are never dropped.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownHost`] for an unknown host and
    /// [`SimError::TimeWentBackwards`] when `at` is in the past.
    pub fn schedule(&mut self, host: HostId, at: SimTime, payload: M) -> Result<u64> {
        if host.0 >= self.hosts.len() {
            return Err(SimError::UnknownHost(host));
        }
        if !self.hosts[host.0].up {
            return Err(SimError::HostDown(host));
        }
        if at < self.now {
            return Err(SimError::TimeWentBackwards);
        }
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Queued {
            at,
            seq,
            delivery: Delivery {
                at,
                from: host,
                to: host,
                payload,
                seq,
            },
        });
        Ok(seq)
    }

    /// The time of the next queued event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek().map(|q| q.at)
    }

    /// Pops the next delivery, advancing global time to its timestamp.
    pub fn next_delivery(&mut self) -> Option<Delivery<M>> {
        let q = self.queue.pop()?;
        debug_assert!(q.at >= self.now, "event queue must be monotone");
        self.now = q.at;
        self.delivered_count += 1;
        Some(q.delivery)
    }

    /// Runs the network until no events remain, collecting every delivery in
    /// timestamp order.
    pub fn run_until_idle(&mut self) -> Vec<Delivery<M>> {
        let mut out = Vec::new();
        while let Some(d) = self.next_delivery() {
            out.push(d);
        }
        out
    }

    /// Advances global time to `t` without processing events scheduled after
    /// `t`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TimeWentBackwards`] when `t` is before the current
    /// time, and refuses (same error) to jump over pending events.
    pub fn advance_to(&mut self, t: SimTime) -> Result<()> {
        if t < self.now {
            return Err(SimError::TimeWentBackwards);
        }
        if let Some(next) = self.peek_time() {
            if next < t {
                return Err(SimError::TimeWentBackwards);
            }
        }
        self.now = t;
        Ok(())
    }

    /// Messages dropped so far.
    pub fn dropped(&self) -> &[Dropped<M>] {
        &self.dropped
    }

    /// Number of messages delivered so far.
    pub fn delivered_count(&self) -> u64 {
        self.delivered_count
    }

    /// Number of send attempts so far (delivered + in flight + dropped).
    pub fn send_count(&self) -> u64 {
        self.seq
    }

    /// Number of events still queued.
    pub fn pending_count(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn two_host_net(link: Link) -> (Network<u32>, HostId, HostId) {
        let mut net = Network::new(7);
        let a = net.add_host("a");
        let b = net.add_host("b");
        net.connect(a, b, link).unwrap();
        (net, a, b)
    }

    #[test]
    fn message_arrives_after_latency_and_transmission() {
        let link = Link {
            latency: Duration::from_millis(10),
            jitter: Duration::ZERO,
            bandwidth_kbps: 8, // 1 kB/s
            loss_rate: 0.0,
            up: true,
        };
        let (mut net, a, b) = two_host_net(link);
        net.send(a, b, 1, 1_000).unwrap(); // 1 s transmission
        let d = net.next_delivery().unwrap();
        assert_eq!(d.to, b);
        assert_eq!(d.at, SimTime::from_millis(1_010));
        assert_eq!(net.now(), d.at);
    }

    #[test]
    fn queueing_serializes_back_to_back_sends() {
        let link = Link {
            latency: Duration::from_millis(5),
            jitter: Duration::ZERO,
            bandwidth_kbps: 8,
            loss_rate: 0.0,
            up: true,
        };
        let (mut net, a, b) = two_host_net(link);
        net.send(a, b, 1, 1_000).unwrap();
        net.send(a, b, 2, 1_000).unwrap();
        let d1 = net.next_delivery().unwrap();
        let d2 = net.next_delivery().unwrap();
        assert_eq!(d1.at, SimTime::from_millis(1_005));
        assert_eq!(
            d2.at,
            SimTime::from_millis(2_005),
            "second message queues behind the first"
        );
        assert_eq!(d1.payload, 1);
        assert_eq!(d2.payload, 2);
    }

    #[test]
    fn deliveries_come_out_in_time_order() {
        let (mut net, a, b) = two_host_net(Link::lan());
        for i in 0..50u32 {
            net.send(a, b, i, 100).unwrap();
        }
        let deliveries = net.run_until_idle();
        assert_eq!(deliveries.len(), 50);
        for pair in deliveries.windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
    }

    #[test]
    fn same_seed_is_deterministic() {
        let run = |seed: u64| -> Vec<(u64, u32)> {
            let mut net = Network::new(seed);
            let a = net.add_host("a");
            let b = net.add_host("b");
            net.connect(a, b, Link::wan()).unwrap();
            for i in 0..200u32 {
                net.send(a, b, i, 500).unwrap();
            }
            net.run_until_idle()
                .into_iter()
                .map(|d| (d.at.as_nanos(), d.payload))
                .collect()
        };
        assert_eq!(run(99), run(99));
        assert_ne!(run(99), run(100), "different seeds should differ (jitter)");
    }

    #[test]
    fn down_link_drops_messages() {
        let (mut net, a, b) = two_host_net(Link::lan());
        net.set_link_up(a, b, false).unwrap();
        assert!(!net.is_reachable(a, b));
        net.send(a, b, 42, 10).unwrap();
        assert!(net.next_delivery().is_none());
        assert_eq!(net.dropped().len(), 1);
        assert_eq!(net.dropped()[0].reason, DropReason::LinkDown);
        net.set_link_up(a, b, true).unwrap();
        assert!(net.is_reachable(a, b));
    }

    #[test]
    fn lossy_link_drops_roughly_at_rate() {
        let link = Link::lan().with_loss_rate(0.5);
        let (mut net, a, b) = two_host_net(link);
        for i in 0..1_000u32 {
            net.send(a, b, i, 10).unwrap();
        }
        let delivered = net.run_until_idle().len();
        let dropped = net.dropped().len();
        assert_eq!(delivered + dropped, 1_000);
        assert!(
            (300..700).contains(&dropped),
            "dropped {dropped} of 1000 at 50% loss"
        );
        assert!(net.dropped().iter().all(|d| d.reason == DropReason::Loss));
    }

    #[test]
    fn unconnected_hosts_cannot_send() {
        let mut net: Network<u8> = Network::new(1);
        let a = net.add_host("a");
        let b = net.add_host("b");
        assert_eq!(
            net.send(a, b, 0, 1).unwrap_err(),
            SimError::NotConnected { from: a, to: b }
        );
        assert!(net.link(a, b).is_none());
    }

    #[test]
    fn self_link_and_unknown_host_rejected() {
        let mut net: Network<u8> = Network::new(1);
        let a = net.add_host("a");
        assert_eq!(
            net.connect(a, a, Link::lan()).unwrap_err(),
            SimError::SelfLink(a)
        );
        assert!(net.connect(a, HostId(5), Link::lan()).is_err());
        assert!(net.host_name(HostId(5)).is_err());
        assert_eq!(net.host_name(a).unwrap(), "a");
    }

    #[test]
    fn timers_fire_at_the_requested_time() {
        let mut net: Network<&str> = Network::new(1);
        let a = net.add_host("a");
        net.schedule(a, SimTime::from_secs(5), "tick").unwrap();
        net.schedule(a, SimTime::from_secs(2), "early").unwrap();
        let d1 = net.next_delivery().unwrap();
        assert_eq!(d1.payload, "early");
        assert_eq!(d1.at, SimTime::from_secs(2));
        let d2 = net.next_delivery().unwrap();
        assert_eq!(d2.payload, "tick");
        assert_eq!(net.now(), SimTime::from_secs(5));
        // Scheduling in the past is rejected.
        assert_eq!(
            net.schedule(a, SimTime::from_secs(1), "late").unwrap_err(),
            SimError::TimeWentBackwards
        );
    }

    #[test]
    fn advance_to_moves_time_but_not_over_events() {
        let mut net: Network<&str> = Network::new(1);
        let a = net.add_host("a");
        net.advance_to(SimTime::from_secs(1)).unwrap();
        assert_eq!(net.now(), SimTime::from_secs(1));
        assert!(net.advance_to(SimTime::from_millis(500)).is_err());
        net.schedule(a, SimTime::from_secs(3), "t").unwrap();
        assert!(net.advance_to(SimTime::from_secs(10)).is_err());
        net.advance_to(SimTime::from_secs(2)).unwrap();
    }

    #[test]
    fn drifting_clock_reports_local_time() {
        let mut net: Network<&str> = Network::new(1);
        let a = net.add_host_with_clock("a", LocalClock::new(1_000.0, 0));
        let b = net.add_host("b");
        net.connect(a, b, Link::lan()).unwrap();
        net.schedule(a, SimTime::from_secs(100), "t").unwrap();
        net.next_delivery();
        let local = net.local_time(a).unwrap();
        assert!(local > net.now());
        assert_eq!(net.local_time(b).unwrap(), net.now());
        assert!(net.local_time(HostId(9)).is_err());
    }

    #[test]
    fn crashed_host_drops_traffic_and_timers() {
        let (mut net, a, b) = two_host_net(Link::lan());
        net.send(a, b, 1, 10).unwrap();
        net.schedule(b, SimTime::from_secs(5), 99).unwrap();
        assert_eq!(net.pending_count(), 2);
        net.crash_host(b).unwrap();
        assert!(!net.is_host_up(b));
        assert!(!net.is_reachable(a, b));
        assert_eq!(net.pending_count(), 0, "in-flight traffic purged");
        assert_eq!(net.dropped().len(), 2);
        assert!(net
            .dropped()
            .iter()
            .all(|d| d.reason == DropReason::HostDown));
        // Sends to a crashed host are dropped, its own timers are refused.
        net.send(a, b, 2, 10).unwrap();
        assert_eq!(net.dropped().len(), 3);
        assert_eq!(
            net.schedule(b, SimTime::from_secs(9), 1).unwrap_err(),
            SimError::HostDown(b)
        );
        // Recovery: the standby host starts clean and is reachable again.
        net.set_host_up(b, true).unwrap();
        assert!(net.is_reachable(a, b));
        net.send(a, b, 3, 10).unwrap();
        assert_eq!(net.run_until_idle().len(), 1);
    }

    #[test]
    fn partition_blocks_new_sends_but_not_in_flight_traffic() {
        let mut net: Network<u32> = Network::new(11);
        let a = net.add_host("a");
        let b = net.add_host("b");
        let c = net.add_host("c");
        net.connect(a, b, Link::lan()).unwrap();
        net.connect(a, c, Link::lan()).unwrap();
        net.connect(b, c, Link::lan()).unwrap();
        // A message already on the wire when the cable is cut still arrives.
        net.send(a, b, 1, 10).unwrap();
        net.partition(&[a], &[b], false).unwrap();
        assert!(net.is_partitioned(a, b));
        assert!(net.is_partitioned(b, a));
        assert!(!net.is_reachable(a, b));
        assert_eq!(net.partitioned_edge_count(), 2);
        net.send(a, b, 2, 10).unwrap();
        net.send(b, a, 3, 10).unwrap();
        // Edges outside the partition are untouched.
        net.send(a, c, 4, 10).unwrap();
        net.send(c, b, 5, 10).unwrap();
        let delivered: Vec<u32> = net.run_until_idle().iter().map(|d| d.payload).collect();
        assert_eq!(delivered.len(), 3);
        assert!(delivered.contains(&1), "in-flight message survives the cut");
        assert!(delivered.contains(&4));
        assert!(delivered.contains(&5));
        assert_eq!(net.dropped().len(), 2);
        assert!(net
            .dropped()
            .iter()
            .all(|d| d.reason == DropReason::Partitioned));
        net.heal();
        assert_eq!(net.partitioned_edge_count(), 0);
        assert!(net.is_reachable(a, b));
        net.send(a, b, 6, 10).unwrap();
        assert_eq!(net.run_until_idle().len(), 1);
    }

    #[test]
    fn asymmetric_partition_blocks_one_direction_only() {
        let (mut net, a, b) = two_host_net(Link::lan());
        net.partition(&[a], &[b], true).unwrap();
        assert!(net.is_partitioned(a, b));
        assert!(!net.is_partitioned(b, a));
        assert!(!net.is_reachable(a, b));
        assert!(net.is_reachable(b, a));
        net.send(a, b, 1, 10).unwrap();
        net.send(b, a, 2, 10).unwrap();
        let delivered = net.run_until_idle();
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].payload, 2, "reverse direction still flows");
        assert_eq!(net.dropped().len(), 1);
        assert_eq!(net.dropped()[0].reason, DropReason::Partitioned);
    }

    #[test]
    fn partition_validates_hosts_and_ignores_self_edges() {
        let (mut net, a, b) = two_host_net(Link::lan());
        assert_eq!(
            net.partition(&[a], &[HostId(9)], false).unwrap_err(),
            SimError::UnknownHost(HostId(9))
        );
        assert_eq!(
            net.partitioned_edge_count(),
            0,
            "failed call blocks nothing"
        );
        // A host on both sides never blocks itself.
        net.partition(&[a, b], &[a, b], false).unwrap();
        assert!(!net.is_partitioned(a, a));
        assert_eq!(net.partitioned_edge_count(), 2);
    }

    #[test]
    fn delay_ramp_interpolates_extra_latency() {
        let link = Link {
            latency: Duration::from_millis(10),
            jitter: Duration::ZERO,
            bandwidth_kbps: 8_000_000, // transmission delay negligible
            loss_rate: 0.0,
            up: true,
        };
        let (mut net, a, b) = two_host_net(link);
        let ramp = DelayRamp {
            start: SimTime::from_secs(10),
            duration: Duration::from_secs(10),
            from_extra: Duration::ZERO,
            to_extra: Duration::from_millis(100),
            jitter: Duration::ZERO,
        };
        net.inject_delay_ramp(a, b, ramp).unwrap();
        // Before the ramp starts: base latency only.
        net.send(a, b, 1, 8).unwrap();
        let d = net.next_delivery().unwrap();
        assert!(d.at < SimTime::from_millis(11));
        // Halfway up the ramp: +50 ms.
        net.advance_to(SimTime::from_secs(15)).unwrap();
        net.send(a, b, 2, 8).unwrap();
        let d = net.next_delivery().unwrap();
        let extra = d.at - SimTime::from_secs(15);
        assert!(
            extra >= Duration::from_millis(60) && extra < Duration::from_millis(61),
            "expected ~10ms base + 50ms ramp, got {extra:?}"
        );
        // Past the end: the full extra delay holds.
        net.advance_to(SimTime::from_secs(30)).unwrap();
        net.send(a, b, 3, 8).unwrap();
        let d = net.next_delivery().unwrap();
        let extra = d.at - SimTime::from_secs(30);
        assert!(
            extra >= Duration::from_millis(110) && extra < Duration::from_millis(111),
            "expected ~10ms base + 100ms ramp, got {extra:?}"
        );
        // Clearing the ramp restores the base latency.
        net.clear_delay_ramp(a, b);
        assert!(net.delay_ramp(a, b).is_none());
        let sent_at = net.now();
        net.send(a, b, 4, 8).unwrap();
        let d = net.next_delivery().unwrap();
        assert!(d.at - sent_at < Duration::from_millis(11));
    }

    #[test]
    fn delay_ramp_jitter_scales_with_progress_and_stays_deterministic() {
        let run = |seed: u64| -> Vec<u64> {
            let mut net: Network<u32> = Network::new(seed);
            let a = net.add_host("a");
            let b = net.add_host("b");
            net.connect(a, b, Link::lan()).unwrap();
            let ramp = DelayRamp {
                start: SimTime::ZERO,
                duration: Duration::ZERO,
                from_extra: Duration::from_millis(1),
                to_extra: Duration::from_millis(1),
                jitter: Duration::from_millis(5),
            };
            net.inject_delay_ramp(a, b, ramp).unwrap();
            for i in 0..50u32 {
                net.send(a, b, i, 10).unwrap();
            }
            net.run_until_idle()
                .into_iter()
                .map(|d| d.at.as_nanos())
                .collect()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6), "ramp jitter draws from the seeded RNG");
        // The step ramp is errors-only on an unknown edge.
        let mut net: Network<u32> = Network::new(1);
        let a = net.add_host("a");
        let b = net.add_host("b");
        assert_eq!(
            net.inject_delay_ramp(
                a,
                b,
                DelayRamp::step(SimTime::ZERO, Duration::from_millis(1))
            )
            .unwrap_err(),
            SimError::NotConnected { from: a, to: b }
        );
        assert!(net
            .inject_delay_ramp(a, HostId(7), DelayRamp::step(SimTime::ZERO, Duration::ZERO))
            .is_err());
    }

    #[test]
    fn counters_track_activity() {
        let (mut net, a, b) = two_host_net(Link::lan());
        net.send(a, b, 1, 10).unwrap();
        net.send(a, b, 2, 10).unwrap();
        assert_eq!(net.send_count(), 2);
        assert_eq!(net.pending_count(), 2);
        net.run_until_idle();
        assert_eq!(net.delivered_count(), 2);
        assert_eq!(net.pending_count(), 0);
        assert_eq!(net.host_count(), 2);
    }
}
