//! Simulation time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

use serde::{Deserialize, Serialize};

/// An absolute instant on the simulated global timeline, with nanosecond
/// resolution. `SimTime::ZERO` is the start of the simulation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from nanoseconds since simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant from microseconds since simulation start.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * 1_000)
    }

    /// Creates an instant from milliseconds since simulation start.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Creates an instant from seconds since simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Milliseconds since simulation start (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Whole seconds since simulation start (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Seconds since simulation start as a float (for metrics output).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The elapsed duration since an earlier instant, saturating to zero when
    /// `earlier` is actually later.
    pub fn duration_since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: Duration) -> SimTime {
        SimTime(
            self.0
                .saturating_add(d.as_nanos().min(u64::MAX as u128) as u64),
        )
    }

    /// Saturating subtraction of a duration.
    pub fn saturating_sub(self, d: Duration) -> SimTime {
        SimTime(
            self.0
                .saturating_sub(d.as_nanos().min(u64::MAX as u128) as u64),
        )
    }

    /// Signed offset (in nanoseconds) from `other` to `self`.
    pub fn signed_offset_from(self, other: SimTime) -> i64 {
        self.0 as i64 - other.0 as i64
    }

    /// Applies a signed nanosecond offset, saturating at the timeline bounds.
    pub fn offset_by(self, nanos: i64) -> SimTime {
        if nanos >= 0 {
            SimTime(self.0.saturating_add(nanos as u64))
        } else {
            SimTime(self.0.saturating_sub(nanos.unsigned_abs()))
        }
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: Duration) -> SimTime {
        self.saturating_add(rhs)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;

    fn sub(self, rhs: SimTime) -> Duration {
        self.duration_since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl dmps_wire::Wire for SimTime {
    fn encode(&self, w: &mut dmps_wire::Writer) {
        self.0.encode(w);
    }

    fn decode(r: &mut dmps_wire::Reader<'_>) -> dmps_wire::Result<Self> {
        Ok(SimTime(u64::decode(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_are_consistent() {
        let t = SimTime::from_millis(1_500);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert_eq!(t.as_millis(), 1_500);
        assert_eq!(t.as_secs(), 1);
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2_000));
        assert_eq!(SimTime::from_micros(5), SimTime::from_nanos(5_000));
        assert!((SimTime::from_millis(250).as_secs_f64() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_with_durations() {
        let t = SimTime::from_millis(100);
        let later = t + Duration::from_millis(50);
        assert_eq!(later.as_millis(), 150);
        assert_eq!(later - t, Duration::from_millis(50));
        assert_eq!(t - later, Duration::ZERO, "saturating");
        let mut acc = SimTime::ZERO;
        acc += Duration::from_secs(1);
        assert_eq!(acc, SimTime::from_secs(1));
    }

    #[test]
    fn signed_offsets() {
        let a = SimTime::from_millis(100);
        let b = SimTime::from_millis(150);
        assert_eq!(b.signed_offset_from(a), 50_000_000);
        assert_eq!(a.signed_offset_from(b), -50_000_000);
        assert_eq!(a.offset_by(50_000_000), b);
        assert_eq!(b.offset_by(-50_000_000), a);
        assert_eq!(SimTime::ZERO.offset_by(-10), SimTime::ZERO, "saturates");
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::ZERO < SimTime::from_nanos(1));
        assert!(SimTime::MAX > SimTime::from_secs(1_000_000));
        assert_eq!(SimTime::from_millis(250).to_string(), "0.250000s");
    }

    #[test]
    fn saturating_edges() {
        assert_eq!(
            SimTime::MAX.saturating_add(Duration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimTime::ZERO.saturating_sub(Duration::from_secs(1)),
            SimTime::ZERO
        );
    }
}
