//! Per-host local clocks with drift and offset.
//!
//! The paper's synchronization argument hinges on clients whose local clocks
//! run fast or slow relative to the server's global clock. [`LocalClock`]
//! models a client clock as an affine function of true (global) simulation
//! time: `local = global · (1 + drift_ppm·10⁻⁶) + offset`.

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// A drifting local clock.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalClock {
    /// Frequency error in parts per million. Positive means the clock runs
    /// fast (gains time), negative means it runs slow.
    drift_ppm: f64,
    /// Constant offset in nanoseconds added to the local reading.
    offset_nanos: i64,
}

impl LocalClock {
    /// A perfect clock with no drift and no offset.
    pub fn perfect() -> Self {
        LocalClock {
            drift_ppm: 0.0,
            offset_nanos: 0,
        }
    }

    /// Creates a clock with the given drift (ppm) and initial offset (ns).
    pub fn new(drift_ppm: f64, offset_nanos: i64) -> Self {
        LocalClock {
            drift_ppm,
            offset_nanos,
        }
    }

    /// The drift in parts per million.
    pub fn drift_ppm(&self) -> f64 {
        self.drift_ppm
    }

    /// The constant offset in nanoseconds.
    pub fn offset_nanos(&self) -> i64 {
        self.offset_nanos
    }

    /// The local reading at a given true (global) time.
    pub fn local_at(&self, global: SimTime) -> SimTime {
        let drifted = global.as_nanos() as f64 * (1.0 + self.drift_ppm * 1e-6);
        let nanos = drifted as i64 + self.offset_nanos;
        SimTime::from_nanos(nanos.max(0) as u64)
    }

    /// The true (global) time at which the clock shows a given local reading
    /// — the inverse of [`LocalClock::local_at`].
    pub fn global_at(&self, local: SimTime) -> SimTime {
        let nanos =
            (local.as_nanos() as i64 - self.offset_nanos) as f64 / (1.0 + self.drift_ppm * 1e-6);
        SimTime::from_nanos(nanos.max(0.0) as u64)
    }

    /// The signed skew (local − global) in nanoseconds at a given true time.
    pub fn skew_nanos_at(&self, global: SimTime) -> i64 {
        self.local_at(global).signed_offset_from(global)
    }

    /// Slews the clock by adding a correction to its offset (what a client
    /// does after a global-clock synchronization round).
    pub fn adjust(&mut self, correction_nanos: i64) {
        self.offset_nanos += correction_nanos;
    }
}

impl Default for LocalClock {
    fn default() -> Self {
        LocalClock::perfect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_clock_is_identity() {
        let c = LocalClock::perfect();
        let t = SimTime::from_millis(1234);
        assert_eq!(c.local_at(t), t);
        assert_eq!(c.global_at(t), t);
        assert_eq!(c.skew_nanos_at(t), 0);
    }

    #[test]
    fn fast_clock_runs_ahead() {
        let c = LocalClock::new(500.0, 0); // +500 ppm
        let t = SimTime::from_secs(100);
        let local = c.local_at(t);
        assert!(local > t);
        // 500 ppm over 100 s = 50 ms ahead.
        let skew = c.skew_nanos_at(t);
        assert!((skew - 50_000_000).abs() < 1_000, "skew was {skew}");
    }

    #[test]
    fn slow_clock_lags() {
        let c = LocalClock::new(-200.0, 0);
        let t = SimTime::from_secs(50);
        assert!(c.local_at(t) < t);
        assert!(c.skew_nanos_at(t) < 0);
    }

    #[test]
    fn offset_shifts_reading() {
        let c = LocalClock::new(0.0, 3_000_000); // +3 ms
        let t = SimTime::from_millis(10);
        assert_eq!(c.local_at(t), SimTime::from_millis(13));
        assert_eq!(c.global_at(SimTime::from_millis(13)), t);
    }

    #[test]
    fn global_at_inverts_local_at() {
        let c = LocalClock::new(350.0, -2_500_000);
        for ms in [10u64, 500, 10_000, 3_600_000] {
            let g = SimTime::from_millis(ms);
            let local = c.local_at(g);
            // Skip instants where the local reading saturated at zero; the
            // affine map is not invertible there.
            if local == SimTime::ZERO {
                continue;
            }
            let round_trip = c.global_at(local);
            let err = round_trip.signed_offset_from(g).abs();
            assert!(err < 1_000, "round trip error {err} ns at {ms} ms");
        }
    }

    #[test]
    fn adjust_slews_offset() {
        let mut c = LocalClock::new(0.0, 1_000_000);
        c.adjust(-1_000_000);
        assert_eq!(c.offset_nanos(), 0);
        assert_eq!(c.local_at(SimTime::from_secs(1)), SimTime::from_secs(1));
        assert_eq!(c.drift_ppm(), 0.0);
    }

    #[test]
    fn negative_local_saturates_to_zero() {
        let c = LocalClock::new(0.0, -5_000_000_000);
        assert_eq!(c.local_at(SimTime::from_secs(1)), SimTime::ZERO);
    }
}
