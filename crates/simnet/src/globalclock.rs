//! The centralized global clock of the DMPS server and its admission rule.
//!
//! Section 3 of the paper: *"The DMPS server build a communication group and
//! initial a global clock [...] The global clock admission control is
//! centralized mode. It has the highest priority to handle the transition
//! enforced to fire immediately or not. If the clock in client side is faster
//! than global clock, the current transition will not fire until global clock
//! arrives. On the other hand, if the local clock in client side is slower
//! than global clock, the transition will be fire without delay."*
//!
//! Two pieces implement that paragraph:
//!
//! * [`ClockSyncServer`] / [`ClockSyncClient`] — a Cristian-style
//!   request/response synchronization protocol the clients run over the
//!   simulated network to estimate the server's global clock,
//! * [`AdmissionDecision`] — the admission rule itself, applied by a client
//!   when its presentation schedule says a transition is due.

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// The server side of the clock synchronization protocol. It simply reports
/// the global clock (the server's own clock is the reference, so its local
/// time *is* the global time).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ClockSyncServer {
    rounds_served: u64,
}

impl ClockSyncServer {
    /// Creates a new server-side synchronizer.
    pub fn new() -> Self {
        ClockSyncServer::default()
    }

    /// Handles a synchronization request, returning the global time to embed
    /// in the response message.
    pub fn handle_request(&mut self, global_now: SimTime) -> SimTime {
        self.rounds_served += 1;
        global_now
    }

    /// Number of synchronization rounds served.
    pub fn rounds_served(&self) -> u64 {
        self.rounds_served
    }
}

/// The client side of the clock synchronization protocol: tracks the
/// estimated offset between the client's local clock and the server's global
/// clock.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ClockSyncClient {
    /// Estimated `global − local` offset in nanoseconds.
    estimated_offset_nanos: i64,
    /// Whether at least one round has completed.
    synchronized: bool,
    rounds_completed: u64,
    /// The local send time of the round in flight, if any.
    outstanding_request_local: Option<SimTime>,
    /// Estimated round-trip time of the last completed round.
    last_rtt_nanos: u64,
}

impl ClockSyncClient {
    /// Creates an unsynchronized client.
    pub fn new() -> Self {
        ClockSyncClient::default()
    }

    /// Records that a synchronization request was sent at the given *local*
    /// time.
    pub fn request_sent(&mut self, local_send_time: SimTime) {
        self.outstanding_request_local = Some(local_send_time);
    }

    /// Completes a round: the response carrying `server_global_time` arrived
    /// at `local_receive_time`. Uses Cristian's estimate
    /// `global ≈ server_time + rtt/2` to update the offset. Returns the new
    /// offset estimate in nanoseconds, or `None` when no request was
    /// outstanding.
    pub fn response_received(
        &mut self,
        server_global_time: SimTime,
        local_receive_time: SimTime,
    ) -> Option<i64> {
        let sent = self.outstanding_request_local.take()?;
        let rtt = local_receive_time.duration_since(sent);
        let estimated_global_now = server_global_time + rtt / 2;
        self.estimated_offset_nanos = estimated_global_now.signed_offset_from(local_receive_time);
        self.synchronized = true;
        self.rounds_completed += 1;
        self.last_rtt_nanos = rtt.as_nanos().min(u64::MAX as u128) as u64;
        Some(self.estimated_offset_nanos)
    }

    /// Whether at least one synchronization round has completed.
    pub fn is_synchronized(&self) -> bool {
        self.synchronized
    }

    /// The estimated `global − local` offset in nanoseconds.
    pub fn estimated_offset_nanos(&self) -> i64 {
        self.estimated_offset_nanos
    }

    /// The round-trip time measured by the last completed round.
    pub fn last_rtt_nanos(&self) -> u64 {
        self.last_rtt_nanos
    }

    /// Number of completed rounds.
    pub fn rounds_completed(&self) -> u64 {
        self.rounds_completed
    }

    /// Converts a local clock reading into the client's best estimate of
    /// global time.
    pub fn estimate_global(&self, local: SimTime) -> SimTime {
        local.offset_by(self.estimated_offset_nanos)
    }

    /// Converts a global deadline into the local clock reading at which it is
    /// estimated to occur.
    pub fn local_for_global(&self, global: SimTime) -> SimTime {
        global.offset_by(-self.estimated_offset_nanos)
    }

    /// Applies the paper's admission rule for a transition scheduled at
    /// `scheduled_global` when the client's clock currently reads
    /// `local_now`:
    ///
    /// * the client's estimate of global time is **ahead of** the schedule
    ///   (client clock faster) → the transition must **wait** until the
    ///   global clock arrives, i.e. until the local clock reads
    ///   [`ClockSyncClient::local_for_global`]` (scheduled_global)`;
    /// * the estimate is **at or behind** the schedule (client clock slower
    ///   or exactly on time) → **fire immediately**.
    pub fn admission(&self, scheduled_global: SimTime, local_now: SimTime) -> AdmissionDecision {
        let estimated_global_now = self.estimate_global(local_now);
        if estimated_global_now < scheduled_global {
            AdmissionDecision::DelayUntilLocal(self.local_for_global(scheduled_global))
        } else {
            AdmissionDecision::FireNow
        }
    }
}

/// The outcome of the global-clock admission rule for one scheduled
/// transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmissionDecision {
    /// The local clock has not yet reached the scheduled global instant:
    /// delay firing until the local clock reads the embedded value.
    DelayUntilLocal(SimTime),
    /// The scheduled instant has already passed (or is now) according to the
    /// global clock estimate: fire immediately.
    FireNow,
}

impl AdmissionDecision {
    /// Whether the decision is to fire immediately.
    pub fn is_fire_now(self) -> bool {
        matches!(self, AdmissionDecision::FireNow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn server_reports_global_time() {
        let mut server = ClockSyncServer::new();
        let t = SimTime::from_secs(10);
        assert_eq!(server.handle_request(t), t);
        assert_eq!(server.rounds_served(), 1);
    }

    #[test]
    fn client_estimates_offset_with_symmetric_delay() {
        let mut client = ClockSyncClient::new();
        assert!(!client.is_synchronized());
        // Local clock is 100 ms behind global. Request sent at local 1.000 s
        // (global 1.100), 20 ms each way; server replies with global 1.120;
        // response arrives at local 1.040.
        client.request_sent(SimTime::from_millis(1_000));
        let offset = client
            .response_received(SimTime::from_millis(1_120), SimTime::from_millis(1_040))
            .unwrap();
        assert!(client.is_synchronized());
        assert_eq!(client.rounds_completed(), 1);
        assert_eq!(
            client.last_rtt_nanos(),
            Duration::from_millis(40).as_nanos() as u64
        );
        // Estimated global at local 1.040 = 1.120 + 0.020 = 1.140 → offset 100 ms.
        assert_eq!(offset, 100_000_000);
        assert_eq!(
            client.estimate_global(SimTime::from_millis(2_000)),
            SimTime::from_millis(2_100)
        );
        assert_eq!(
            client.local_for_global(SimTime::from_millis(2_100)),
            SimTime::from_millis(2_000)
        );
    }

    #[test]
    fn response_without_request_is_ignored() {
        let mut client = ClockSyncClient::new();
        assert!(client
            .response_received(SimTime::from_secs(1), SimTime::from_secs(1))
            .is_none());
        assert!(!client.is_synchronized());
    }

    #[test]
    fn fast_client_is_delayed() {
        // Client clock runs 50 ms ahead of global: offset = global - local = -50 ms.
        let mut client = ClockSyncClient::new();
        client.request_sent(SimTime::from_millis(1_050));
        client
            .response_received(SimTime::from_millis(1_000), SimTime::from_millis(1_050))
            .unwrap();
        assert_eq!(client.estimated_offset_nanos(), -50_000_000);
        // A transition scheduled at global 2.000; local clock reads 2.000 → the
        // client *thinks* it is 1.950 globally, so it must wait.
        let decision = client.admission(SimTime::from_millis(2_000), SimTime::from_millis(2_000));
        assert_eq!(
            decision,
            AdmissionDecision::DelayUntilLocal(SimTime::from_millis(2_050))
        );
        assert!(!decision.is_fire_now());
    }

    #[test]
    fn slow_client_fires_immediately() {
        // Client clock runs 80 ms behind global: offset = +80 ms.
        let mut client = ClockSyncClient::new();
        client.request_sent(SimTime::from_millis(920));
        client
            .response_received(SimTime::from_millis(1_000), SimTime::from_millis(920))
            .unwrap();
        assert_eq!(client.estimated_offset_nanos(), 80_000_000);
        // A transition scheduled at global 1.000: local clock reads 0.940 →
        // estimated global 1.020 ≥ 1.000 → fire now.
        let decision = client.admission(SimTime::from_millis(1_000), SimTime::from_millis(940));
        assert_eq!(decision, AdmissionDecision::FireNow);
        assert!(decision.is_fire_now());
    }

    #[test]
    fn exactly_on_time_fires_now() {
        let client = ClockSyncClient::new(); // offset 0
        let decision = client.admission(SimTime::from_secs(5), SimTime::from_secs(5));
        assert_eq!(decision, AdmissionDecision::FireNow);
    }

    #[test]
    fn repeated_rounds_refine_the_estimate() {
        let mut client = ClockSyncClient::new();
        client.request_sent(SimTime::from_millis(100));
        client
            .response_received(SimTime::from_millis(400), SimTime::from_millis(140))
            .unwrap();
        let first = client.estimated_offset_nanos();
        client.request_sent(SimTime::from_millis(1_000));
        client
            .response_received(SimTime::from_millis(1_305), SimTime::from_millis(1_010))
            .unwrap();
        let second = client.estimated_offset_nanos();
        assert_ne!(first, second);
        assert_eq!(client.rounds_completed(), 2);
    }
}
