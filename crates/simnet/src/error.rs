//! Error types for the network simulator.

use std::fmt;

use crate::network::HostId;

/// Convenience result alias for the simulator.
pub type Result<T> = std::result::Result<T, SimError>;

/// Errors raised by the simulator API.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A host identifier does not belong to this network.
    UnknownHost(HostId),
    /// Two hosts are not connected by any link.
    NotConnected {
        /// Sender.
        from: HostId,
        /// Receiver.
        to: HostId,
    },
    /// A link was declared between a host and itself.
    SelfLink(HostId),
    /// A link parameter is invalid (e.g. zero bandwidth).
    InvalidLink(String),
    /// An operation required simulated time to move backwards.
    TimeWentBackwards,
    /// The host is administratively down (crashed) and cannot send or
    /// schedule timers.
    HostDown(HostId),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownHost(h) => write!(f, "unknown host {h}"),
            SimError::NotConnected { from, to } => {
                write!(f, "hosts {from} and {to} are not connected")
            }
            SimError::SelfLink(h) => write!(f, "host {h} cannot be linked to itself"),
            SimError::InvalidLink(msg) => write!(f, "invalid link: {msg}"),
            SimError::TimeWentBackwards => write!(f, "simulated time cannot move backwards"),
            SimError::HostDown(h) => write!(f, "host {h} is down"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for e in [
            SimError::UnknownHost(HostId(1)),
            SimError::NotConnected {
                from: HostId(0),
                to: HostId(1),
            },
            SimError::SelfLink(HostId(2)),
            SimError::InvalidLink("zero bandwidth".into()),
            SimError::TimeWentBackwards,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync + std::error::Error>() {}
        check::<SimError>();
    }
}
