//! Link models: latency, jitter, bandwidth, loss and up/down state.

use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::error::{Result, SimError};

/// A bidirectional link between two hosts.
///
/// Message delivery time over a link is
/// `queueing + size·8/bandwidth + latency ± jitter`, and each message is
/// dropped independently with probability `loss_rate` (or always, when the
/// link is down — the red "connection light" state of Figure 3c).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// One-way propagation latency.
    pub latency: Duration,
    /// Maximum random jitter added to (or subtracted from) the latency.
    pub jitter: Duration,
    /// Bandwidth in kilobits per second.
    pub bandwidth_kbps: u32,
    /// Independent per-message loss probability in `[0, 1]`.
    pub loss_rate: f64,
    /// Whether the link is currently up.
    pub up: bool,
}

impl Link {
    /// A campus LAN link: 1 ms latency, 0.2 ms jitter, 100 Mbps, no loss.
    pub fn lan() -> Self {
        Link {
            latency: Duration::from_millis(1),
            jitter: Duration::from_micros(200),
            bandwidth_kbps: 100_000,
            loss_rate: 0.0,
            up: true,
        }
    }

    /// A year-2001 consumer DSL/modem link: 40 ms latency, 10 ms jitter,
    /// 512 kbps, 0.1 % loss. This approximates the dial-in students of the
    /// paper's distance-learning scenario.
    pub fn dsl() -> Self {
        Link {
            latency: Duration::from_millis(40),
            jitter: Duration::from_millis(10),
            bandwidth_kbps: 512,
            loss_rate: 0.001,
            up: true,
        }
    }

    /// A long-haul WAN link: 120 ms latency, 30 ms jitter, 2 Mbps, 0.5 % loss.
    pub fn wan() -> Self {
        Link {
            latency: Duration::from_millis(120),
            jitter: Duration::from_millis(30),
            bandwidth_kbps: 2_000,
            loss_rate: 0.005,
            up: true,
        }
    }

    /// An intra-datacenter replication link: 300 µs latency, 50 µs jitter,
    /// 1 Gbps, no loss. The default append path between a shard leader and
    /// its replicas.
    pub fn replica() -> Self {
        Link {
            latency: Duration::from_micros(300),
            jitter: Duration::from_micros(50),
            bandwidth_kbps: 1_000_000,
            loss_rate: 0.0,
            up: true,
        }
    }

    /// Builder-style latency override.
    pub fn with_latency(mut self, latency: Duration) -> Self {
        self.latency = latency;
        self
    }

    /// Builder-style jitter override.
    pub fn with_jitter(mut self, jitter: Duration) -> Self {
        self.jitter = jitter;
        self
    }

    /// Builder-style bandwidth override.
    pub fn with_bandwidth_kbps(mut self, kbps: u32) -> Self {
        self.bandwidth_kbps = kbps;
        self
    }

    /// Builder-style loss override.
    pub fn with_loss_rate(mut self, loss_rate: f64) -> Self {
        self.loss_rate = loss_rate;
        self
    }

    /// Validates the link parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidLink`] on zero bandwidth or a loss rate
    /// outside `[0, 1]`.
    pub fn validate(&self) -> Result<()> {
        if self.bandwidth_kbps == 0 {
            return Err(SimError::InvalidLink("zero bandwidth".into()));
        }
        if !(0.0..=1.0).contains(&self.loss_rate) || self.loss_rate.is_nan() {
            return Err(SimError::InvalidLink(format!(
                "loss rate {} outside [0, 1]",
                self.loss_rate
            )));
        }
        Ok(())
    }

    /// The serialization (transmission) delay of a message of `size_bytes`.
    pub fn transmission_delay(&self, size_bytes: u64) -> Duration {
        let bits = size_bytes.saturating_mul(8);
        let nanos = bits as u128 * 1_000_000 / self.bandwidth_kbps as u128;
        Duration::from_nanos(nanos.min(u64::MAX as u128) as u64)
    }
}

impl Default for Link {
    fn default() -> Self {
        Link::lan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        for link in [
            Link::lan(),
            Link::dsl(),
            Link::wan(),
            Link::replica(),
            Link::default(),
        ] {
            assert!(link.validate().is_ok());
            assert!(link.up);
        }
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Link::lan().with_bandwidth_kbps(0).validate().is_err());
        assert!(Link::lan().with_loss_rate(1.5).validate().is_err());
        assert!(Link::lan().with_loss_rate(f64::NAN).validate().is_err());
        assert!(Link::lan().with_loss_rate(1.0).validate().is_ok());
    }

    #[test]
    fn transmission_delay_scales_with_size_and_bandwidth() {
        let link = Link::lan().with_bandwidth_kbps(8); // 8 kbps = 1 kB/s
        assert_eq!(link.transmission_delay(1_000), Duration::from_secs(1));
        let fast = Link::lan().with_bandwidth_kbps(8_000);
        assert_eq!(fast.transmission_delay(1_000), Duration::from_millis(1));
        assert_eq!(fast.transmission_delay(0), Duration::ZERO);
    }

    #[test]
    fn builder_overrides() {
        let link = Link::lan()
            .with_latency(Duration::from_millis(7))
            .with_jitter(Duration::from_millis(2))
            .with_loss_rate(0.25);
        assert_eq!(link.latency, Duration::from_millis(7));
        assert_eq!(link.jitter, Duration::from_millis(2));
        assert!((link.loss_rate - 0.25).abs() < f64::EPSILON);
    }
}
