//! # dmps-simnet
//!
//! Deterministic discrete-event network simulator used as the distributed
//! substrate of the DMPS reproduction of *"Using the Floor Control Mechanism
//! in Distributed Multimedia Presentation System"* (Shih et al., ICDCS 2001
//! Workshops).
//!
//! The paper's prototype ran between real Windows machines on a campus
//! network; the claims it makes, however, only depend on two properties of
//! that substrate — **bounded message delay** and **bounded clock skew** —
//! plus the centralized global-clock admission rule of Section 3. This crate
//! substitutes a simulator that exposes exactly those knobs:
//!
//! * [`SimTime`] — nanosecond-resolution simulation time,
//! * [`LocalClock`] — per-host clocks with drift (ppm) and offset,
//! * [`Link`] — latency, jitter, bandwidth, loss and up/down state,
//! * [`Network`] — the event queue: send messages, advance time, observe
//!   deliveries and drops deterministically from a seed,
//! * [`globalclock`] — the centralized global-clock synchronization protocol
//!   and the admission rule ("if the client clock is faster than the global
//!   clock, the transition does not fire until the global clock arrives;
//!   if slower, it fires without delay"),
//! * [`trace`] — structured event traces for the experiment harness.
//!
//! # Example
//!
//! ```
//! use dmps_simnet::{Link, Network, SimTime};
//! use std::time::Duration;
//!
//! let mut net: Network<&'static str> = Network::new(42);
//! let server = net.add_host("server");
//! let client = net.add_host("client");
//! net.connect(server, client, Link::lan());
//! net.send(server, client, "hello", 100);
//! let delivery = net.run_until_idle().pop().expect("one delivery");
//! assert_eq!(delivery.payload, "hello");
//! assert!(delivery.at > SimTime::ZERO);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod error;
pub mod globalclock;
pub mod link;
pub mod network;
pub mod time;
pub mod trace;

pub use clock::LocalClock;
pub use error::{Result, SimError};
pub use globalclock::{AdmissionDecision, ClockSyncClient, ClockSyncServer};
pub use link::Link;
pub use network::{DelayRamp, Delivery, DropReason, Dropped, HostId, Network};
pub use time::SimTime;
pub use trace::{Trace, TraceEvent};
