//! Firing sequences: recorded executions of a net.

use serde::{Deserialize, Serialize};

use crate::error::Result;
use crate::marking::Marking;
use crate::net::{PetriNet, TransitionId};

/// One step of a firing sequence: the transition fired and the marking
/// reached afterwards.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FiringStep {
    /// The transition that fired.
    pub transition: TransitionId,
    /// The marking after the firing.
    pub marking: Marking,
}

/// A recorded execution `M0 [t1> M1 [t2> ... [tn> Mn` of a net.
///
/// Firing sequences are the raw material of the DOCPN scheduler: the
/// synchronization schedule of a presentation is a timed firing sequence of
/// the compiled net.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FiringSequence {
    initial: Marking,
    steps: Vec<FiringStep>,
}

impl FiringSequence {
    /// Starts an empty sequence at the given initial marking.
    pub fn new(initial: Marking) -> Self {
        FiringSequence {
            initial,
            steps: Vec::new(),
        }
    }

    /// The initial marking `M0`.
    pub fn initial(&self) -> &Marking {
        &self.initial
    }

    /// The marking reached after the last recorded firing (or the initial
    /// marking when no step has been recorded).
    pub fn current(&self) -> &Marking {
        self.steps
            .last()
            .map(|s| &s.marking)
            .unwrap_or(&self.initial)
    }

    /// The recorded steps in firing order.
    pub fn steps(&self) -> &[FiringStep] {
        &self.steps
    }

    /// Number of firings recorded.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Returns `true` when no firing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Fires `t` in the net from the current marking and records the step.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::NetError::NotEnabled`] (and marking-shape errors)
    /// from [`PetriNet::fire`]; the sequence is left unchanged on error.
    pub fn fire(&mut self, net: &PetriNet, t: TransitionId) -> Result<&Marking> {
        let next = net.fire(self.current(), t)?;
        self.steps.push(FiringStep {
            transition: t,
            marking: next,
        });
        Ok(&self.steps.last().expect("step just pushed").marking)
    }

    /// Replays the sequence against a net, verifying every step is a legal
    /// firing. Returns the final marking.
    ///
    /// # Errors
    ///
    /// Returns the first firing error encountered during the replay.
    pub fn replay(&self, net: &PetriNet) -> Result<Marking> {
        let mut m = self.initial.clone();
        for step in &self.steps {
            m = net.fire(&m, step.transition)?;
            debug_assert_eq!(m, step.marking, "recorded marking must match replay");
        }
        Ok(m)
    }

    /// The transitions fired, in order.
    pub fn word(&self) -> Vec<TransitionId> {
        self.steps.iter().map(|s| s.transition).collect()
    }

    /// Counts how many times each transition index fired.
    pub fn firing_counts(&self, transition_count: usize) -> Vec<u64> {
        let mut counts = vec![0u64; transition_count];
        for step in &self.steps {
            if step.transition.0 < transition_count {
                counts[step.transition.0] += 1;
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetBuilder;
    use crate::net::PlaceId;

    fn cycle_net() -> (PetriNet, PlaceId, PlaceId, TransitionId, TransitionId) {
        let mut b = NetBuilder::new("cycle");
        let a = b.place("a");
        let c = b.place("c");
        let fwd = b.transition("fwd");
        let back = b.transition("back");
        b.arc_in(a, fwd, 1);
        b.arc_out(fwd, c, 1);
        b.arc_in(c, back, 1);
        b.arc_out(back, a, 1);
        (b.build().unwrap(), a, c, fwd, back)
    }

    #[test]
    fn sequence_records_and_replays() {
        let (net, a, c, fwd, back) = cycle_net();
        let m0 = Marking::from_pairs(net.place_count(), &[(a, 1)]);
        let mut seq = FiringSequence::new(m0.clone());
        assert!(seq.is_empty());
        seq.fire(&net, fwd).unwrap();
        seq.fire(&net, back).unwrap();
        seq.fire(&net, fwd).unwrap();
        assert_eq!(seq.len(), 3);
        assert_eq!(seq.word(), vec![fwd, back, fwd]);
        assert_eq!(seq.current().tokens(c), 1);
        assert_eq!(seq.current().tokens(a), 0);
        let final_marking = seq.replay(&net).unwrap();
        assert_eq!(&final_marking, seq.current());
        assert_eq!(seq.initial(), &m0);
    }

    #[test]
    fn failed_fire_leaves_sequence_unchanged() {
        let (net, a, _c, _fwd, back) = cycle_net();
        let m0 = Marking::from_pairs(net.place_count(), &[(a, 1)]);
        let mut seq = FiringSequence::new(m0);
        assert!(seq.fire(&net, back).is_err());
        assert!(seq.is_empty());
    }

    #[test]
    fn firing_counts_tally_transitions() {
        let (net, a, _c, fwd, back) = cycle_net();
        let m0 = Marking::from_pairs(net.place_count(), &[(a, 1)]);
        let mut seq = FiringSequence::new(m0);
        for _ in 0..3 {
            seq.fire(&net, fwd).unwrap();
            seq.fire(&net, back).unwrap();
        }
        assert_eq!(seq.firing_counts(net.transition_count()), vec![3, 3]);
    }
}
