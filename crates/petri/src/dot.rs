//! Graphviz DOT export of Petri nets, used to regenerate Figure 1 of the
//! paper (the overview DOCPN of a distributed multimedia presentation).

use std::fmt::Write as _;

use crate::marking::Marking;
use crate::net::PetriNet;

/// Options controlling [`to_dot`] output.
#[derive(Debug, Clone, PartialEq)]
pub struct DotOptions {
    /// Graph title rendered as a label.
    pub title: Option<String>,
    /// Render left-to-right instead of top-to-bottom.
    pub horizontal: bool,
    /// Show token counts of this marking inside the places.
    pub marking: Option<Marking>,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            title: None,
            horizontal: true,
            marking: None,
        }
    }
}

/// Renders a net as a Graphviz `digraph`. Places are ellipses, transitions are
/// boxes, arc weights greater than one are shown as edge labels.
pub fn to_dot(net: &PetriNet, options: &DotOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(net.name()));
    if options.horizontal {
        let _ = writeln!(out, "  rankdir=LR;");
    }
    if let Some(title) = &options.title {
        let _ = writeln!(out, "  label=\"{}\";", escape(title));
        let _ = writeln!(out, "  labelloc=top;");
    }
    for p in net.places() {
        let place = net.place(p).expect("iterating net's own places");
        let tokens = options.marking.as_ref().map(|m| m.tokens(p)).unwrap_or(0);
        let token_suffix = if tokens > 0 {
            format!("\\n({tokens})")
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "  \"{p}\" [shape=ellipse, label=\"{}{}\"];",
            escape(&place.name),
            token_suffix
        );
    }
    for t in net.transitions() {
        let tr = net.transition(t).expect("iterating net's own transitions");
        let _ = writeln!(
            out,
            "  \"{t}\" [shape=box, style=filled, fillcolor=lightgray, label=\"{}\"];",
            escape(&tr.name)
        );
    }
    for t in net.transitions() {
        for arc in net.input_arcs(t) {
            let label = if arc.weight > 1 {
                format!(" [label=\"{}\"]", arc.weight)
            } else {
                String::new()
            };
            let _ = writeln!(out, "  \"{}\" -> \"{t}\"{label};", arc.place);
        }
        for arc in net.output_arcs(t) {
            let label = if arc.weight > 1 {
                format!(" [label=\"{}\"]", arc.weight)
            } else {
                String::new()
            };
            let _ = writeln!(out, "  \"{t}\" -> \"{}\"{label};", arc.place);
        }
    }
    let _ = writeln!(out, "}}");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetBuilder;

    fn tiny() -> PetriNet {
        let mut b = NetBuilder::new("tiny \"net\"");
        let p = b.place("video ready");
        let q = b.place("played");
        let t = b.transition("play");
        b.arc_in(p, t, 2);
        b.arc_out(t, q, 1);
        b.build().unwrap()
    }

    #[test]
    fn dot_contains_nodes_and_edges() {
        let net = tiny();
        let dot = to_dot(&net, &DotOptions::default());
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("video ready"));
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("shape=ellipse"));
        assert!(dot.contains("\"p0\" -> \"t0\" [label=\"2\"];"));
        assert!(dot.contains("\"t0\" -> \"p1\";"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn dot_escapes_quotes() {
        let net = tiny();
        let dot = to_dot(&net, &DotOptions::default());
        assert!(dot.contains("tiny \\\"net\\\""));
    }

    #[test]
    fn dot_renders_marking_and_title() {
        let net = tiny();
        let m = Marking::from_pairs(
            net.place_count(),
            &[(net.place_by_name("video ready").unwrap(), 3)],
        );
        let dot = to_dot(
            &net,
            &DotOptions {
                title: Some("Figure 1".into()),
                horizontal: false,
                marking: Some(m),
            },
        );
        assert!(dot.contains("label=\"Figure 1\""));
        assert!(dot.contains("(3)"));
        assert!(!dot.contains("rankdir=LR"));
    }
}
