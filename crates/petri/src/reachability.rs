//! Reachability graph and Karp–Miller coverability tree construction.
//!
//! The paper (Section 4) verifies the structural mechanism of its DOCPN model
//! by "analyzing the model by time schedule of multimedia objects"; the
//! underlying state-space machinery is the classical reachability analysis
//! provided here. Experiment **E9** benchmarks its cost as net size grows.

use std::collections::{HashMap, VecDeque};

use serde::{Deserialize, Serialize};

use crate::error::{NetError, Result};
use crate::marking::Marking;
use crate::net::{PetriNet, PlaceId, TransitionId};

/// Bounds on explicit state-space exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReachabilityLimits {
    /// Maximum number of distinct markings to explore.
    pub max_states: usize,
    /// Maximum number of edges (firings) to record.
    pub max_edges: usize,
}

impl Default for ReachabilityLimits {
    fn default() -> Self {
        ReachabilityLimits {
            max_states: 100_000,
            max_edges: 1_000_000,
        }
    }
}

/// An edge of the reachability graph: `from --t--> to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReachEdge {
    /// Index of the source marking.
    pub from: usize,
    /// The transition fired.
    pub transition: TransitionId,
    /// Index of the destination marking.
    pub to: usize,
}

/// The explicit reachability graph of a bounded net (or a bounded prefix of
/// an unbounded one, when limits are hit).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReachabilityGraph {
    markings: Vec<Marking>,
    edges: Vec<ReachEdge>,
    complete: bool,
}

impl ReachabilityGraph {
    /// Builds the reachability graph from `initial` by breadth-first search.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::MarkingSizeMismatch`] when the initial marking does
    /// not match the net. Exploration that exceeds `limits` does **not**
    /// error: it returns a graph with [`ReachabilityGraph::is_complete`] set
    /// to `false` so callers can distinguish a truncated result.
    pub fn build(net: &PetriNet, initial: &Marking, limits: ReachabilityLimits) -> Result<Self> {
        net.check_marking(initial)?;
        let mut index: HashMap<Marking, usize> = HashMap::new();
        let mut markings = vec![initial.clone()];
        index.insert(initial.clone(), 0);
        let mut edges = Vec::new();
        let mut queue = VecDeque::new();
        queue.push_back(0usize);
        let mut complete = true;

        while let Some(cur) = queue.pop_front() {
            let m = markings[cur].clone();
            for t in net.enabled_transitions(&m) {
                if edges.len() >= limits.max_edges {
                    complete = false;
                    break;
                }
                let next = net.fire(&m, t).expect("enabled transition fires");
                let to = match index.get(&next) {
                    Some(&i) => i,
                    None => {
                        if markings.len() >= limits.max_states {
                            complete = false;
                            continue;
                        }
                        let i = markings.len();
                        markings.push(next.clone());
                        index.insert(next, i);
                        queue.push_back(i);
                        i
                    }
                };
                edges.push(ReachEdge {
                    from: cur,
                    transition: t,
                    to,
                });
            }
            if !complete && markings.len() >= limits.max_states {
                break;
            }
        }

        Ok(ReachabilityGraph {
            markings,
            edges,
            complete,
        })
    }

    /// The distinct markings discovered, index 0 being the initial marking.
    pub fn markings(&self) -> &[Marking] {
        &self.markings
    }

    /// The firing edges discovered.
    pub fn edges(&self) -> &[ReachEdge] {
        &self.edges
    }

    /// Number of distinct markings.
    pub fn state_count(&self) -> usize {
        self.markings.len()
    }

    /// `true` when the whole reachability set was explored within limits.
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// Returns `true` when the given marking is reachable.
    pub fn contains(&self, m: &Marking) -> bool {
        self.markings.iter().any(|x| x == m)
    }

    /// The reachable dead markings (no outgoing edge).
    pub fn deadlocks(&self, net: &PetriNet) -> Vec<&Marking> {
        self.markings
            .iter()
            .filter(|m| net.is_deadlocked(m))
            .collect()
    }

    /// The maximum token count observed in each place across all reachable
    /// markings — the behavioural bound of each place.
    pub fn place_bounds(&self) -> Vec<u64> {
        if self.markings.is_empty() {
            return Vec::new();
        }
        let places = self.markings[0].len();
        let mut bounds = vec![0u64; places];
        for m in &self.markings {
            for (i, bound) in bounds.iter_mut().enumerate() {
                *bound = (*bound).max(m.tokens(PlaceId(i)));
            }
        }
        bounds
    }

    /// Returns, for every transition, whether it appears on at least one edge
    /// (i.e. is L1-live / potentially fireable from the initial marking).
    pub fn fireable_transitions(&self, transition_count: usize) -> Vec<bool> {
        let mut fireable = vec![false; transition_count];
        for e in &self.edges {
            if e.transition.0 < transition_count {
                fireable[e.transition.0] = true;
            }
        }
        fireable
    }
}

/// The ω-symbol marking used by the Karp–Miller construction: any place may
/// hold either a finite count or ω (unbounded).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OmegaMarking(Vec<OmegaCount>);

/// A token count that may be the symbolic ω.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OmegaCount {
    /// A finite token count.
    Finite(u64),
    /// Unbounded (ω).
    Omega,
}

impl OmegaCount {
    fn at_least(self, w: u64) -> bool {
        match self {
            OmegaCount::Finite(n) => n >= w,
            OmegaCount::Omega => true,
        }
    }

    fn checked_sub(self, w: u64) -> OmegaCount {
        match self {
            OmegaCount::Finite(n) => OmegaCount::Finite(n.saturating_sub(w)),
            OmegaCount::Omega => OmegaCount::Omega,
        }
    }

    fn add(self, w: u64) -> OmegaCount {
        match self {
            OmegaCount::Finite(n) => OmegaCount::Finite(n.saturating_add(w)),
            OmegaCount::Omega => OmegaCount::Omega,
        }
    }
}

impl OmegaMarking {
    /// Lifts a concrete marking into an ω-marking with no ω components.
    pub fn from_marking(m: &Marking) -> Self {
        OmegaMarking(
            m.as_slice()
                .iter()
                .map(|&n| OmegaCount::Finite(n))
                .collect(),
        )
    }

    /// Returns `true` when any component is ω.
    pub fn has_omega(&self) -> bool {
        self.0.iter().any(|c| matches!(c, OmegaCount::Omega))
    }

    /// Component-wise ≥ comparison, treating ω as larger than any finite count.
    pub fn covers(&self, other: &OmegaMarking) -> bool {
        self.0.len() == other.0.len()
            && self
                .0
                .iter()
                .zip(other.0.iter())
                .all(|(a, b)| match (a, b) {
                    (OmegaCount::Omega, _) => true,
                    (OmegaCount::Finite(_), OmegaCount::Omega) => false,
                    (OmegaCount::Finite(x), OmegaCount::Finite(y)) => x >= y,
                })
    }

    /// The per-place counts.
    pub fn counts(&self) -> &[OmegaCount] {
        &self.0
    }
}

/// The Karp–Miller coverability tree, used to decide boundedness of a net.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoverabilityTree {
    nodes: Vec<OmegaMarking>,
    edges: Vec<(usize, TransitionId, usize)>,
}

impl CoverabilityTree {
    /// Builds the coverability tree from the initial marking.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::MarkingSizeMismatch`] for a mis-sized marking and
    /// [`NetError::ExplorationLimit`] when more than `max_nodes` tree nodes
    /// are produced (coverability trees can be very large even for small
    /// nets).
    pub fn build(net: &PetriNet, initial: &Marking, max_nodes: usize) -> Result<Self> {
        net.check_marking(initial)?;
        let root = OmegaMarking::from_marking(initial);
        let mut nodes = vec![root];
        let mut parents: Vec<Option<usize>> = vec![None];
        let mut edges = Vec::new();
        let mut queue = VecDeque::new();
        queue.push_back(0usize);

        while let Some(cur) = queue.pop_front() {
            let m = nodes[cur].clone();
            // A node identical to an ancestor is a leaf ("old" node).
            let mut ancestor = parents[cur];
            let mut is_old = false;
            while let Some(a) = ancestor {
                if nodes[a] == m {
                    is_old = true;
                    break;
                }
                ancestor = parents[a];
            }
            if is_old {
                continue;
            }
            for t in net.transitions() {
                let enabled = net
                    .input_arcs(t)
                    .iter()
                    .all(|a| m.0[a.place.0].at_least(a.weight));
                if !enabled {
                    continue;
                }
                let mut next: Vec<OmegaCount> = m.0.clone();
                for a in net.input_arcs(t) {
                    next[a.place.0] = next[a.place.0].checked_sub(a.weight);
                }
                for a in net.output_arcs(t) {
                    next[a.place.0] = next[a.place.0].add(a.weight);
                }
                let mut next = OmegaMarking(next);
                // ω-acceleration: if an ancestor is strictly covered, set the
                // strictly-larger places to ω.
                let mut anc = Some(cur);
                while let Some(a) = anc {
                    if next.covers(&nodes[a]) && next != nodes[a] {
                        for (i, (n, o)) in next.0.clone().iter().zip(nodes[a].0.iter()).enumerate()
                        {
                            let strictly_greater = match (n, o) {
                                (OmegaCount::Finite(x), OmegaCount::Finite(y)) => x > y,
                                (OmegaCount::Omega, OmegaCount::Finite(_)) => true,
                                _ => false,
                            };
                            if strictly_greater {
                                next.0[i] = OmegaCount::Omega;
                            }
                        }
                    }
                    anc = parents[a];
                }
                if nodes.len() >= max_nodes {
                    return Err(NetError::ExplorationLimit {
                        states: nodes.len(),
                    });
                }
                let idx = nodes.len();
                nodes.push(next);
                parents.push(Some(cur));
                edges.push((cur, t, idx));
                queue.push_back(idx);
            }
        }
        Ok(CoverabilityTree { nodes, edges })
    }

    /// Returns `true` when no node contains an ω component: the net is
    /// bounded for the given initial marking.
    pub fn is_bounded(&self) -> bool {
        !self.nodes.iter().any(OmegaMarking::has_omega)
    }

    /// The places that are unbounded (hold ω in some node).
    pub fn unbounded_places(&self) -> Vec<PlaceId> {
        let Some(first) = self.nodes.first() else {
            return Vec::new();
        };
        (0..first.0.len())
            .filter(|&i| {
                self.nodes
                    .iter()
                    .any(|n| matches!(n.0[i], OmegaCount::Omega))
            })
            .map(PlaceId)
            .collect()
    }

    /// Number of tree nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The tree nodes.
    pub fn nodes(&self) -> &[OmegaMarking] {
        &self.nodes
    }

    /// The tree edges as `(parent, transition, child)` triples.
    pub fn edges(&self) -> &[(usize, TransitionId, usize)] {
        &self.edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetBuilder;

    fn bounded_cycle() -> (PetriNet, Marking) {
        let mut b = NetBuilder::new("cycle");
        let a = b.place("a");
        let c = b.place("c");
        let t0 = b.transition("fwd");
        let t1 = b.transition("back");
        b.arc_in(a, t0, 1);
        b.arc_out(t0, c, 1);
        b.arc_in(c, t1, 1);
        b.arc_out(t1, a, 1);
        let net = b.build().unwrap();
        let m = Marking::from_pairs(net.place_count(), &[(a, 1)]);
        (net, m)
    }

    fn unbounded_generator() -> (PetriNet, Marking) {
        let mut b = NetBuilder::new("gen");
        let seed = b.place("seed");
        let sink = b.place("sink");
        let t = b.transition("spawn");
        b.read_arc(seed, t);
        b.arc_out(t, sink, 1);
        let net = b.build().unwrap();
        let m = Marking::from_pairs(net.place_count(), &[(seed, 1)]);
        (net, m)
    }

    #[test]
    fn reachability_of_bounded_cycle() {
        let (net, m0) = bounded_cycle();
        let g = ReachabilityGraph::build(&net, &m0, ReachabilityLimits::default()).unwrap();
        assert!(g.is_complete());
        assert_eq!(g.state_count(), 2);
        assert_eq!(g.edges().len(), 2);
        assert_eq!(g.place_bounds(), vec![1, 1]);
        assert!(g.deadlocks(&net).is_empty());
        assert_eq!(
            g.fireable_transitions(net.transition_count()),
            vec![true, true]
        );
        assert!(g.contains(&m0));
    }

    #[test]
    fn reachability_detects_deadlock() {
        let mut b = NetBuilder::new("dead");
        let p = b.place("p");
        let q = b.place("q");
        let t = b.transition("consume");
        b.arc_in(p, t, 1);
        b.arc_out(t, q, 1);
        let net = b.build().unwrap();
        let m0 = Marking::from_pairs(net.place_count(), &[(p, 1)]);
        let g = ReachabilityGraph::build(&net, &m0, ReachabilityLimits::default()).unwrap();
        assert_eq!(g.state_count(), 2);
        assert_eq!(g.deadlocks(&net).len(), 1);
    }

    #[test]
    fn reachability_truncates_at_limits() {
        let (net, m0) = unbounded_generator();
        let limits = ReachabilityLimits {
            max_states: 10,
            max_edges: 100,
        };
        let g = ReachabilityGraph::build(&net, &m0, limits).unwrap();
        assert!(!g.is_complete());
        assert!(g.state_count() <= 10);
    }

    #[test]
    fn coverability_finds_bounded_net_bounded() {
        let (net, m0) = bounded_cycle();
        let tree = CoverabilityTree::build(&net, &m0, 10_000).unwrap();
        assert!(tree.is_bounded());
        assert!(tree.unbounded_places().is_empty());
        assert!(tree.node_count() >= 2);
    }

    #[test]
    fn coverability_detects_unbounded_place() {
        let (net, m0) = unbounded_generator();
        let tree = CoverabilityTree::build(&net, &m0, 10_000).unwrap();
        assert!(!tree.is_bounded());
        let unbounded = tree.unbounded_places();
        assert_eq!(unbounded, vec![net.place_by_name("sink").unwrap()]);
    }

    #[test]
    fn coverability_respects_node_limit() {
        let (net, m0) = unbounded_generator();
        let err = CoverabilityTree::build(&net, &m0, 2).unwrap_err();
        assert!(matches!(err, NetError::ExplorationLimit { .. }));
    }

    #[test]
    fn mismatched_marking_rejected() {
        let (net, _m0) = bounded_cycle();
        let bad = Marking::empty(9);
        assert!(ReachabilityGraph::build(&net, &bad, ReachabilityLimits::default()).is_err());
        assert!(CoverabilityTree::build(&net, &bad, 100).is_err());
    }

    #[test]
    fn omega_count_arithmetic() {
        assert!(OmegaCount::Omega.at_least(1_000_000));
        assert!(OmegaCount::Finite(3).at_least(3));
        assert!(!OmegaCount::Finite(2).at_least(3));
        assert_eq!(OmegaCount::Omega.checked_sub(5), OmegaCount::Omega);
        assert_eq!(OmegaCount::Finite(5).checked_sub(2), OmegaCount::Finite(3));
        assert_eq!(OmegaCount::Finite(5).add(2), OmegaCount::Finite(7));
        assert_eq!(OmegaCount::Omega.add(2), OmegaCount::Omega);
    }

    #[test]
    fn omega_marking_cover() {
        let a = OmegaMarking(vec![OmegaCount::Omega, OmegaCount::Finite(2)]);
        let b = OmegaMarking(vec![OmegaCount::Finite(7), OmegaCount::Finite(2)]);
        assert!(a.covers(&b));
        assert!(!b.covers(&a));
        assert!(a.has_omega());
        assert!(!b.has_omega());
    }
}
