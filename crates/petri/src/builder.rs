//! Ergonomic construction of [`PetriNet`] values.

use crate::error::Result;
use crate::net::{Arc, PetriNet, Place, PlaceId, Transition, TransitionId};

/// A non-consuming builder for [`PetriNet`].
///
/// Places and transitions are registered first and identified by the returned
/// ids; arcs are added afterwards. Validation (duplicate names, dangling ids,
/// zero weights) happens in [`NetBuilder::build`].
///
/// # Example
///
/// ```
/// use dmps_petri::NetBuilder;
///
/// let mut b = NetBuilder::new("handshake");
/// let ready = b.place("ready");
/// let done = b.place("done");
/// let ack = b.transition("ack");
/// b.arc_in(ready, ack, 1);
/// b.arc_out(ack, done, 1);
/// let net = b.build().expect("valid net");
/// assert_eq!(net.place_count(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct NetBuilder {
    name: String,
    places: Vec<Place>,
    transitions: Vec<Transition>,
    inputs: Vec<Vec<Arc>>,
    outputs: Vec<Vec<Arc>>,
}

impl NetBuilder {
    /// Creates a builder for a net with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        NetBuilder {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Adds an unbounded place and returns its identifier.
    pub fn place(&mut self, name: impl Into<String>) -> PlaceId {
        self.places.push(Place {
            name: name.into(),
            capacity: None,
        });
        PlaceId(self.places.len() - 1)
    }

    /// Adds a place with a token capacity and returns its identifier.
    pub fn place_with_capacity(&mut self, name: impl Into<String>, capacity: u64) -> PlaceId {
        self.places.push(Place {
            name: name.into(),
            capacity: Some(capacity),
        });
        PlaceId(self.places.len() - 1)
    }

    /// Adds a transition and returns its identifier.
    pub fn transition(&mut self, name: impl Into<String>) -> TransitionId {
        self.transitions.push(Transition { name: name.into() });
        self.inputs.push(Vec::new());
        self.outputs.push(Vec::new());
        TransitionId(self.transitions.len() - 1)
    }

    /// Adds an input arc `place -> transition` with the given weight.
    pub fn arc_in(&mut self, place: PlaceId, transition: TransitionId, weight: u64) -> &mut Self {
        self.inputs[transition.0].push(Arc { place, weight });
        self
    }

    /// Adds an output arc `transition -> place` with the given weight.
    pub fn arc_out(&mut self, transition: TransitionId, place: PlaceId, weight: u64) -> &mut Self {
        self.outputs[transition.0].push(Arc { place, weight });
        self
    }

    /// Adds a self-loop: `place -> transition -> place` with weight 1 in both
    /// directions. Used to model read-only conditions (such as the global
    /// clock tick place of the DOCPN model) that enable a transition without
    /// being consumed.
    pub fn read_arc(&mut self, place: PlaceId, transition: TransitionId) -> &mut Self {
        self.arc_in(place, transition, 1);
        self.arc_out(transition, place, 1);
        self
    }

    /// Number of places added so far.
    pub fn place_count(&self) -> usize {
        self.places.len()
    }

    /// Number of transitions added so far.
    pub fn transition_count(&self) -> usize {
        self.transitions.len()
    }

    /// Validates and produces the immutable net.
    ///
    /// # Errors
    ///
    /// Returns a [`crate::NetError`] when the net is empty, names collide,
    /// an arc references a missing node, or an arc has zero weight.
    pub fn build(&self) -> Result<PetriNet> {
        PetriNet::from_parts(
            self.name.clone(),
            self.places.clone(),
            self.transitions.clone(),
            self.inputs.clone(),
            self.outputs.clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::NetError;

    #[test]
    fn builds_a_valid_net() {
        let mut b = NetBuilder::new("n");
        let p = b.place("p");
        let t = b.transition("t");
        b.arc_in(p, t, 1);
        let net = b.build().unwrap();
        assert_eq!(net.name(), "n");
        assert_eq!(net.place_count(), 1);
        assert_eq!(net.transition_count(), 1);
    }

    #[test]
    fn duplicate_place_names_rejected() {
        let mut b = NetBuilder::new("dup");
        b.place("x");
        b.place("x");
        b.transition("t");
        assert_eq!(b.build().unwrap_err(), NetError::DuplicateName("x".into()));
    }

    #[test]
    fn duplicate_transition_names_rejected() {
        let mut b = NetBuilder::new("dup");
        b.place("p");
        b.transition("t");
        b.transition("t");
        assert_eq!(b.build().unwrap_err(), NetError::DuplicateName("t".into()));
    }

    #[test]
    fn empty_net_rejected() {
        let b = NetBuilder::new("empty");
        assert_eq!(b.build().unwrap_err(), NetError::EmptyNet);
        let mut only_places = NetBuilder::new("p-only");
        only_places.place("p");
        assert_eq!(only_places.build().unwrap_err(), NetError::EmptyNet);
    }

    #[test]
    fn zero_weight_arc_rejected() {
        let mut b = NetBuilder::new("zero");
        let p = b.place("p");
        let t = b.transition("t");
        b.arc_in(p, t, 0);
        assert!(matches!(
            b.build().unwrap_err(),
            NetError::ZeroWeightArc { .. }
        ));
    }

    #[test]
    fn read_arc_preserves_tokens() {
        use crate::marking::Marking;
        let mut b = NetBuilder::new("read");
        let clock = b.place("clock");
        let out = b.place("out");
        let t = b.transition("tick-gated");
        b.read_arc(clock, t);
        b.arc_out(t, out, 1);
        let net = b.build().unwrap();
        let m = Marking::from_pairs(net.place_count(), &[(clock, 1)]);
        let m2 = net.fire(&m, t).unwrap();
        assert_eq!(m2.tokens(clock), 1, "read arc must not consume the token");
        assert_eq!(m2.tokens(out), 1);
    }

    #[test]
    fn builder_counts_track_additions() {
        let mut b = NetBuilder::new("counts");
        assert_eq!(b.place_count(), 0);
        b.place("a");
        b.place_with_capacity("b", 4);
        b.transition("t");
        assert_eq!(b.place_count(), 2);
        assert_eq!(b.transition_count(), 1);
    }

    #[test]
    fn builder_is_reusable_after_build() {
        let mut b = NetBuilder::new("reuse");
        let p = b.place("p");
        let t = b.transition("t");
        b.arc_in(p, t, 1);
        let first = b.build().unwrap();
        // Extend the builder and build again; the first net is unaffected.
        let q = b.place("q");
        b.arc_out(t, q, 1);
        let second = b.build().unwrap();
        assert_eq!(first.place_count(), 1);
        assert_eq!(second.place_count(), 2);
    }
}
