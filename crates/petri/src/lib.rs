//! # dmps-petri
//!
//! Place/transition Petri net substrate used by the DMPS reproduction of
//! *"Using the Floor Control Mechanism in Distributed Multimedia Presentation
//! System"* (Shih et al., ICDCS 2001 Workshops).
//!
//! The paper builds its presentation model (DOCPN) as an extension of the
//! classical Petri net `C = (P, T, I, O)` of Peterson/Murata. This crate
//! provides that classical substrate:
//!
//! * [`PetriNet`] — the structure `(P, T, I, O)` with weighted arcs and
//!   optional place capacities,
//! * [`Marking`] — token distributions and the firing rule,
//! * [`NetBuilder`] — an ergonomic way to assemble nets,
//! * [`reachability`] — explicit reachability-graph construction and the
//!   Karp–Miller coverability tree,
//! * [`analysis`] — incidence matrix, P/T-invariants, structural and
//!   behavioural boundedness, liveness, conservation and deadlock checks,
//! * [`dot`] — Graphviz export used to regenerate Figure 1 of the paper.
//!
//! # Example
//!
//! ```
//! use dmps_petri::{NetBuilder, Marking};
//!
//! // A tiny producer/consumer net.
//! let mut b = NetBuilder::new("producer-consumer");
//! let buffer = b.place("buffer");
//! let produce = b.transition("produce");
//! let consume = b.transition("consume");
//! b.arc_out(produce, buffer, 1);
//! b.arc_in(buffer, consume, 1);
//! let net = b.build().expect("valid net");
//!
//! let m0 = Marking::empty(net.place_count());
//! assert!(net.enabled(&m0, produce));
//! assert!(!net.enabled(&m0, consume));
//! let m1 = net.fire(&m0, produce).expect("produce is enabled");
//! assert!(net.enabled(&m1, consume));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod builder;
pub mod dot;
pub mod error;
pub mod firing;
pub mod marking;
pub mod net;
pub mod reachability;

pub use builder::NetBuilder;
pub use error::{NetError, Result};
pub use firing::{FiringSequence, FiringStep};
pub use marking::Marking;
pub use net::{Arc, PetriNet, Place, PlaceId, Transition, TransitionId};
pub use reachability::{CoverabilityTree, ReachabilityGraph, ReachabilityLimits};
