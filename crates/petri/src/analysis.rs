//! Structural and behavioural analysis of Petri nets.
//!
//! Provides the incidence matrix, P- and T-invariants (via rational Gaussian
//! elimination of the incidence matrix kernel), conservation, behavioural
//! boundedness/safeness, and the liveness levels used when verifying the
//! compiled DOCPN presentation nets.

use serde::{Deserialize, Serialize};

use crate::error::Result;
use crate::marking::Marking;
use crate::net::{PetriNet, PlaceId, TransitionId};
use crate::reachability::{CoverabilityTree, ReachabilityGraph, ReachabilityLimits};

/// The incidence matrix `C[p][t] = O(t)(p) - I(t)(p)` of a net.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IncidenceMatrix {
    rows: usize,
    cols: usize,
    /// Row-major entries, one row per place, one column per transition.
    entries: Vec<i64>,
}

impl IncidenceMatrix {
    /// Computes the incidence matrix of a net.
    pub fn of(net: &PetriNet) -> Self {
        let rows = net.place_count();
        let cols = net.transition_count();
        let mut entries = vec![0i64; rows * cols];
        for t in net.transitions() {
            for arc in net.input_arcs(t) {
                entries[arc.place.0 * cols + t.0] -= arc.weight as i64;
            }
            for arc in net.output_arcs(t) {
                entries[arc.place.0 * cols + t.0] += arc.weight as i64;
            }
        }
        IncidenceMatrix {
            rows,
            cols,
            entries,
        }
    }

    /// Number of rows (places).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (transitions).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The entry for `(place, transition)`.
    pub fn entry(&self, p: PlaceId, t: TransitionId) -> i64 {
        self.entries[p.0 * self.cols + t.0]
    }

    /// Applies the state equation `M' = M + C·x` for a firing-count vector.
    ///
    /// Returns `None` when the result would be negative in some place (the
    /// firing-count vector is not realizable from `m` in any order — note the
    /// converse does not hold in general).
    pub fn apply(&self, m: &Marking, firing_counts: &[u64]) -> Option<Marking> {
        if firing_counts.len() != self.cols || m.len() != self.rows {
            return None;
        }
        let mut out = Vec::with_capacity(self.rows);
        for p in 0..self.rows {
            let mut v = m.tokens(PlaceId(p)) as i64;
            for (t, &count) in firing_counts.iter().enumerate() {
                v += self.entries[p * self.cols + t] * count as i64;
            }
            if v < 0 {
                return None;
            }
            out.push(v as u64);
        }
        Some(Marking::new(out))
    }

    /// Transposes the matrix (used to compute T-invariants from the same
    /// kernel routine as P-invariants).
    pub fn transpose(&self) -> IncidenceMatrix {
        let mut entries = vec![0i64; self.rows * self.cols];
        for r in 0..self.rows {
            for c in 0..self.cols {
                entries[c * self.rows + r] = self.entries[r * self.cols + c];
            }
        }
        IncidenceMatrix {
            rows: self.cols,
            cols: self.rows,
            entries,
        }
    }

    /// Computes a basis of the left null space `{y : yᵀ·C = 0}` restricted to
    /// non-negative integer vectors found by the Farkas-style elimination.
    /// For P-invariants call on the matrix itself; for T-invariants call on
    /// the transpose.
    pub fn nonnegative_kernel(&self) -> Vec<Vec<u64>> {
        // Farkas algorithm: maintain a table [D | B], D initialised to C and
        // B to the identity; eliminate one column of D at a time by forming
        // non-negative combinations of rows with opposite signs.
        let n = self.rows;
        let m = self.cols;
        // Each row: (d: Vec<i64> of len m, b: Vec<i64> of len n)
        let mut table: Vec<(Vec<i64>, Vec<i64>)> = (0..n)
            .map(|i| {
                let d: Vec<i64> = (0..m).map(|j| self.entries[i * m + j]).collect();
                let mut b = vec![0i64; n];
                b[i] = 1;
                (d, b)
            })
            .collect();

        for col in 0..m {
            let mut next: Vec<(Vec<i64>, Vec<i64>)> = Vec::new();
            // Keep rows with zero in this column.
            for row in &table {
                if row.0[col] == 0 {
                    next.push(row.clone());
                }
            }
            // Combine rows with opposite signs.
            let positives: Vec<&(Vec<i64>, Vec<i64>)> =
                table.iter().filter(|r| r.0[col] > 0).collect();
            let negatives: Vec<&(Vec<i64>, Vec<i64>)> =
                table.iter().filter(|r| r.0[col] < 0).collect();
            for p in &positives {
                for q in &negatives {
                    let a = p.0[col];
                    let b = -q.0[col];
                    let g = gcd(a as u64, b as u64) as i64;
                    let (ca, cb) = (b / g, a / g);
                    let d: Vec<i64> =
                        p.0.iter()
                            .zip(q.0.iter())
                            .map(|(x, y)| ca * x + cb * y)
                            .collect();
                    let bv: Vec<i64> =
                        p.1.iter()
                            .zip(q.1.iter())
                            .map(|(x, y)| ca * x + cb * y)
                            .collect();
                    // Normalize D and B *jointly* so the row combination they
                    // describe stays consistent.
                    let row = normalize_row(d, bv);
                    if !next.contains(&row) {
                        next.push(row);
                    }
                }
            }
            table = next;
            // Guard against combinatorial blow-up on pathological nets.
            if table.len() > 4096 {
                table.truncate(4096);
            }
        }

        let mut result: Vec<Vec<u64>> = Vec::new();
        for (_, b) in table {
            if b.iter().all(|&x| x == 0) {
                continue;
            }
            let v: Vec<u64> = b.iter().map(|&x| x.max(0) as u64).collect();
            if !result.contains(&v) {
                result.push(v);
            }
        }
        result
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a.max(1)
    } else {
        gcd(b, a % b)
    }
}

#[cfg_attr(not(test), allow(dead_code))]
fn normalize(v: Vec<i64>) -> Vec<i64> {
    let g = v
        .iter()
        .filter(|&&x| x != 0)
        .fold(0u64, |acc, &x| gcd(acc, x.unsigned_abs()));
    if g <= 1 {
        v
    } else {
        v.into_iter().map(|x| x / g as i64).collect()
    }
}

/// Divides a combined Farkas row (its D part and its B part) by the greatest
/// common divisor of *all* its entries, keeping the two parts consistent.
fn normalize_row(d: Vec<i64>, b: Vec<i64>) -> (Vec<i64>, Vec<i64>) {
    let g = d
        .iter()
        .chain(b.iter())
        .filter(|&&x| x != 0)
        .fold(0u64, |acc, &x| gcd(acc, x.unsigned_abs()));
    if g <= 1 {
        (d, b)
    } else {
        (
            d.into_iter().map(|x| x / g as i64).collect(),
            b.into_iter().map(|x| x / g as i64).collect(),
        )
    }
}

/// A weighted P-invariant: `yᵀ · C = 0`, so `yᵀ · M` is constant over all
/// reachable markings.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PInvariant {
    /// Weight per place.
    pub weights: Vec<u64>,
}

/// A T-invariant: `C · x = 0`, a firing-count vector returning the net to the
/// marking it started from.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TInvariant {
    /// Firing count per transition.
    pub counts: Vec<u64>,
}

/// Liveness classification of a single transition (Murata's levels, collapsed
/// to the three the scheduler cares about).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Liveness {
    /// The transition can never fire from the initial marking (dead, L0).
    Dead,
    /// The transition can fire at least once (L1) but not from every
    /// reachable marking's future.
    QuasiLive,
    /// From every reachable marking there is a continuation firing the
    /// transition (L4-live within the explored graph).
    Live,
}

/// Summary report produced by [`analyze`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalysisReport {
    /// Whether the net is bounded from the initial marking.
    pub bounded: bool,
    /// Whether every place bound is ≤ 1 (the net is safe).
    pub safe: bool,
    /// The behavioural bound of each place (valid when `bounded`).
    pub place_bounds: Vec<u64>,
    /// Per-transition liveness.
    pub liveness: Vec<Liveness>,
    /// Whether any reachable marking is dead.
    pub has_deadlock: bool,
    /// Number of reachable markings explored.
    pub state_count: usize,
    /// Whether the exploration covered the full state space.
    pub exploration_complete: bool,
    /// P-invariants found (semi-positive basis).
    pub p_invariants: Vec<PInvariant>,
    /// T-invariants found (semi-positive basis).
    pub t_invariants: Vec<TInvariant>,
    /// Whether the net is conservative (covered by a positive P-invariant).
    pub conservative: bool,
}

/// Runs the full structural + behavioural analysis from an initial marking.
///
/// # Errors
///
/// Returns an error when the marking does not match the net. A truncated
/// exploration is reported via [`AnalysisReport::exploration_complete`]
/// rather than as an error.
pub fn analyze(
    net: &PetriNet,
    initial: &Marking,
    limits: ReachabilityLimits,
) -> Result<AnalysisReport> {
    net.check_marking(initial)?;
    let cover = CoverabilityTree::build(net, initial, limits.max_states.max(1024));
    let bounded = match &cover {
        Ok(tree) => tree.is_bounded(),
        // If the coverability tree itself blew past the limit we
        // conservatively report unbounded-unknown as unbounded=false only if
        // reachability also truncates; use reachability below.
        Err(_) => false,
    };
    let graph = ReachabilityGraph::build(net, initial, limits)?;
    let place_bounds = graph.place_bounds();
    let safe = place_bounds.iter().all(|&b| b <= 1);
    let has_deadlock = !graph.deadlocks(net).is_empty();

    let liveness = classify_liveness(net, &graph);

    let inc = IncidenceMatrix::of(net);
    let p_invariants: Vec<PInvariant> = inc
        .nonnegative_kernel()
        .into_iter()
        .map(|weights| PInvariant { weights })
        .collect();
    let t_invariants: Vec<TInvariant> = inc
        .transpose()
        .nonnegative_kernel()
        .into_iter()
        .map(|counts| TInvariant { counts })
        .collect();
    let conservative = {
        // Conservative iff some combination of P-invariants covers every
        // place with a positive weight; approximate by the component-wise sum.
        let mut covered = vec![false; net.place_count()];
        for inv in &p_invariants {
            for (i, &w) in inv.weights.iter().enumerate() {
                if w > 0 {
                    covered[i] = true;
                }
            }
        }
        !p_invariants.is_empty() && covered.iter().all(|&c| c)
    };

    Ok(AnalysisReport {
        bounded: bounded && graph.is_complete(),
        safe,
        place_bounds,
        liveness,
        has_deadlock,
        state_count: graph.state_count(),
        exploration_complete: graph.is_complete(),
        p_invariants,
        t_invariants,
        conservative,
    })
}

/// Classifies the liveness of every transition with respect to the explored
/// reachability graph.
pub fn classify_liveness(net: &PetriNet, graph: &ReachabilityGraph) -> Vec<Liveness> {
    let tc = net.transition_count();
    let fireable = graph.fireable_transitions(tc);
    // For "Live": from every reachable marking, the transition must be
    // fireable somewhere in that marking's forward closure. Compute, per
    // transition, the set of graph nodes that can reach an edge labelled t
    // (backwards closure over edges), then check it covers all nodes.
    let n = graph.state_count();
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in graph.edges() {
        preds[e.to].push(e.from);
    }
    (0..tc)
        .map(|ti| {
            if !fireable[ti] {
                return Liveness::Dead;
            }
            // Seed: nodes with an outgoing edge labelled ti.
            let mut can_reach = vec![false; n];
            let mut stack: Vec<usize> = graph
                .edges()
                .iter()
                .filter(|e| e.transition.0 == ti)
                .map(|e| e.from)
                .collect();
            for &s in &stack {
                can_reach[s] = true;
            }
            while let Some(x) = stack.pop() {
                for &p in &preds[x] {
                    if !can_reach[p] {
                        can_reach[p] = true;
                        stack.push(p);
                    }
                }
            }
            if can_reach.iter().all(|&b| b) {
                Liveness::Live
            } else {
                Liveness::QuasiLive
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetBuilder;

    fn cycle() -> (PetriNet, Marking) {
        let mut b = NetBuilder::new("cycle");
        let a = b.place("a");
        let c = b.place("c");
        let t0 = b.transition("fwd");
        let t1 = b.transition("back");
        b.arc_in(a, t0, 1);
        b.arc_out(t0, c, 1);
        b.arc_in(c, t1, 1);
        b.arc_out(t1, a, 1);
        let net = b.build().unwrap();
        let m = Marking::from_pairs(net.place_count(), &[(a, 1)]);
        (net, m)
    }

    #[test]
    fn incidence_matrix_entries() {
        let (net, _) = cycle();
        let c = IncidenceMatrix::of(&net);
        let a = net.place_by_name("a").unwrap();
        let cc = net.place_by_name("c").unwrap();
        let fwd = net.transition_by_name("fwd").unwrap();
        let back = net.transition_by_name("back").unwrap();
        assert_eq!(c.entry(a, fwd), -1);
        assert_eq!(c.entry(cc, fwd), 1);
        assert_eq!(c.entry(a, back), 1);
        assert_eq!(c.entry(cc, back), -1);
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 2);
    }

    #[test]
    fn state_equation_applies() {
        let (net, m0) = cycle();
        let c = IncidenceMatrix::of(&net);
        // fire fwd once: token moves from a to c.
        let m1 = c.apply(&m0, &[1, 0]).unwrap();
        assert_eq!(m1.tokens(net.place_by_name("c").unwrap()), 1);
        // fire fwd and back once each: back to the start.
        let m2 = c.apply(&m0, &[1, 1]).unwrap();
        assert_eq!(m2, m0);
        // firing back first is not realizable: negative intermediate, but the
        // state equation only checks the net effect, which here is fine; an
        // unrealizable *net* effect must return None:
        assert!(c.apply(&m0, &[0, 2]).is_none());
        // dimension mismatch
        assert!(c.apply(&m0, &[1]).is_none());
    }

    #[test]
    fn cycle_has_p_and_t_invariants() {
        let (net, m0) = cycle();
        let report = analyze(&net, &m0, ReachabilityLimits::default()).unwrap();
        assert!(report.bounded);
        assert!(report.safe);
        assert!(!report.has_deadlock);
        assert!(report.conservative);
        assert_eq!(report.place_bounds, vec![1, 1]);
        // The single P-invariant is a+c = const; the single T-invariant is
        // fire fwd and back equally often.
        assert!(report
            .p_invariants
            .iter()
            .any(|inv| inv.weights == vec![1, 1]));
        assert!(report
            .t_invariants
            .iter()
            .any(|inv| inv.counts == vec![1, 1]));
        assert_eq!(report.liveness, vec![Liveness::Live, Liveness::Live]);
        assert!(report.exploration_complete);
    }

    #[test]
    fn dead_transition_detected() {
        let mut b = NetBuilder::new("dead-t");
        let p = b.place("p");
        let q = b.place("q");
        let live = b.transition("live");
        let dead = b.transition("dead");
        b.arc_in(p, live, 1);
        b.arc_out(live, p, 1);
        b.arc_in(q, dead, 1);
        let net = b.build().unwrap();
        let m0 = Marking::from_pairs(net.place_count(), &[(p, 1)]);
        let report = analyze(&net, &m0, ReachabilityLimits::default()).unwrap();
        assert_eq!(report.liveness[live.0], Liveness::Live);
        assert_eq!(report.liveness[dead.0], Liveness::Dead);
    }

    #[test]
    fn quasi_live_transition_detected() {
        // A net where t can fire once and then never again, while u loops.
        let mut b = NetBuilder::new("quasi");
        let once = b.place("once");
        let looped = b.place("looped");
        let t = b.transition("one-shot");
        let u = b.transition("loop");
        b.arc_in(once, t, 1);
        b.arc_out(t, looped, 1);
        b.arc_in(looped, u, 1);
        b.arc_out(u, looped, 1);
        let net = b.build().unwrap();
        let m0 = Marking::from_pairs(net.place_count(), &[(once, 1), (looped, 1)]);
        let report = analyze(&net, &m0, ReachabilityLimits::default()).unwrap();
        assert_eq!(report.liveness[t.0], Liveness::QuasiLive);
        assert_eq!(report.liveness[u.0], Liveness::Live);
    }

    #[test]
    fn unbounded_net_reported() {
        let mut b = NetBuilder::new("unbounded");
        let seed = b.place("seed");
        let sink = b.place("sink");
        let t = b.transition("spawn");
        b.read_arc(seed, t);
        b.arc_out(t, sink, 1);
        let net = b.build().unwrap();
        let m0 = Marking::from_pairs(net.place_count(), &[(seed, 1)]);
        let report = analyze(
            &net,
            &m0,
            ReachabilityLimits {
                max_states: 50,
                max_edges: 200,
            },
        )
        .unwrap();
        assert!(!report.bounded);
        assert!(!report.exploration_complete);
    }

    #[test]
    fn deadlock_reported() {
        let mut b = NetBuilder::new("dl");
        let p = b.place("p");
        let q = b.place("q");
        let t = b.transition("t");
        b.arc_in(p, t, 1);
        b.arc_out(t, q, 1);
        let net = b.build().unwrap();
        let m0 = Marking::from_pairs(net.place_count(), &[(p, 1)]);
        let report = analyze(&net, &m0, ReachabilityLimits::default()).unwrap();
        assert!(report.has_deadlock);
    }

    #[test]
    fn gcd_and_normalize() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(5, 0), 5);
        assert_eq!(normalize(vec![2, 4, 6]), vec![1, 2, 3]);
        assert_eq!(normalize(vec![0, 0]), vec![0, 0]);
        assert_eq!(normalize(vec![3, 5]), vec![3, 5]);
    }

    #[test]
    fn transpose_swaps_dimensions() {
        let (net, _) = cycle();
        let c = IncidenceMatrix::of(&net);
        let t = c.transpose();
        assert_eq!(t.rows(), c.cols());
        assert_eq!(t.cols(), c.rows());
        assert_eq!(
            t.entry(PlaceId(0), TransitionId(1)),
            c.entry(PlaceId(1), TransitionId(0))
        );
    }
}
