//! Token distributions over the places of a net.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::{NetError, Result};
use crate::net::PlaceId;

/// A marking `M : P -> N` assigning a token count to every place.
///
/// Markings are dense vectors indexed by [`PlaceId`]; they are intentionally
/// decoupled from any particular [`crate::PetriNet`] so that schedulers and
/// reachability analyses can store millions of them compactly.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default)]
pub struct Marking(Vec<u64>);

impl Marking {
    /// Creates a marking of `places` places, all empty.
    pub fn empty(places: usize) -> Self {
        Marking(vec![0; places])
    }

    /// Creates a marking from an explicit token vector.
    pub fn new(tokens: Vec<u64>) -> Self {
        Marking(tokens)
    }

    /// Creates a marking of `places` places with the given `(place, tokens)`
    /// pairs set and every other place empty.
    ///
    /// # Panics
    ///
    /// Panics if any pair refers to a place index `>= places`.
    pub fn from_pairs(places: usize, pairs: &[(PlaceId, u64)]) -> Self {
        let mut m = Marking::empty(places);
        for &(p, n) in pairs {
            assert!(p.0 < places, "place {p} out of range for {places} places");
            m.0[p.0] = n;
        }
        m
    }

    /// Number of places covered by this marking.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` when the marking covers zero places.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Tokens currently in place `p` (zero when out of range).
    pub fn tokens(&self, p: PlaceId) -> u64 {
        self.0.get(p.0).copied().unwrap_or(0)
    }

    /// Sets the token count of place `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn set_tokens(&mut self, p: PlaceId, n: u64) {
        self.0[p.0] = n;
    }

    /// Adds `n` tokens to place `p`, saturating at `u64::MAX`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn add_tokens(&mut self, p: PlaceId, n: u64) {
        self.0[p.0] = self.0[p.0].saturating_add(n);
    }

    /// Removes `n` tokens from place `p`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::NotEnabled`]-adjacent failure as
    /// [`NetError::UnknownPlace`] if `p` is out of range, or an error when
    /// the place holds fewer than `n` tokens.
    pub fn remove_tokens(&mut self, p: PlaceId, n: u64) -> Result<()> {
        let slot = self.0.get_mut(p.0).ok_or(NetError::UnknownPlace(p))?;
        if *slot < n {
            return Err(NetError::CapacityExceeded {
                place: p,
                capacity: *slot,
                attempted: n,
            });
        }
        *slot -= n;
        Ok(())
    }

    /// Total number of tokens in the marking.
    pub fn total_tokens(&self) -> u64 {
        self.0.iter().sum()
    }

    /// Returns `true` when every component of `self` is `>=` the matching
    /// component of `other` (the covering relation used by the Karp–Miller
    /// coverability construction).
    pub fn covers(&self, other: &Marking) -> bool {
        self.0.len() == other.0.len() && self.0.iter().zip(other.0.iter()).all(|(a, b)| a >= b)
    }

    /// Returns the places where `self` strictly exceeds `other`.
    pub fn strictly_greater_places(&self, other: &Marking) -> Vec<PlaceId> {
        self.0
            .iter()
            .zip(other.0.iter())
            .enumerate()
            .filter(|(_, (a, b))| a > b)
            .map(|(i, _)| PlaceId(i))
            .collect()
    }

    /// Immutable view of the raw token vector.
    pub fn as_slice(&self) -> &[u64] {
        &self.0
    }

    /// Consumes the marking and returns the raw token vector.
    pub fn into_vec(self) -> Vec<u64> {
        self.0
    }

    /// Iterates over `(PlaceId, tokens)` pairs for non-empty places.
    pub fn iter_nonempty(&self) -> impl Iterator<Item = (PlaceId, u64)> + '_ {
        self.0
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (PlaceId(i), n))
    }
}

impl fmt::Display for Marking {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        let mut first = true;
        for (p, n) in self.iter_nonempty() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{p}:{n}")?;
            first = false;
        }
        if first {
            write!(f, "empty")?;
        }
        write!(f, "]")
    }
}

impl FromIterator<u64> for Marking {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        Marking(iter.into_iter().collect())
    }
}

impl From<Vec<u64>> for Marking {
    fn from(v: Vec<u64>) -> Self {
        Marking(v)
    }
}

impl dmps_wire::Wire for Marking {
    fn encode(&self, w: &mut dmps_wire::Writer) {
        self.0.encode(w);
    }

    fn decode(r: &mut dmps_wire::Reader<'_>) -> dmps_wire::Result<Self> {
        Ok(Marking(Vec::<u64>::decode(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_marking_has_no_tokens() {
        let m = Marking::empty(5);
        assert_eq!(m.len(), 5);
        assert_eq!(m.total_tokens(), 0);
        assert!(!m.is_empty());
        assert!(Marking::empty(0).is_empty());
    }

    #[test]
    fn from_pairs_sets_only_given_places() {
        let m = Marking::from_pairs(4, &[(PlaceId(1), 3), (PlaceId(3), 1)]);
        assert_eq!(m.tokens(PlaceId(0)), 0);
        assert_eq!(m.tokens(PlaceId(1)), 3);
        assert_eq!(m.tokens(PlaceId(2)), 0);
        assert_eq!(m.tokens(PlaceId(3)), 1);
        assert_eq!(m.total_tokens(), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_pairs_panics_out_of_range() {
        let _ = Marking::from_pairs(2, &[(PlaceId(5), 1)]);
    }

    #[test]
    fn add_remove_tokens() {
        let mut m = Marking::empty(2);
        m.add_tokens(PlaceId(0), 2);
        assert_eq!(m.tokens(PlaceId(0)), 2);
        m.remove_tokens(PlaceId(0), 1).unwrap();
        assert_eq!(m.tokens(PlaceId(0)), 1);
        assert!(m.remove_tokens(PlaceId(0), 5).is_err());
        assert!(m.remove_tokens(PlaceId(9), 1).is_err());
    }

    #[test]
    fn add_saturates() {
        let mut m = Marking::empty(1);
        m.add_tokens(PlaceId(0), u64::MAX);
        m.add_tokens(PlaceId(0), 10);
        assert_eq!(m.tokens(PlaceId(0)), u64::MAX);
    }

    #[test]
    fn covering_relation() {
        let a = Marking::new(vec![2, 1, 0]);
        let b = Marking::new(vec![1, 1, 0]);
        assert!(a.covers(&b));
        assert!(!b.covers(&a));
        assert!(a.covers(&a));
        assert_eq!(a.strictly_greater_places(&b), vec![PlaceId(0)]);
        // Different lengths never cover each other.
        assert!(!a.covers(&Marking::new(vec![0, 0])));
    }

    #[test]
    fn display_formats_nonempty_places() {
        let m = Marking::from_pairs(3, &[(PlaceId(2), 4)]);
        assert_eq!(m.to_string(), "[p2:4]");
        assert_eq!(Marking::empty(3).to_string(), "[empty]");
    }

    #[test]
    fn out_of_range_tokens_is_zero() {
        let m = Marking::empty(1);
        assert_eq!(m.tokens(PlaceId(10)), 0);
    }

    #[test]
    fn iter_nonempty_skips_zero_places() {
        let m = Marking::new(vec![0, 2, 0, 1]);
        let pairs: Vec<_> = m.iter_nonempty().collect();
        assert_eq!(pairs, vec![(PlaceId(1), 2), (PlaceId(3), 1)]);
    }

    #[test]
    fn collect_from_iterator() {
        let m: Marking = vec![1u64, 2, 3].into_iter().collect();
        assert_eq!(m.as_slice(), &[1, 2, 3]);
        let v: Vec<u64> = m.clone().into_vec();
        assert_eq!(v, vec![1, 2, 3]);
        let m2: Marking = Marking::from(vec![1, 2, 3]);
        assert_eq!(m, m2);
    }

    #[test]
    fn markings_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Marking::new(vec![1, 0]));
        set.insert(Marking::new(vec![1, 0]));
        set.insert(Marking::new(vec![0, 1]));
        assert_eq!(set.len(), 2);
        assert!(Marking::new(vec![0, 1]) < Marking::new(vec![1, 0]));
    }
}
