//! The Petri net structure `C = (P, T, I, O)`.
//!
//! This module follows the classical definition quoted in Section 2.1 of the
//! paper: a finite set of places `P`, a finite set of transitions `T`
//! (disjoint from `P`), an input function `I : T -> bag(P)` and an output
//! function `O : T -> bag(P)`. Bags (multisets) of places are represented as
//! weighted arcs.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::{NetError, Result};
use crate::marking::Marking;

/// Identifier of a place within a [`PetriNet`].
///
/// Place identifiers are dense indices assigned in creation order by
/// [`crate::NetBuilder`]; they index directly into [`Marking`] vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PlaceId(pub usize);

/// Identifier of a transition within a [`PetriNet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TransitionId(pub usize);

impl PlaceId {
    /// Returns the underlying dense index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl TransitionId {
    /// Returns the underlying dense index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for PlaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for TransitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A place (condition / media-resource holder) of the net.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Place {
    /// Human-readable name, unique within the net.
    pub name: String,
    /// Optional capacity bound; `None` means unbounded.
    pub capacity: Option<u64>,
}

/// A transition (event / synchronization point) of the net.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transition {
    /// Human-readable name, unique within the net.
    pub name: String,
}

/// A weighted arc between a place and a transition.
///
/// The direction is implied by which collection the arc is stored in:
/// input arcs go from a place to a transition, output arcs from a transition
/// to a place.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Arc {
    /// The place endpoint.
    pub place: PlaceId,
    /// The arc weight (multiplicity in the bag); always ≥ 1.
    pub weight: u64,
}

/// An immutable place/transition net with weighted arcs.
///
/// Construct nets through [`crate::NetBuilder`]; the structure is validated
/// once at build time so the exposed query and firing methods never need to
/// re-validate identifiers originating from the same net.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PetriNet {
    name: String,
    places: Vec<Place>,
    transitions: Vec<Transition>,
    /// `inputs[t]` is the bag `I(t)` as weighted arcs.
    inputs: Vec<Vec<Arc>>,
    /// `outputs[t]` is the bag `O(t)` as weighted arcs.
    outputs: Vec<Vec<Arc>>,
    place_index: HashMap<String, PlaceId>,
    transition_index: HashMap<String, TransitionId>,
}

impl PetriNet {
    /// Assembles a net from raw parts. Used by [`crate::NetBuilder::build`].
    pub(crate) fn from_parts(
        name: String,
        places: Vec<Place>,
        transitions: Vec<Transition>,
        inputs: Vec<Vec<Arc>>,
        outputs: Vec<Vec<Arc>>,
    ) -> Result<Self> {
        if places.is_empty() || transitions.is_empty() {
            return Err(NetError::EmptyNet);
        }
        let mut place_index = HashMap::with_capacity(places.len());
        for (i, p) in places.iter().enumerate() {
            if place_index.insert(p.name.clone(), PlaceId(i)).is_some() {
                return Err(NetError::DuplicateName(p.name.clone()));
            }
        }
        let mut transition_index = HashMap::with_capacity(transitions.len());
        for (i, t) in transitions.iter().enumerate() {
            if transition_index
                .insert(t.name.clone(), TransitionId(i))
                .is_some()
            {
                return Err(NetError::DuplicateName(t.name.clone()));
            }
        }
        for (ti, arcs) in inputs.iter().chain(outputs.iter()).enumerate() {
            for arc in arcs {
                if arc.place.0 >= places.len() {
                    return Err(NetError::UnknownPlace(arc.place));
                }
                if arc.weight == 0 {
                    return Err(NetError::ZeroWeightArc {
                        place: arc.place,
                        transition: TransitionId(ti % transitions.len()),
                    });
                }
            }
        }
        // Normalize the bag representation: merge duplicate arcs touching the
        // same place by summing their weights, so enabledness checks can look
        // at each place exactly once.
        let merge = |arcs: Vec<Vec<Arc>>| -> Vec<Vec<Arc>> {
            arcs.into_iter()
                .map(|list| {
                    let mut merged: Vec<Arc> = Vec::with_capacity(list.len());
                    for arc in list {
                        match merged.iter_mut().find(|a| a.place == arc.place) {
                            Some(existing) => {
                                existing.weight = existing.weight.saturating_add(arc.weight)
                            }
                            None => merged.push(arc),
                        }
                    }
                    merged
                })
                .collect()
        };
        let inputs = merge(inputs);
        let outputs = merge(outputs);
        Ok(PetriNet {
            name,
            places,
            transitions,
            inputs,
            outputs,
            place_index,
            transition_index,
        })
    }

    /// Returns the net's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the number of places `|P|`.
    pub fn place_count(&self) -> usize {
        self.places.len()
    }

    /// Returns the number of transitions `|T|`.
    pub fn transition_count(&self) -> usize {
        self.transitions.len()
    }

    /// Returns the place with the given identifier.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownPlace`] if the identifier is out of range.
    pub fn place(&self, id: PlaceId) -> Result<&Place> {
        self.places.get(id.0).ok_or(NetError::UnknownPlace(id))
    }

    /// Returns the transition with the given identifier.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownTransition`] if the identifier is out of range.
    pub fn transition(&self, id: TransitionId) -> Result<&Transition> {
        self.transitions
            .get(id.0)
            .ok_or(NetError::UnknownTransition(id))
    }

    /// Looks up a place by name.
    pub fn place_by_name(&self, name: &str) -> Option<PlaceId> {
        self.place_index.get(name).copied()
    }

    /// Looks up a transition by name.
    pub fn transition_by_name(&self, name: &str) -> Option<TransitionId> {
        self.transition_index.get(name).copied()
    }

    /// Iterates over all place identifiers in index order.
    pub fn places(&self) -> impl Iterator<Item = PlaceId> + '_ {
        (0..self.places.len()).map(PlaceId)
    }

    /// Iterates over all transition identifiers in index order.
    pub fn transitions(&self) -> impl Iterator<Item = TransitionId> + '_ {
        (0..self.transitions.len()).map(TransitionId)
    }

    /// Returns the input bag `I(t)` of a transition as weighted arcs.
    ///
    /// # Panics
    ///
    /// Panics if `t` does not belong to this net.
    pub fn input_arcs(&self, t: TransitionId) -> &[Arc] {
        &self.inputs[t.0]
    }

    /// Returns the output bag `O(t)` of a transition as weighted arcs.
    ///
    /// # Panics
    ///
    /// Panics if `t` does not belong to this net.
    pub fn output_arcs(&self, t: TransitionId) -> &[Arc] {
        &self.outputs[t.0]
    }

    /// Returns the preset `•t` (places with an arc into `t`).
    pub fn preset(&self, t: TransitionId) -> Vec<PlaceId> {
        self.inputs[t.0].iter().map(|a| a.place).collect()
    }

    /// Returns the postset `t•` (places with an arc out of `t`).
    pub fn postset(&self, t: TransitionId) -> Vec<PlaceId> {
        self.outputs[t.0].iter().map(|a| a.place).collect()
    }

    /// Returns the transitions that consume from place `p` (the postset `p•`).
    pub fn place_postset(&self, p: PlaceId) -> Vec<TransitionId> {
        self.transitions()
            .filter(|&t| self.inputs[t.0].iter().any(|a| a.place == p))
            .collect()
    }

    /// Returns the transitions that produce into place `p` (the preset `•p`).
    pub fn place_preset(&self, p: PlaceId) -> Vec<TransitionId> {
        self.transitions()
            .filter(|&t| self.outputs[t.0].iter().any(|a| a.place == p))
            .collect()
    }

    /// Returns `true` when transition `t` is enabled in marking `m`:
    /// every input place holds at least the arc weight, and firing would not
    /// exceed any output place capacity.
    ///
    /// # Panics
    ///
    /// Panics if the marking size does not match the net (use
    /// [`PetriNet::check_marking`] for a fallible check first when the
    /// marking comes from an untrusted source).
    pub fn enabled(&self, m: &Marking, t: TransitionId) -> bool {
        assert_eq!(
            m.len(),
            self.places.len(),
            "marking size must match the net"
        );
        let tokens_ok = self.inputs[t.0]
            .iter()
            .all(|a| m.tokens(a.place) >= a.weight);
        if !tokens_ok {
            return false;
        }
        // Capacity check: net tokens after firing must respect capacities.
        for arc in &self.outputs[t.0] {
            if let Some(cap) = self.places[arc.place.0].capacity {
                let consumed: u64 = self.inputs[t.0]
                    .iter()
                    .filter(|a| a.place == arc.place)
                    .map(|a| a.weight)
                    .sum();
                let after = m.tokens(arc.place) - consumed.min(m.tokens(arc.place)) + arc.weight;
                if after > cap {
                    return false;
                }
            }
        }
        true
    }

    /// Validates that a marking has the right dimension for this net.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::MarkingSizeMismatch`] when the sizes differ.
    pub fn check_marking(&self, m: &Marking) -> Result<()> {
        if m.len() != self.places.len() {
            return Err(NetError::MarkingSizeMismatch {
                expected: self.places.len(),
                actual: m.len(),
            });
        }
        Ok(())
    }

    /// Returns all transitions enabled in `m`, in index order.
    pub fn enabled_transitions(&self, m: &Marking) -> Vec<TransitionId> {
        self.transitions().filter(|&t| self.enabled(m, t)).collect()
    }

    /// Fires transition `t` in marking `m`, returning the successor marking.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::NotEnabled`] if `t` is not enabled in `m`, and
    /// [`NetError::MarkingSizeMismatch`] if the marking does not belong to a
    /// net of this shape.
    pub fn fire(&self, m: &Marking, t: TransitionId) -> Result<Marking> {
        self.check_marking(m)?;
        if t.0 >= self.transitions.len() {
            return Err(NetError::UnknownTransition(t));
        }
        if !self.enabled(m, t) {
            return Err(NetError::NotEnabled(t));
        }
        let mut next = m.clone();
        for arc in &self.inputs[t.0] {
            next.remove_tokens(arc.place, arc.weight)
                .expect("enabled transition must have sufficient input tokens");
        }
        for arc in &self.outputs[t.0] {
            next.add_tokens(arc.place, arc.weight);
        }
        Ok(next)
    }

    /// Returns `true` when `m` is a dead marking (no transition is enabled).
    pub fn is_deadlocked(&self, m: &Marking) -> bool {
        self.transitions().all(|t| !self.enabled(m, t))
    }

    /// Total arc count (input plus output arcs).
    pub fn arc_count(&self) -> usize {
        self.inputs.iter().map(Vec::len).sum::<usize>()
            + self.outputs.iter().map(Vec::len).sum::<usize>()
    }
}

impl fmt::Display for PetriNet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PetriNet `{}` ({} places, {} transitions, {} arcs)",
            self.name,
            self.place_count(),
            self.transition_count(),
            self.arc_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetBuilder;

    fn simple_net() -> (PetriNet, PlaceId, PlaceId, TransitionId) {
        let mut b = NetBuilder::new("simple");
        let p0 = b.place("src");
        let p1 = b.place("dst");
        let t = b.transition("move");
        b.arc_in(p0, t, 1);
        b.arc_out(t, p1, 1);
        (b.build().unwrap(), p0, p1, t)
    }

    #[test]
    fn firing_moves_tokens() {
        let (net, p0, p1, t) = simple_net();
        let m0 = Marking::from_pairs(net.place_count(), &[(p0, 1)]);
        assert!(net.enabled(&m0, t));
        let m1 = net.fire(&m0, t).unwrap();
        assert_eq!(m1.tokens(p0), 0);
        assert_eq!(m1.tokens(p1), 1);
    }

    #[test]
    fn firing_disabled_transition_fails() {
        let (net, _p0, _p1, t) = simple_net();
        let m0 = Marking::empty(net.place_count());
        assert_eq!(net.fire(&m0, t), Err(NetError::NotEnabled(t)));
    }

    #[test]
    fn weighted_arcs_require_enough_tokens() {
        let mut b = NetBuilder::new("weighted");
        let p = b.place("pool");
        let q = b.place("out");
        let t = b.transition("take3");
        b.arc_in(p, t, 3);
        b.arc_out(t, q, 2);
        let net = b.build().unwrap();
        let m2 = Marking::from_pairs(net.place_count(), &[(p, 2)]);
        assert!(!net.enabled(&m2, t));
        let m3 = Marking::from_pairs(net.place_count(), &[(p, 3)]);
        assert!(net.enabled(&m3, t));
        let m = net.fire(&m3, t).unwrap();
        assert_eq!(m.tokens(p), 0);
        assert_eq!(m.tokens(q), 2);
    }

    #[test]
    fn capacity_disables_transition() {
        let mut b = NetBuilder::new("cap");
        let p = b.place("src");
        let q = b.place_with_capacity("bounded", 1);
        let t = b.transition("fill");
        b.arc_in(p, t, 1);
        b.arc_out(t, q, 1);
        let net = b.build().unwrap();
        let m = Marking::from_pairs(net.place_count(), &[(p, 2), (q, 1)]);
        // q already holds 1 token with capacity 1, firing would exceed it.
        assert!(!net.enabled(&m, t));
    }

    #[test]
    fn lookup_by_name() {
        let (net, p0, _p1, t) = simple_net();
        assert_eq!(net.place_by_name("src"), Some(p0));
        assert_eq!(net.transition_by_name("move"), Some(t));
        assert_eq!(net.place_by_name("missing"), None);
    }

    #[test]
    fn preset_postset() {
        let (net, p0, p1, t) = simple_net();
        assert_eq!(net.preset(t), vec![p0]);
        assert_eq!(net.postset(t), vec![p1]);
        assert_eq!(net.place_postset(p0), vec![t]);
        assert_eq!(net.place_preset(p1), vec![t]);
        assert!(net.place_preset(p0).is_empty());
    }

    #[test]
    fn deadlock_detection() {
        let (net, p0, _p1, _t) = simple_net();
        let dead = Marking::empty(net.place_count());
        assert!(net.is_deadlocked(&dead));
        let live = Marking::from_pairs(net.place_count(), &[(p0, 1)]);
        assert!(!net.is_deadlocked(&live));
    }

    #[test]
    fn marking_size_mismatch_rejected() {
        let (net, _p0, _p1, t) = simple_net();
        let wrong = Marking::empty(net.place_count() + 1);
        assert!(matches!(
            net.fire(&wrong, t),
            Err(NetError::MarkingSizeMismatch { .. })
        ));
    }

    #[test]
    fn display_mentions_counts() {
        let (net, ..) = simple_net();
        let s = net.to_string();
        assert!(s.contains("2 places"));
        assert!(s.contains("1 transitions"));
    }

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(PlaceId(4).to_string(), "p4");
        assert_eq!(TransitionId(2).to_string(), "t2");
    }

    #[test]
    fn enabled_transitions_order() {
        let mut b = NetBuilder::new("two");
        let p = b.place("p");
        let t0 = b.transition("a");
        let t1 = b.transition("b");
        b.arc_in(p, t0, 1);
        b.arc_in(p, t1, 1);
        let net = b.build().unwrap();
        let m = Marking::from_pairs(net.place_count(), &[(p, 1)]);
        assert_eq!(net.enabled_transitions(&m), vec![t0, t1]);
    }
}
