//! Error types for Petri net construction and execution.

use std::fmt;

use crate::net::{PlaceId, TransitionId};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, NetError>;

/// Errors produced while building, analysing, or executing a Petri net.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetError {
    /// A place identifier referred to a place that does not exist in the net.
    UnknownPlace(PlaceId),
    /// A transition identifier referred to a transition that does not exist.
    UnknownTransition(TransitionId),
    /// An arc was declared with weight zero, which is meaningless.
    ZeroWeightArc {
        /// The place side of the offending arc.
        place: PlaceId,
        /// The transition side of the offending arc.
        transition: TransitionId,
    },
    /// Two places or two transitions share the same name within one net.
    DuplicateName(String),
    /// A transition was fired while not enabled in the given marking.
    NotEnabled(TransitionId),
    /// A marking has a different number of places than the net it is used with.
    MarkingSizeMismatch {
        /// Number of places in the net.
        expected: usize,
        /// Number of places in the supplied marking.
        actual: usize,
    },
    /// A place capacity would be exceeded by firing a transition.
    CapacityExceeded {
        /// The place whose capacity would be exceeded.
        place: PlaceId,
        /// The declared capacity.
        capacity: u64,
        /// The token count that the firing would have produced.
        attempted: u64,
    },
    /// A state-space exploration exceeded its configured limits.
    ExplorationLimit {
        /// Number of states explored before giving up.
        states: usize,
    },
    /// The net is structurally empty (no places or no transitions) where a
    /// non-empty net is required.
    EmptyNet,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownPlace(p) => write!(f, "unknown place {p}"),
            NetError::UnknownTransition(t) => write!(f, "unknown transition {t}"),
            NetError::ZeroWeightArc { place, transition } => {
                write!(f, "arc between {place} and {transition} has zero weight")
            }
            NetError::DuplicateName(name) => write!(f, "duplicate node name `{name}`"),
            NetError::NotEnabled(t) => write!(f, "transition {t} is not enabled"),
            NetError::MarkingSizeMismatch { expected, actual } => {
                write!(f, "marking has {actual} places but the net has {expected}")
            }
            NetError::CapacityExceeded {
                place,
                capacity,
                attempted,
            } => write!(
                f,
                "place {place} capacity {capacity} exceeded (attempted {attempted})"
            ),
            NetError::ExplorationLimit { states } => {
                write!(
                    f,
                    "state-space exploration limit reached after {states} states"
                )
            }
            NetError::EmptyNet => write!(f, "net has no places or no transitions"),
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors: Vec<NetError> = vec![
            NetError::UnknownPlace(PlaceId(3)),
            NetError::UnknownTransition(TransitionId(1)),
            NetError::ZeroWeightArc {
                place: PlaceId(0),
                transition: TransitionId(0),
            },
            NetError::DuplicateName("video".into()),
            NetError::NotEnabled(TransitionId(7)),
            NetError::MarkingSizeMismatch {
                expected: 4,
                actual: 2,
            },
            NetError::CapacityExceeded {
                place: PlaceId(2),
                capacity: 1,
                attempted: 2,
            },
            NetError::ExplorationLimit { states: 100 },
            NetError::EmptyNet,
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase() || s.starts_with("arc"));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetError>();
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            NetError::UnknownPlace(PlaceId(1)),
            NetError::UnknownPlace(PlaceId(1))
        );
        assert_ne!(
            NetError::UnknownPlace(PlaceId(1)),
            NetError::UnknownPlace(PlaceId(2))
        );
    }
}
