//! Property-based tests over the base Petri net substrate.

use dmps_petri::analysis::IncidenceMatrix;
use dmps_petri::{Marking, NetBuilder, PetriNet, PlaceId, ReachabilityGraph, ReachabilityLimits};
use proptest::prelude::*;

/// Strategy: a random connected-ish net with `np` places, `nt` transitions and
/// random unit/weighted arcs, plus a random initial marking.
fn arb_net() -> impl Strategy<Value = (PetriNet, Marking)> {
    (2usize..6, 1usize..5).prop_flat_map(|(np, nt)| {
        let arcs = proptest::collection::vec(
            (0..np, 0..nt, 1u64..3, proptest::bool::ANY),
            1..(np * nt).max(2),
        );
        let tokens = proptest::collection::vec(0u64..3, np);
        (arcs, tokens).prop_map(move |(arcs, tokens)| {
            let mut b = NetBuilder::new("prop");
            let places: Vec<_> = (0..np).map(|i| b.place(format!("p{i}"))).collect();
            let transitions: Vec<_> = (0..nt).map(|i| b.transition(format!("t{i}"))).collect();
            for (p, t, w, input) in arcs {
                if input {
                    b.arc_in(places[p], transitions[t], w);
                } else {
                    b.arc_out(transitions[t], places[p], w);
                }
            }
            let net = b.build().expect("generated net is structurally valid");
            let marking = Marking::new(tokens);
            (net, marking)
        })
    })
}

proptest! {
    /// Firing conserves the state equation: M' = M + C·e_t.
    #[test]
    fn firing_respects_state_equation((net, m0) in arb_net()) {
        let inc = IncidenceMatrix::of(&net);
        for t in net.enabled_transitions(&m0) {
            let fired = net.fire(&m0, t).unwrap();
            let mut counts = vec![0u64; net.transition_count()];
            counts[t.index()] = 1;
            let predicted = inc.apply(&m0, &counts).expect("enabled firing is realizable");
            prop_assert_eq!(fired, predicted);
        }
    }

    /// A transition reported enabled always fires successfully, and one
    /// reported disabled always fails.
    #[test]
    fn enabledness_is_consistent_with_fire((net, m0) in arb_net()) {
        for t in net.transitions() {
            let fired = net.fire(&m0, t);
            prop_assert_eq!(net.enabled(&m0, t), fired.is_ok());
        }
    }

    /// Firing never creates negative token counts and changes only places
    /// adjacent to the fired transition.
    #[test]
    fn firing_only_touches_adjacent_places((net, m0) in arb_net()) {
        for t in net.enabled_transitions(&m0) {
            let fired = net.fire(&m0, t).unwrap();
            let adjacent: std::collections::HashSet<_> = net
                .preset(t)
                .into_iter()
                .chain(net.postset(t))
                .collect();
            for p in net.places() {
                if !adjacent.contains(&p) {
                    prop_assert_eq!(fired.tokens(p), m0.tokens(p));
                }
            }
        }
    }

    /// Every marking in the reachability graph is actually reachable by
    /// replaying edges, and the initial marking is node 0.
    #[test]
    fn reachability_graph_nodes_are_reachable((net, m0) in arb_net()) {
        let limits = ReachabilityLimits { max_states: 200, max_edges: 2000 };
        let g = ReachabilityGraph::build(&net, &m0, limits).unwrap();
        prop_assert_eq!(&g.markings()[0], &m0);
        for e in g.edges() {
            let from = &g.markings()[e.from];
            let to = &g.markings()[e.to];
            let fired = net.fire(from, e.transition).unwrap();
            prop_assert_eq!(&fired, to);
        }
    }

    /// P-invariants hold over every reachable marking: yᵀ·M is constant.
    #[test]
    fn p_invariants_hold_over_reachable_markings((net, m0) in arb_net()) {
        let inc = IncidenceMatrix::of(&net);
        let invariants = inc.nonnegative_kernel();
        let limits = ReachabilityLimits { max_states: 100, max_edges: 1000 };
        let g = ReachabilityGraph::build(&net, &m0, limits).unwrap();
        for weights in invariants {
            let value = |m: &Marking| -> u128 {
                weights
                    .iter()
                    .enumerate()
                    .map(|(i, &w)| w as u128 * m.tokens(PlaceId(i)) as u128)
                    .sum()
            };
            let v0 = value(&m0);
            for m in g.markings() {
                prop_assert_eq!(value(m), v0);
            }
        }
    }

    /// Markings round-trip through serde JSON (used by the trace writer).
    #[test]
    fn marking_serde_roundtrip(tokens in proptest::collection::vec(0u64..100, 0..8)) {
        let m = Marking::new(tokens);
        let encoded = dmps_wire::to_string(&m);
        let back: Marking = dmps_wire::from_str(&encoded).unwrap();
        prop_assert_eq!(m, back);
    }
}
