//! Bench: floor-request throughput of the sharded control plane as the shard
//! count grows.
//!
//! A fixed campus (192 Equal Control groups × 3 members) is served by 1, 2,
//! 4 and 8 shards with a production-shaped checkpoint cadence (event
//! cadence 128, differential chain). Each iteration pushes one speak wave
//! plus a release wave through every group via the batched
//! [`dmps_cluster::Cluster::flush_parallel`] path. On multi-core hosts
//! throughput rises with the shard count (per-shard workers run in
//! parallel). On a single-core host the curve used to rise too — each
//! cadence checkpoint serialized the whole shard, so per-shard checkpoint
//! work shrank ~1/shards — but incremental checkpoints made that cost
//! O(dirty-groups) at any shard count, so single-core runs now show a
//! flat-to-falling curve (pure fan-out overhead) with the 1-shard case
//! far faster than it was under full snapshots.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use dmps_cluster::{Cluster, ClusterConfig, GlobalGroupId, GlobalMemberId, GlobalRequest};
use dmps_floor::{FcmMode, Member, Role};

const GROUPS: usize = 192;
const MEMBERS: usize = 3;

fn campus(shards: usize) -> (Cluster, Vec<(GlobalGroupId, Vec<GlobalMemberId>)>) {
    let mut cluster = Cluster::new(ClusterConfig {
        snapshot_every: 128,
        snapshot_every_bytes: 0,
        ..ClusterConfig::with_shards(shards)
    });
    let mut lectures = Vec::new();
    for g in 0..GROUPS {
        let gid = cluster
            .create_group(format!("lecture-{g}"), FcmMode::EqualControl)
            .expect("all shards active");
        let roster: Vec<GlobalMemberId> = (0..MEMBERS)
            .map(|m| {
                let role = if m == 0 {
                    Role::Chair
                } else {
                    Role::Participant
                };
                let member = cluster.register_member(Member::new(format!("u{g}-{m}"), role));
                cluster.join_group(gid, member).expect("fresh group");
                member
            })
            .collect();
        lectures.push((gid, roster));
    }
    (cluster, lectures)
}

fn bench_shard_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("shard_scaling");
    group.sample_size(10);
    let requests_per_iter = (GROUPS * 2 * MEMBERS) as u64;
    for &shards in &[1usize, 2, 4, 8] {
        group.throughput(Throughput::Elements(requests_per_iter));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{shards}-shards")),
            &shards,
            |b, &shards| {
                let (mut cluster, lectures) = campus(shards);
                b.iter(|| {
                    for (gid, roster) in &lectures {
                        for &member in roster {
                            cluster
                                .submit(GlobalRequest::speak(*gid, member))
                                .expect("routable");
                        }
                    }
                    let decisions = cluster.flush_parallel();
                    // Drain every token so state does not accumulate across
                    // iterations: each member releases in turn, emptying the
                    // queue the speak wave built.
                    for (gid, roster) in &lectures {
                        for &member in roster {
                            cluster
                                .submit(GlobalRequest::release_floor(*gid, member))
                                .expect("routable");
                        }
                    }
                    let releases = cluster.flush_parallel();
                    (decisions.len(), releases.len())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_shard_scaling);
criterion_main!(benches);
