//! Criterion bench for experiment E7: the arbitration + suspension path under
//! resource pressure, including the victim-selection ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dmps_floor::suspend::SuspensionOrder;
use dmps_floor::{FcmMode, FloorArbiter, FloorRequest, Member, Resource, Role};

fn build(
    members: usize,
    order: SuspensionOrder,
) -> (FloorArbiter, dmps_floor::GroupId, dmps_floor::MemberId) {
    let mut arbiter = FloorArbiter::with_defaults();
    arbiter.set_suspension_order(order);
    let group = arbiter.create_group("class", FcmMode::FreeAccess);
    let teacher = arbiter
        .add_member(group, Member::new("teacher", Role::Chair))
        .unwrap();
    for i in 0..members {
        let role = if i % 3 == 0 {
            Role::Observer
        } else {
            Role::Participant
        };
        arbiter
            .add_member(group, Member::new(format!("m{i}"), role))
            .unwrap();
    }
    (arbiter, group, teacher)
}

fn bench_arbitration(c: &mut Criterion) {
    let mut group = c.benchmark_group("degraded_arbitration");
    group.sample_size(30);
    for &members in &[8usize, 64, 256] {
        for order in [
            SuspensionOrder::PriorityAscending,
            SuspensionOrder::JoinOrder,
        ] {
            let label = format!("{members}-members/{order:?}");
            group.bench_with_input(BenchmarkId::from_parameter(label), &members, |b, &n| {
                b.iter(|| {
                    let (mut arbiter, grp, teacher) = build(n, order);
                    arbiter.set_resource(Resource::new(0.3, 1.0, 1.0));
                    arbiter
                        .arbitrate(&FloorRequest::speak(grp, teacher))
                        .unwrap()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_arbitration);
criterion_main!(benches);
