//! Bench: ingest throughput of the sharded control plane as the number of
//! concurrent gateways grows.
//!
//! A fixed campus (240 Equal Control groups × 3 members) is served by 8
//! shards; each iteration pushes a speak wave plus a release wave through
//! every group. With one gateway, a single thread routes every request and
//! drains every decision — ingest serializes even though the 8 shard
//! pipelines work in parallel. With 2 and 4 gateways the groups are
//! partitioned across gateway threads, each submitting into the shared
//! directory (`&self`, striped read locks) and draining its own decision
//! stream. Throughput rising with the gateway count is the point of the
//! Directory/Gateway refactor: the router lock that used to throttle
//! multi-gateway ingest is gone.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use dmps_cluster::{Cluster, ClusterConfig, GlobalGroupId, GlobalMemberId, GlobalRequest};
use dmps_floor::{FcmMode, Member, Role};

const SHARDS: usize = 8;
const GROUPS: usize = 240;
const MEMBERS: usize = 3;

fn campus() -> (Cluster, Vec<(GlobalGroupId, Vec<GlobalMemberId>)>) {
    let mut cluster = Cluster::new(ClusterConfig {
        shards: SHARDS,
        vnodes: 64,
        // Keep the shard-side work lean so the bench isolates ingest cost.
        snapshot_every: 0,
        dedup_window: 0,
    });
    let mut lectures = Vec::new();
    for g in 0..GROUPS {
        let gid = cluster
            .create_group(format!("lecture-{g}"), FcmMode::EqualControl)
            .expect("all shards active");
        let roster: Vec<GlobalMemberId> = (0..MEMBERS)
            .map(|m| {
                let role = if m == 0 {
                    Role::Chair
                } else {
                    Role::Participant
                };
                let member = cluster.register_member(Member::new(format!("u{g}-{m}"), role));
                cluster.join_group(gid, member).expect("fresh group");
                member
            })
            .collect();
        lectures.push((gid, roster));
    }
    (cluster, lectures)
}

fn bench_gateway_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("gateway_ingest");
    group.sample_size(10);
    let requests_per_iter = (GROUPS * 2 * MEMBERS) as u64;
    for &gateways in &[1usize, 2, 4] {
        group.throughput(Throughput::Elements(requests_per_iter));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{gateways}-gateways")),
            &gateways,
            |b, &gateways| {
                let (cluster, lectures) = campus();
                // Pre-clone one ingest handle per worker and partition the
                // groups among them; every group is driven by exactly one
                // gateway per iteration so its token state drains cleanly.
                let handles: Vec<_> = (0..gateways).map(|_| cluster.gateway()).collect();
                let slices: Vec<&[(GlobalGroupId, Vec<GlobalMemberId>)]> =
                    lectures.chunks(lectures.len().div_ceil(gateways)).collect();
                b.iter(|| {
                    std::thread::scope(|scope| {
                        for (gateway, slice) in handles.iter().zip(&slices) {
                            scope.spawn(move || {
                                let mut sent = 0usize;
                                for (gid, roster) in *slice {
                                    for &member in roster {
                                        gateway
                                            .submit(GlobalRequest::speak(*gid, member))
                                            .expect("routable");
                                        sent += 1;
                                    }
                                }
                                for (gid, roster) in *slice {
                                    for &member in roster {
                                        gateway
                                            .submit(GlobalRequest::release_floor(*gid, member))
                                            .expect("routable");
                                        sent += 1;
                                    }
                                }
                                gateway.collect_decisions(sent).expect("pipelines alive")
                            });
                        }
                    })
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_gateway_ingest);
criterion_main!(benches);
