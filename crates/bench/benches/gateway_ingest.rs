//! Bench: ingest throughput of the sharded control plane along three axes,
//! with machine-readable results written to `BENCH_ingest.json`.
//!
//! A fixed campus (240 Equal Control groups × 3 members) is served by 8
//! shards; each iteration pushes a speak wave plus a release wave through
//! every group (1440 requests).
//!
//! * **Gateway axis** (`single-submit/N-gateways`) — the pre-batching
//!   shape: every request routed and enqueued individually. Throughput
//!   rising with the gateway count shows the shared directory and per-shard
//!   pipelines scale; this is the baseline the batched axis is judged
//!   against, **measured in the same process on the same host** so the
//!   comparison survives host changes (see `crates/bench/README.md`).
//! * **Batch axis** (`batched/4-gateways/batch-N`) — the same workload
//!   through [`Gateway::submit_batch`]: one request-id lease, one directory
//!   pass and one queue reservation per shard per batch, with the workers
//!   group-committing each drained batch and coalescing replies. Committed
//!   runs measure ~1.5–1.65× the same-host single-submit baseline at
//!   4 gateways / 8 shards; the enforced floor is 1.35× (noise margin).
//! * **Saturation axis** (`saturation/shed/...`) — a deliberately small
//!   bounded queue under [`OverloadPolicy::Shed`]: gateways storm, shed
//!   requests come back as `Overloaded` decisions and are resubmitted until
//!   everything applies. Reported alongside throughput: how many sheds the
//!   storm produced and the per-shard peak queue depth, which must stay at
//!   or below the configured capacity — the memory bound backpressure
//!   exists to enforce.
//! * **Telemetry axis** (`batched/.../traced-1-in-N`) — the best batched
//!   shape re-run with 1-in-64 end-to-end span tracing on
//!   ([`ClusterConfig::trace_sampling`]). The sampled spans feed real
//!   submit→decision latency histograms, whose p50/p99 are reported as
//!   extra columns; the run asserts the traced throughput stays within 5%
//!   of the untraced batch-512 case measured in the same process
//!   (re-measuring the pair, evenhandedly, when host noise exceeds the bar).

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use dmps_cluster::{
    Cluster, ClusterConfig, ClusterError, Gateway, GlobalGroupId, GlobalMemberId, GlobalRequest,
    OverloadPolicy, ShardId,
};
use dmps_floor::{FcmMode, Member, Role};

const SHARDS: usize = 8;
const GROUPS: usize = 240;
const MEMBERS: usize = 3;
const REQUESTS_PER_ITER: u64 = (GROUPS * 2 * MEMBERS) as u64;
/// The batched axis must beat the single-submit shape — measured on the
/// same host, in the same process, against the same code — by at least this
/// factor. Cross-host constants are deliberately not compared against: an
/// earlier `speedup_vs_pr2_baseline` field divided by a number recorded on
/// a multi-core CI host and read 1.00 on a 1-CPU container, implying "no
/// speedup" when the same-host comparison showed 1.6×. See
/// `crates/bench/README.md` for the baseline policy.
///
/// Committed runs measure ~1.5–1.65×; the enforced floor sits below that
/// so scheduler noise on a shared 1-CPU host (±10% run to run, observed)
/// cannot flake CI, while a real regression — batching buys nothing reads
/// ~1.0× — still fails loudly.
const BATCHED_SPEEDUP_BAR: f64 = 1.35;
/// Span sampling rate of the telemetry axis: one traced request per 64.
const TRACE_SAMPLING: u64 = 64;

type Lectures = Vec<(GlobalGroupId, Vec<GlobalMemberId>)>;

fn campus(
    queue_capacity: usize,
    overload: OverloadPolicy,
    dedup_window: usize,
    trace_sampling: u64,
) -> (Cluster, Lectures) {
    let mut cluster = Cluster::new(ClusterConfig {
        trace_sampling,
        // Keep the shard-side durability work lean so the bench isolates
        // ingest cost. The throughput axes run with dedup off — the same
        // configuration the PR 2 baseline was measured under — while the
        // saturation axis turns the journal on because its shed/resubmit
        // loop depends on exactly-once replay.
        snapshot_every: 0,
        snapshot_every_bytes: 0,
        dedup_window,
        queue_capacity,
        overload,
        // Let a worker wakeup swallow a whole burst: on few-core hosts the
        // dominant ingest cost is context switching, and bigger drains mean
        // fewer of them.
        ingest_batch: 512,
        ..ClusterConfig::with_shards(SHARDS)
    });
    let mut lectures = Vec::new();
    for g in 0..GROUPS {
        let gid = cluster
            .create_group(format!("lecture-{g}"), FcmMode::EqualControl)
            .expect("all shards active");
        let roster: Vec<GlobalMemberId> = (0..MEMBERS)
            .map(|m| {
                let role = if m == 0 {
                    Role::Chair
                } else {
                    Role::Participant
                };
                let member = cluster.register_member(Member::new(format!("u{g}-{m}"), role));
                cluster.join_group(gid, member).expect("fresh group");
                member
            })
            .collect();
        lectures.push((gid, roster));
    }
    (cluster, lectures)
}

/// The speak + release wave for one slice of the campus, in submission
/// order.
fn wave(slice: &[(GlobalGroupId, Vec<GlobalMemberId>)]) -> Vec<GlobalRequest> {
    let mut requests = Vec::with_capacity(slice.len() * MEMBERS * 2);
    for (gid, roster) in slice {
        for &member in roster {
            requests.push(GlobalRequest::speak(*gid, member));
        }
    }
    for (gid, roster) in slice {
        for &member in roster {
            requests.push(GlobalRequest::release_floor(*gid, member));
        }
    }
    requests
}

/// Measures `iter` over several independent windows (~150 ms each, min 3
/// iterations) after a warm-up and keeps the **fastest** window — scheduler
/// noise on shared or few-core hosts only ever subtracts throughput, so the
/// best window is the least-biased estimate. Returns (mean seconds/iter of
/// that window, requests/sec).
fn measure(mut iter: impl FnMut()) -> (f64, f64) {
    iter(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        let mut iters = 0u32;
        while iters < 3 || start.elapsed() < Duration::from_millis(150) {
            iter();
            iters += 1;
        }
        best = best.min(start.elapsed().as_secs_f64() / f64::from(iters));
    }
    (best, REQUESTS_PER_ITER as f64 / best)
}

struct CaseResult {
    case: String,
    mean_secs: f64,
    req_per_sec: f64,
    extra: Vec<(&'static str, f64)>,
}

fn report(result: &CaseResult) {
    let mean = Duration::from_secs_f64(result.mean_secs);
    let extras: String = result
        .extra
        .iter()
        .map(|(k, v)| format!("  {k} {v:.0}"))
        .collect();
    println!(
        "bench gateway_ingest/{:<40} mean {mean:>12?}  {:>12.1} elem/s{extras}",
        result.case, result.req_per_sec
    );
}

/// The PR 2 shape: every request submitted individually.
fn single_submit_case(gateways: usize) -> CaseResult {
    let (cluster, lectures) = campus(1 << 14, OverloadPolicy::Block, 0, 0);
    let handles: Vec<Gateway> = (0..gateways).map(|_| cluster.gateway()).collect();
    let slices: Vec<&[(GlobalGroupId, Vec<GlobalMemberId>)]> =
        lectures.chunks(lectures.len().div_ceil(gateways)).collect();
    let (mean_secs, req_per_sec) = measure(|| {
        std::thread::scope(|scope| {
            for (gateway, slice) in handles.iter().zip(&slices) {
                scope.spawn(move || {
                    let requests = wave(slice);
                    for request in &requests {
                        gateway.submit(*request).expect("routable");
                    }
                    gateway
                        .collect_decisions(requests.len())
                        .expect("pipelines alive")
                });
            }
        })
    });
    CaseResult {
        case: format!("single-submit/{gateways}-gateways"),
        mean_secs,
        req_per_sec,
        extra: Vec::new(),
    }
}

/// The vectored shape: the same workload through `submit_batch` chunks.
/// With `trace_sampling > 0` the case also reports the p50/p99
/// submit→decision latency read from the sampled-span histograms.
fn batched_case(gateways: usize, batch: usize, trace_sampling: u64) -> CaseResult {
    let (cluster, lectures) = campus(1 << 14, OverloadPolicy::Block, 0, trace_sampling);
    let handles: Vec<Gateway> = (0..gateways).map(|_| cluster.gateway()).collect();
    let slices: Vec<&[(GlobalGroupId, Vec<GlobalMemberId>)]> =
        lectures.chunks(lectures.len().div_ceil(gateways)).collect();
    let (mean_secs, req_per_sec) = measure(|| {
        std::thread::scope(|scope| {
            for (gateway, slice) in handles.iter().zip(&slices) {
                scope.spawn(move || {
                    let requests = wave(slice);
                    let mut sent = 0;
                    for chunk in requests.chunks(batch) {
                        sent += gateway.submit_batch(chunk).len();
                    }
                    gateway.collect_decisions(sent).expect("pipelines alive")
                });
            }
        })
    });
    let (case, extra) = if trace_sampling == 0 {
        (
            format!("batched/{gateways}-gateways/batch-{batch}"),
            Vec::new(),
        )
    } else {
        let latency = cluster.metrics().histogram("cluster.submit_latency_ns");
        assert!(
            latency.count() > 0,
            "traced run must have sampled some spans"
        );
        (
            format!("batched/{gateways}-gateways/batch-{batch}/traced-1-in-{trace_sampling}"),
            vec![
                ("p50_submit_ns", latency.p50() as f64),
                ("p99_submit_ns", latency.p99() as f64),
                ("sampled_spans", latency.count() as f64),
            ],
        )
    };
    CaseResult {
        case,
        mean_secs,
        req_per_sec,
        extra,
    }
}

/// The overload shape: a small queue under `Shed`, with shed requests
/// resubmitted (exactly-once through the dedup window) until everything
/// applies.
fn saturation_case(gateways: usize, capacity: usize, batch: usize) -> CaseResult {
    let (cluster, lectures) = campus(capacity, OverloadPolicy::Shed, 1 << 15, 0);
    let handles: Vec<Gateway> = (0..gateways).map(|_| cluster.gateway()).collect();
    let slices: Vec<&[(GlobalGroupId, Vec<GlobalMemberId>)]> =
        lectures.chunks(lectures.len().div_ceil(gateways)).collect();
    let total_shed = std::sync::atomic::AtomicU64::new(0);
    let (mean_secs, req_per_sec) = measure(|| {
        std::thread::scope(|scope| {
            for (gateway, slice) in handles.iter().zip(&slices) {
                let total_shed = &total_shed;
                scope.spawn(move || {
                    let requests = wave(slice);
                    let mut by_seq: BTreeMap<u64, GlobalRequest> = BTreeMap::new();
                    for chunk in requests.chunks(batch) {
                        for (seq, request) in gateway.submit_batch(chunk).into_iter().zip(chunk) {
                            by_seq.insert(seq, *request);
                        }
                    }
                    let mut applied = 0usize;
                    let mut shed = 0u64;
                    while applied < requests.len() {
                        let decision = gateway.recv_decision().expect("pipelines alive");
                        if matches!(decision.outcome, Err(ClusterError::Overloaded(_))) {
                            shed += 1;
                            std::thread::yield_now();
                            gateway
                                .resubmit(decision.seq, by_seq[&decision.seq])
                                .expect("routable");
                        } else {
                            applied += 1;
                        }
                    }
                    total_shed.fetch_add(shed, std::sync::atomic::Ordering::Relaxed);
                });
            }
        })
    });
    let peak = (0..SHARDS)
        .map(|s| cluster.queue_stats(ShardId(s)).peak_queued)
        .max()
        .unwrap_or(0);
    assert!(
        peak <= capacity,
        "shed storm must never queue past capacity (peak {peak} > {capacity})"
    );
    CaseResult {
        case: format!("saturation/shed/{gateways}-gateways/capacity-{capacity}"),
        mean_secs,
        req_per_sec,
        extra: vec![
            ("peak_queued", peak as f64),
            ("capacity", capacity as f64),
            (
                "sheds",
                total_shed.load(std::sync::atomic::Ordering::Relaxed) as f64,
            ),
        ],
    }
}

fn write_json(
    results: &[CaseResult],
    baseline: f64,
    batched_best: f64,
    telemetry_off: f64,
    telemetry_on: &CaseResult,
) {
    let mut body = String::from("{\n");
    body.push_str("  \"bench\": \"gateway_ingest\",\n");
    body.push_str(&format!(
        "  \"host_cpus\": {},\n",
        std::thread::available_parallelism().map_or(0, |n| n.get())
    ));
    body.push_str(&format!("  \"shards\": {SHARDS},\n"));
    body.push_str(&format!("  \"groups\": {GROUPS},\n"));
    body.push_str(&format!("  \"members_per_group\": {MEMBERS},\n"));
    body.push_str(&format!(
        "  \"requests_per_iteration\": {REQUESTS_PER_ITER},\n"
    ));
    body.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let extras: String = r
            .extra
            .iter()
            .map(|(k, v)| format!(", \"{k}\": {v:.0}"))
            .collect();
        body.push_str(&format!(
            "    {{\"case\": \"{}\", \"mean_iter_secs\": {:.6}, \"req_per_sec\": {:.0}{extras}}}{}\n",
            r.case,
            r.mean_secs,
            r.req_per_sec,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    body.push_str("  ],\n");
    body.push_str("  \"acceptance\": {\n");
    body.push_str(
        "    \"baseline_policy\": \"single-submit baseline measured same-host, same-process; \
         cross-host constants are not comparable (see crates/bench/README.md)\",\n",
    );
    body.push_str(&format!(
        "    \"measured_single_submit_4gw_req_per_sec\": {baseline:.0},\n"
    ));
    body.push_str(&format!(
        "    \"measured_batched_4gw_req_per_sec\": {batched_best:.0},\n"
    ));
    body.push_str(&format!(
        "    \"speedup_vs_measured_single_submit\": {:.2},\n",
        batched_best / baseline
    ));
    body.push_str(&format!(
        "    \"batched_speedup_bar\": {BATCHED_SPEEDUP_BAR:.2},\n"
    ));
    body.push_str(&format!(
        "    \"telemetry_off_batch512_req_per_sec\": {telemetry_off:.0},\n"
    ));
    body.push_str(&format!(
        "    \"telemetry_on_batch512_req_per_sec\": {:.0},\n",
        telemetry_on.req_per_sec
    ));
    body.push_str(&format!(
        "    \"telemetry_on_over_off\": {:.3},\n",
        telemetry_on.req_per_sec / telemetry_off
    ));
    for (key, value) in &telemetry_on.extra {
        body.push_str(&format!("    \"telemetry_on_{key}\": {value:.0},\n"));
    }
    body.push_str(&format!("    \"trace_sampling\": {TRACE_SAMPLING}\n"));
    body.push_str("  }\n}\n");
    // The bench runs with CWD = crates/bench; the committed artifact lives
    // at the repository root.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ingest.json");
    std::fs::write(path, &body).expect("write BENCH_ingest.json");
    println!("\nwrote {path}");
    print!("{body}");
}

fn main() {
    let mut results = Vec::new();
    for gateways in [1usize, 2, 4] {
        results.push(single_submit_case(gateways));
        report(results.last().unwrap());
    }
    for batch in [16usize, 64, 256, 512] {
        results.push(batched_case(4, batch, 0));
        report(results.last().unwrap());
    }
    // The same-host speedup bar: scheduler noise moves both sides of the
    // comparison, so when the first attempt lands under the bar both sides
    // are re-measured evenhandedly — same attempt count each, best attempt
    // kept per side (noise only ever subtracts throughput) — before the bar
    // is enforced.
    let base_index = results
        .iter()
        .position(|r| r.case == "single-submit/4-gateways")
        .expect("single-submit baseline ran");
    let b512_index = results
        .iter()
        .position(|r| r.case == "batched/4-gateways/batch-512")
        .expect("batch-512 case ran");
    for _ in 0..2 {
        let best_batched = results
            .iter()
            .filter(|r| r.case.starts_with("batched/4-gateways"))
            .map(|r| r.req_per_sec)
            .fold(f64::NAN, f64::max);
        if best_batched >= BATCHED_SPEEDUP_BAR * results[base_index].req_per_sec {
            break;
        }
        for (index, retry) in [
            (base_index, single_submit_case(4)),
            (b512_index, batched_case(4, 512, 0)),
        ] {
            report(&retry);
            if retry.req_per_sec > results[index].req_per_sec {
                results[index] = retry;
            }
        }
    }
    // The telemetry axis: the best batched shape with span tracing on,
    // measured back-to-back with its untraced comparator. Scheduler noise
    // on a shared few-core host can exceed the effect under test, so if the
    // first pair lands outside the 5% bar the whole pair is re-measured —
    // the same attempt count for both sides, best attempt kept per side —
    // before the bar is enforced.
    results.push(batched_case(4, 512, TRACE_SAMPLING));
    report(results.last().unwrap());
    let off_index = results
        .iter()
        .position(|r| r.case == "batched/4-gateways/batch-512")
        .expect("untraced comparator ran");
    let on_index = results.len() - 1;
    for _ in 0..2 {
        if results[on_index].req_per_sec >= 0.95 * results[off_index].req_per_sec {
            break;
        }
        for (index, sampling) in [(off_index, 0), (on_index, TRACE_SAMPLING)] {
            let retry = batched_case(4, 512, sampling);
            report(&retry);
            if retry.req_per_sec > results[index].req_per_sec {
                results[index] = retry;
            }
        }
    }
    results.push(saturation_case(4, 256, 64));
    report(results.last().unwrap());

    let baseline = results
        .iter()
        .find(|r| r.case == "single-submit/4-gateways")
        .map(|r| r.req_per_sec)
        .unwrap_or(f64::NAN);
    let batched_best = results
        .iter()
        .filter(|r| r.case.starts_with("batched/4-gateways") && !r.case.contains("traced"))
        .map(|r| r.req_per_sec)
        .fold(f64::NAN, f64::max);
    let telemetry_off = results
        .iter()
        .find(|r| r.case == "batched/4-gateways/batch-512")
        .map(|r| r.req_per_sec)
        .unwrap_or(f64::NAN);
    let telemetry_on = results
        .iter()
        .find(|r| r.case.contains("traced"))
        .expect("traced case ran");
    let ratio = telemetry_on.req_per_sec / telemetry_off;
    assert!(
        ratio >= 0.95,
        "telemetry-on batched throughput must stay within 5% of telemetry-off \
         ({:.0} vs {telemetry_off:.0} req/s, ratio {ratio:.3})",
        telemetry_on.req_per_sec
    );
    let speedup = batched_best / baseline;
    assert!(
        speedup >= BATCHED_SPEEDUP_BAR,
        "batched ingest must beat the same-host single-submit baseline by \
         {BATCHED_SPEEDUP_BAR:.2}x (measured {batched_best:.0} vs {baseline:.0} req/s, \
         {speedup:.2}x)"
    );
    write_json(
        &results,
        baseline,
        batched_best,
        telemetry_off,
        telemetry_on,
    );
}
