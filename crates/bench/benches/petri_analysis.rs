//! Criterion bench for experiment E9: the cost of the structural verification
//! (reachability, boundedness, invariants) as the compiled presentation net
//! grows.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dmps_bench::sequential_document;
use dmps_docpn::{compile, CompileOptions, ModelKind};
use dmps_petri::analysis::{analyze, IncidenceMatrix};
use dmps_petri::{ReachabilityGraph, ReachabilityLimits};

fn bench_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("petri_analysis");
    group.sample_size(10);
    for &segments in &[5usize, 20, 60] {
        let doc = sequential_document(segments, Duration::from_secs(2));
        let compiled = compile(&doc, &CompileOptions::new(ModelKind::Docpn)).unwrap();
        let label = format!("{}-places", compiled.net.place_count());
        group.bench_with_input(
            BenchmarkId::new("full_analysis", &label),
            &compiled,
            |b, compiled| {
                b.iter(|| {
                    analyze(
                        compiled.net.net(),
                        &compiled.initial,
                        ReachabilityLimits::default(),
                    )
                    .unwrap()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("reachability_only", &label),
            &compiled,
            |b, compiled| {
                b.iter(|| {
                    ReachabilityGraph::build(
                        compiled.net.net(),
                        &compiled.initial,
                        ReachabilityLimits::default(),
                    )
                    .unwrap()
                    .state_count()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("incidence_matrix", &label),
            &compiled,
            |b, compiled| b.iter(|| IncidenceMatrix::of(compiled.net.net())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
