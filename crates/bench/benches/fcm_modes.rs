//! Criterion bench for experiment E6: replaying a Q&A workload over a live
//! session under each floor control mode.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dmps::workload::WorkloadAction;
use dmps::{Workload, WorkloadKind};
use dmps_bench::classroom_session;
use dmps_floor::FcmMode;

fn bench_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("fcm_mode_workload");
    group.sample_size(10);
    let workload = Workload::generate(
        WorkloadKind::QuestionAnswer,
        6,
        Duration::from_secs(30),
        3.0,
        7,
    );
    for mode in [FcmMode::FreeAccess, FcmMode::EqualControl] {
        group.bench_with_input(
            BenchmarkId::from_parameter(mode.to_string()),
            &mode,
            |b, &mode| {
                b.iter(|| {
                    let (mut session, teacher, students) =
                        classroom_session(5, mode, 5, 100.0, 5, true);
                    let indices: Vec<usize> = std::iter::once(teacher).chain(students).collect();
                    for event in &workload.events {
                        let idx = indices[event.client];
                        match &event.action {
                            WorkloadAction::RequestFloor => session.request_floor(idx),
                            WorkloadAction::ReleaseFloor => session.release_floor(idx),
                            WorkloadAction::Chat(t) => session.send_chat(idx, t.clone()),
                            WorkloadAction::Whiteboard(s) => {
                                session.send_whiteboard(idx, s.clone())
                            }
                            WorkloadAction::Annotation(t) => {
                                session.send_annotation(idx, t.clone())
                            }
                        }
                    }
                    session.pump();
                    session.server().arbiter().stats()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_modes);
criterion_main!(benches);
