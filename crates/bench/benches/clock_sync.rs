//! Criterion bench for experiment E4: end-to-end synchronized playback over
//! the simulated network, with and without the global-clock admission rule.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dmps::PresentationDriver;
use dmps_bench::{classroom_session, sequential_document};
use dmps_floor::FcmMode;

fn bench_clock_sync(c: &mut Criterion) {
    let mut group = c.benchmark_group("clock_sync_playback");
    group.sample_size(10);
    for &students in &[2usize, 8, 16] {
        for &admission in &[true, false] {
            let label = format!("{students}-students/admission-{admission}");
            group.bench_with_input(BenchmarkId::from_parameter(label), &students, |b, &n| {
                b.iter(|| {
                    let (mut session, ..) =
                        classroom_session(42, FcmMode::FreeAccess, n, 300.0, 20, admission);
                    let doc = sequential_document(4, Duration::from_secs(5));
                    let driver = PresentationDriver::from_document(&doc).unwrap();
                    let start = session.now() + Duration::from_secs(3);
                    let report = driver.run(&mut session, start, Duration::from_secs(1));
                    report.overall.max
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_clock_sync);
criterion_main!(benches);
