//! Criterion bench for experiment E5: compiling and executing the lecture
//! presentation under the three models with a late delivery injected.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dmps_bench::{lecture_document, sequential_document};
use dmps_docpn::{compile, CompileOptions, ModelKind, TimedExecution};

fn bench_models(c: &mut Criterion) {
    let doc = lecture_document();
    let slides = doc.objects().find(|(_, o)| o.name == "slides").unwrap().0;
    let mut group = c.benchmark_group("model_execution_with_late_delivery");
    group.sample_size(20);
    for model in ModelKind::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(model.to_string()),
            &model,
            |b, &model| {
                let options =
                    CompileOptions::new(model).with_transfer_delay(slides, Duration::from_secs(10));
                b.iter(|| {
                    let compiled = compile(&doc, &options).unwrap();
                    TimedExecution::run_to_completion(&compiled.net, &compiled.initial).unwrap()
                })
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("compile_scaling");
    group.sample_size(10);
    for &segments in &[10usize, 50, 200] {
        let doc = sequential_document(segments, Duration::from_secs(2));
        group.bench_with_input(BenchmarkId::from_parameter(segments), &doc, |b, doc| {
            b.iter(|| compile(doc, &CompileOptions::new(ModelKind::Docpn)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
