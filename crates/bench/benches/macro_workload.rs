//! Bench: the million-group macro workload — a seeded, realistic population
//! of presentation sessions replayed against a real sharded cluster, with
//! machine-readable results written to `BENCH_macro.json`.
//!
//! Where `gateway_ingest` measures hot-path ingest under synthetic uniform
//! load, this harness answers the capacity question at cluster scale: *what
//! does a production-shaped population of sessions cost?* It expands a
//! [`WorkloadSpec`] into a trace over four archetypes (lecture / seminar /
//! panel / breakout, the last mass-spawning sub-sessions through the invite
//! path), replays it through the batched gateway pipelines, and reports:
//!
//! * throughput and sampled submit→decision latency (overall, grant-path,
//!   session, and per archetype);
//! * memory per group, on two axes: deterministic per-shard state bytes
//!   (log + sessions + dedup + snapshots, via `ShardView`) and RSS growth;
//! * ingest-queue peaks and queue-depth time-series coverage.
//!
//! Every replay is also a correctness gate: each streamed decision is
//! checked against the trace's stamped expectation, every group's end-state
//! content counts are verified against the reference token model
//! (exactly-once accounting), and the cluster invariant check must pass.
//!
//! Two scales run by default: the CI scale (~5k top-level groups) whose
//! numbers are committed as the `ci_baseline` section, then the full scale
//! (10⁵ top-level groups plus spawned breakouts). With `MACRO_CI=1` only the
//! CI scale runs, nothing is rewritten, and the measured state-bytes-per-
//! group is asserted against the committed baseline — a >20% regression
//! fails the run. The deterministic byte axis (not RSS) carries the gate so
//! host noise can't flake it.

use std::time::Duration;

use dmps_workload::{
    generate, replay, Archetype, ReplayOptions, ReplayReport, Trace, WorkloadSpec,
};

const SEED: u64 = 8801;
const SHARDS: usize = 8;
const FLUSH_BATCH: usize = 256;
/// CI fails when state bytes per group exceed the committed baseline by
/// more than this factor.
const MEMORY_REGRESSION_BAR: f64 = 1.2;
/// The bench runs with CWD = crates/bench; the committed artifact lives at
/// the repository root.
const BENCH_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_macro.json");

fn run_scale(label: &str, spec: &WorkloadSpec) -> (Trace, ReplayReport) {
    let trace = generate(spec);
    trace
        .check_well_formed()
        .expect("generated trace is well-formed");
    let mut opts = ReplayOptions::new(SHARDS);
    opts.flush_batch = FLUSH_BATCH;
    let report = replay(&trace, &opts);
    assert!(
        report.is_clean(),
        "{label}: mismatches {:?} / invariants {:?}",
        report.mismatches,
        report.invariants
    );
    assert_eq!(
        report.streamed_ops as usize,
        trace.streamed_ops(),
        "{label}: exactly one decision per streamed op"
    );
    assert_eq!(
        report.verified_groups,
        trace.groups.len(),
        "{label}: every group's end state verified"
    );
    let subs = trace.groups.iter().filter(|g| g.parent.is_some()).count();
    println!(
        "bench macro_workload/{label:<12} groups {:>7} (+{subs} spawned)  ops {:>8}  \
         {:>9.0} ops/s  p50 {:?}  p99 {:?}  {:>6.0} state B/group",
        trace.groups.len() - subs,
        report.streamed_ops,
        report.ops_per_sec(),
        Duration::from_nanos(report.submit_latency.p50()),
        Duration::from_nanos(report.submit_latency.p99()),
        report.state_bytes_per_group(),
    );
    (trace, report)
}

fn opt_f64(v: Option<f64>) -> String {
    v.map_or_else(|| "null".to_string(), |x| format!("{x:.0}"))
}

fn section(trace: &Trace, report: &ReplayReport) -> String {
    let subs = trace.groups.iter().filter(|g| g.parent.is_some()).count();
    let mut s = String::from("{\n");
    s.push_str(&format!(
        "    \"top_groups\": {},\n    \"spawned_sub_groups\": {subs},\n",
        trace.groups.len() - subs
    ));
    s.push_str(&format!(
        "    \"groups_total\": {},\n    \"memberships\": {},\n",
        trace.groups.len(),
        report.memberships
    ));
    s.push_str(&format!(
        "    \"streamed_ops\": {},\n    \"control_ops\": {},\n",
        report.streamed_ops, report.control_ops
    ));
    s.push_str(&format!(
        "    \"setup_secs\": {:.3},\n    \"replay_secs\": {:.3},\n    \"ops_per_sec\": {:.0},\n",
        report.setup.as_secs_f64(),
        report.replay.as_secs_f64(),
        report.ops_per_sec()
    ));
    s.push_str(&format!(
        "    \"p50_submit_ns\": {},\n    \"p99_submit_ns\": {},\n",
        report.submit_latency.p50(),
        report.submit_latency.p99()
    ));
    s.push_str(&format!(
        "    \"p50_grant_ns\": {},\n    \"p99_grant_ns\": {},\n",
        report.grant_latency.p50(),
        report.grant_latency.p99()
    ));
    s.push_str(&format!(
        "    \"p50_session_ns\": {},\n    \"p99_session_ns\": {},\n",
        report.session_latency.p50(),
        report.session_latency.p99()
    ));
    s.push_str(&format!(
        "    \"state_bytes_per_group\": {:.1},\n",
        report.state_bytes_per_group()
    ));
    s.push_str(&format!(
        "    \"state_bytes\": {{\"log\": {}, \"session\": {}, \"dedup\": {}, \"snapshot\": {}}},\n",
        report.state_bytes.log,
        report.state_bytes.session,
        report.state_bytes.dedup,
        report.state_bytes.snapshot
    ));
    s.push_str(&format!(
        "    \"rss_delta_per_group\": {},\n    \"rss_peak_bytes\": {},\n",
        opt_f64(report.rss_delta_per_group()),
        opt_f64(report.rss_peak.map(|b| b as f64))
    ));
    s.push_str(&format!(
        "    \"queue_peak\": {},\n    \"queue_depth_samples\": {},\n",
        report.queue_peak, report.queue_depth_samples
    ));
    s.push_str(&format!(
        "    \"verified_groups\": {},\n    \"mismatches\": {},\n",
        report.verified_groups, report.mismatch_count
    ));
    s.push_str("    \"per_archetype\": [\n");
    for (i, arch) in Archetype::ALL.iter().enumerate() {
        let a = &report.per_archetype[i];
        s.push_str(&format!(
            "      {{\"archetype\": \"{}\", \"ops\": {}, \"granted\": {}, \"queued\": {}, \
             \"denied\": {}, \"delivered\": {}, \"rejected\": {}, \"p50_latency_ns\": {}, \
             \"p99_latency_ns\": {}}}{}\n",
            arch.label(),
            a.ops,
            a.granted,
            a.queued,
            a.denied,
            a.delivered,
            a.rejected,
            a.latency.p50(),
            a.latency.p99(),
            if i + 1 == Archetype::ALL.len() {
                ""
            } else {
                ","
            }
        ));
    }
    s.push_str("    ]\n  }");
    s
}

/// Pulls `ci_baseline.state_bytes_per_group` out of the committed
/// `BENCH_macro.json` without a JSON parser: finds the `ci_baseline` key,
/// then the first `state_bytes_per_group` after it.
fn committed_ci_state_bytes_per_group() -> Option<f64> {
    let body = std::fs::read_to_string(BENCH_PATH).ok()?;
    let start = body.find("\"ci_baseline\"")?;
    let field = "\"state_bytes_per_group\":";
    let at = body[start..].find(field)? + start + field.len();
    let rest = body[at..].trim_start();
    let end = rest
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn enforce_memory_gate(measured: f64) {
    match committed_ci_state_bytes_per_group() {
        Some(committed) => {
            let ratio = measured / committed;
            println!(
                "bench macro_workload/memory-gate  measured {measured:.1} B/group vs committed \
                 {committed:.1} (ratio {ratio:.3}, bar {MEMORY_REGRESSION_BAR:.2})"
            );
            assert!(
                ratio <= MEMORY_REGRESSION_BAR,
                "memory per group regressed: {measured:.1} B/group vs committed {committed:.1} \
                 ({ratio:.2}x > {MEMORY_REGRESSION_BAR:.2}x bar)"
            );
        }
        None => println!(
            "bench macro_workload/memory-gate  no committed baseline at {BENCH_PATH}, skipping"
        ),
    }
}

fn write_json(ci: &(Trace, ReplayReport), full: &(Trace, ReplayReport)) {
    let mut body = String::from("{\n");
    body.push_str("  \"bench\": \"macro_workload\",\n");
    body.push_str(&format!(
        "  \"host_cpus\": {},\n",
        std::thread::available_parallelism().map_or(0, |n| n.get())
    ));
    body.push_str(&format!(
        "  \"seed\": {SEED},\n  \"shards\": {SHARDS},\n  \"flush_batch\": {FLUSH_BATCH},\n"
    ));
    body.push_str(&format!("  \"ci_baseline\": {},\n", section(&ci.0, &ci.1)));
    body.push_str(&format!("  \"full\": {},\n", section(&full.0, &full.1)));
    body.push_str("  \"acceptance\": {\n");
    body.push_str(&format!(
        "    \"groups_driven\": {},\n",
        full.0.groups.len()
    ));
    body.push_str(&format!(
        "    \"groups_driven_floor\": 100000,\n    \"mismatches\": {},\n",
        ci.1.mismatch_count + full.1.mismatch_count
    ));
    body.push_str(&format!(
        "    \"memory_regression_bar\": {MEMORY_REGRESSION_BAR:.2}\n"
    ));
    body.push_str("  }\n}\n");
    std::fs::write(BENCH_PATH, &body).expect("write BENCH_macro.json");
    println!("\nwrote {BENCH_PATH}");
    print!("{body}");
}

fn main() {
    let ci_only = std::env::var("MACRO_CI").is_ok_and(|v| v == "1");

    let ci = run_scale("ci", &WorkloadSpec::ci(SEED));
    enforce_memory_gate(ci.1.state_bytes_per_group());
    if ci_only {
        // CI mode: the bars above are the gate; the committed artifact is
        // only rewritten by a full run.
        return;
    }

    let full = run_scale("full", &WorkloadSpec::full(SEED));
    assert!(
        full.0.groups.len() >= 100_000,
        "the full scale must drive at least 10^5 groups"
    );
    write_json(&ci, &full);
}
