//! Bench: the million-group macro workload — a seeded, realistic population
//! of presentation sessions replayed against a real sharded cluster, with
//! machine-readable results written to `BENCH_macro.json`.
//!
//! Where `gateway_ingest` measures hot-path ingest under synthetic uniform
//! load, this harness answers the capacity question at cluster scale: *what
//! does a production-shaped population of sessions cost?* It expands a
//! [`WorkloadSpec`] into a trace over four archetypes (lecture / seminar /
//! panel / breakout, the last mass-spawning sub-sessions through the invite
//! path), replays it through the batched gateway pipelines, and reports:
//!
//! * throughput and sampled submit→decision latency (overall, grant-path,
//!   session, and per archetype);
//! * memory per group, on two axes: deterministic per-shard state bytes
//!   (log + sessions + dedup + snapshots, via `ShardView`) and RSS growth;
//! * checkpoint cost, on two axes: ingest-stall pause (`snapshot_pause_us`,
//!   max + p99 — the number the incremental-checkpoint work exists to
//!   shrink) and deterministic differential-checkpoint bytes per group;
//! * ingest-queue peaks and queue-depth time-series coverage.
//!
//! Every replay is also a correctness gate: each streamed decision is
//! checked against the trace's stamped expectation, every group's end-state
//! content counts are verified against the reference token model
//! (exactly-once accounting), and the cluster invariant check must pass.
//!
//! Two scales run by default: the CI scale (~5k top-level groups) whose
//! numbers are committed as the `ci_baseline` section, then the full scale
//! (10⁵ top-level groups plus spawned breakouts). With `MACRO_CI=1` only the
//! CI scale runs, nothing is rewritten, and the measured state-bytes-per-
//! group and delta-bytes-per-group are asserted against the committed
//! baselines — a regression past the bar fails the run. The deterministic
//! byte axes (not RSS, not pause timings) carry the gates so host noise
//! can't flake them.
//!
//! Both modes also run the chaos soak: the [`WorkloadSpec::soak`] trace
//! replayed with 2 followers per shard, a rolling seeded crash schedule
//! that kills every shard mid-traffic, and a rolling fault plan (leader
//! partitions plus silent corruption of sealed segments, snapshot bases and
//! deltas) — zero mismatches, bounded promotion catch-up, and every
//! injected corruption detected and repaired from the replica quorum are
//! asserted, not just reported.

use std::time::Duration;

use dmps_workload::{
    generate, replay, Archetype, CrashPlan, FaultPlan, ReplayOptions, ReplayReport, Trace,
    WorkloadSpec,
};

const SEED: u64 = 8801;
const SHARDS: usize = 8;
const FLUSH_BATCH: usize = 256;
/// CI fails when state bytes per group exceed the committed baseline by
/// more than this factor.
const MEMORY_REGRESSION_BAR: f64 = 1.2;
/// CI fails when differential-checkpoint bytes per group exceed the
/// committed baseline by more than this factor. Slightly looser than the
/// state-bytes bar: delta volume tracks dirty-set churn, which shifts more
/// under benign workload-generator changes than resident state does.
const DELTA_REGRESSION_BAR: f64 = 1.35;
/// The crash soak fails if a follower promotion ever has to replay a
/// committed tail longer than this many events.
const SOAK_LAG_CEILING: u64 = 8_192;
/// The bench runs with CWD = crates/bench; the committed artifact lives at
/// the repository root.
const BENCH_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_macro.json");

fn run_scale(label: &str, spec: &WorkloadSpec) -> (Trace, ReplayReport) {
    let trace = generate(spec);
    trace
        .check_well_formed()
        .expect("generated trace is well-formed");
    let mut opts = ReplayOptions::new(SHARDS);
    opts.flush_batch = FLUSH_BATCH;
    let report = replay(&trace, &opts);
    assert!(
        report.is_clean(),
        "{label}: mismatches {:?} / invariants {:?}",
        report.mismatches,
        report.invariants
    );
    assert_eq!(
        report.streamed_ops as usize,
        trace.streamed_ops(),
        "{label}: exactly one decision per streamed op"
    );
    assert_eq!(
        report.verified_groups,
        trace.groups.len(),
        "{label}: every group's end state verified"
    );
    let subs = trace.groups.iter().filter(|g| g.parent.is_some()).count();
    println!(
        "bench macro_workload/{label:<12} groups {:>7} (+{subs} spawned)  ops {:>8}  \
         {:>9.0} ops/s  p50 {:?}  p99 {:?}  {:>6.0} state B/group  pause p99 {}us max {}us",
        trace.groups.len() - subs,
        report.streamed_ops,
        report.ops_per_sec(),
        Duration::from_nanos(report.submit_latency.p50()),
        Duration::from_nanos(report.submit_latency.p99()),
        report.state_bytes_per_group(),
        report.snapshot_pause_us.p99(),
        report.snapshot_pause_us.max(),
    );
    (trace, report)
}

fn opt_f64(v: Option<f64>) -> String {
    v.map_or_else(|| "null".to_string(), |x| format!("{x:.0}"))
}

fn section(trace: &Trace, report: &ReplayReport) -> String {
    let subs = trace.groups.iter().filter(|g| g.parent.is_some()).count();
    let mut s = String::from("{\n");
    s.push_str(&format!(
        "    \"top_groups\": {},\n    \"spawned_sub_groups\": {subs},\n",
        trace.groups.len() - subs
    ));
    s.push_str(&format!(
        "    \"groups_total\": {},\n    \"memberships\": {},\n",
        trace.groups.len(),
        report.memberships
    ));
    s.push_str(&format!(
        "    \"streamed_ops\": {},\n    \"control_ops\": {},\n",
        report.streamed_ops, report.control_ops
    ));
    s.push_str(&format!(
        "    \"setup_secs\": {:.3},\n    \"replay_secs\": {:.3},\n    \"ops_per_sec\": {:.0},\n",
        report.setup.as_secs_f64(),
        report.replay.as_secs_f64(),
        report.ops_per_sec()
    ));
    s.push_str(&format!(
        "    \"p50_submit_ns\": {},\n    \"p99_submit_ns\": {},\n",
        report.submit_latency.p50(),
        report.submit_latency.p99()
    ));
    s.push_str(&format!(
        "    \"p50_grant_ns\": {},\n    \"p99_grant_ns\": {},\n",
        report.grant_latency.p50(),
        report.grant_latency.p99()
    ));
    s.push_str(&format!(
        "    \"p50_session_ns\": {},\n    \"p99_session_ns\": {},\n",
        report.session_latency.p50(),
        report.session_latency.p99()
    ));
    s.push_str(&format!(
        "    \"state_bytes_per_group\": {:.1},\n",
        report.state_bytes_per_group()
    ));
    s.push_str(&format!(
        "    \"state_bytes\": {{\"log\": {}, \"session\": {}, \"dedup\": {}, \"snapshot\": {}}},\n",
        report.state_bytes.log,
        report.state_bytes.session,
        report.state_bytes.dedup,
        report.state_bytes.snapshot
    ));
    s.push_str(&format!(
        "    \"snapshot_pause_us\": {{\"count\": {}, \"max\": {}, \"p99\": {}}},\n",
        report.snapshot_pause_us.count(),
        report.snapshot_pause_us.max(),
        report.snapshot_pause_us.p99()
    ));
    s.push_str(&format!(
        "    \"snapshot_deltas\": {},\n    \"snapshot_delta_bytes_per_group\": {:.1},\n",
        report.snapshot_deltas,
        delta_bytes_per_group(trace, report)
    ));
    s.push_str(&format!(
        "    \"rss_delta_per_group\": {},\n    \"rss_peak_bytes\": {},\n",
        opt_f64(report.rss_delta_per_group()),
        opt_f64(report.rss_peak.map(|b| b as f64))
    ));
    s.push_str(&format!(
        "    \"queue_peak\": {},\n    \"queue_depth_samples\": {},\n",
        report.queue_peak, report.queue_depth_samples
    ));
    s.push_str(&format!(
        "    \"verified_groups\": {},\n    \"mismatches\": {},\n",
        report.verified_groups, report.mismatch_count
    ));
    s.push_str("    \"per_archetype\": [\n");
    for (i, arch) in Archetype::ALL.iter().enumerate() {
        let a = &report.per_archetype[i];
        s.push_str(&format!(
            "      {{\"archetype\": \"{}\", \"ops\": {}, \"granted\": {}, \"queued\": {}, \
             \"denied\": {}, \"delivered\": {}, \"rejected\": {}, \"p50_latency_ns\": {}, \
             \"p99_latency_ns\": {}}}{}\n",
            arch.label(),
            a.ops,
            a.granted,
            a.queued,
            a.denied,
            a.delivered,
            a.rejected,
            a.latency.p50(),
            a.latency.p99(),
            if i + 1 == Archetype::ALL.len() {
                ""
            } else {
                ","
            }
        ));
    }
    s.push_str("    ]\n  }");
    s
}

/// Differential-checkpoint bytes normalized per driven group — the
/// deterministic axis the CI gate rides (byte volume, not pause timing, so
/// host noise can't flake it).
fn delta_bytes_per_group(trace: &Trace, report: &ReplayReport) -> f64 {
    report.snapshot_delta_bytes as f64 / trace.groups.len().max(1) as f64
}

/// Pulls `ci_baseline.<axis>` out of the committed `BENCH_macro.json`
/// without a JSON parser: finds the `ci_baseline` key, then the first
/// occurrence of the axis after it.
fn committed_ci_axis(axis: &str) -> Option<f64> {
    let body = std::fs::read_to_string(BENCH_PATH).ok()?;
    let start = body.find("\"ci_baseline\"")?;
    let field = format!("\"{axis}\":");
    let at = body[start..].find(&field)? + start + field.len();
    let rest = body[at..].trim_start();
    let end = rest
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Asserts `measured / committed <= bar` for one deterministic CI axis,
/// skipping (with a note) when the committed artifact predates the axis.
fn enforce_ci_gate(label: &str, axis: &str, measured: f64, bar: f64) {
    match committed_ci_axis(axis) {
        Some(committed) if committed > 0.0 => {
            let ratio = measured / committed;
            println!(
                "bench macro_workload/{label}-gate  measured {measured:.1} B/group vs committed \
                 {committed:.1} (ratio {ratio:.3}, bar {bar:.2})"
            );
            assert!(
                ratio <= bar,
                "{label} per group regressed: {measured:.1} B/group vs committed {committed:.1} \
                 ({ratio:.2}x > {bar:.2}x bar)"
            );
        }
        _ => println!(
            "bench macro_workload/{label}-gate  no committed \"{axis}\" baseline at \
             {BENCH_PATH}, skipping"
        ),
    }
}

/// The chaos soak: the long-script [`WorkloadSpec::soak`] trace replayed
/// with follower replication, a rolling seeded crash schedule that kills
/// every shard (round-robin) while the trace is in flight, and a rolling
/// fault plan that partitions leaders mid-quorum-write and silently
/// corrupts every checksummed artifact class (sealed segments, snapshot
/// bases, snapshot deltas). Every crash and demotion goes through
/// epoch-bumping follower promotion; the assertions are exactly-once
/// delivery (zero mismatches, every streamed op decided exactly once),
/// bounded promotion catch-up, and that every injected corruption was
/// detected by its checksum and repaired from the replica quorum.
fn run_soak() {
    const SOAK_SHARDS: usize = 4;
    const SOAK_CRASHES: usize = 8;
    const SOAK_FAULTS: usize = 12;
    let spec = WorkloadSpec::soak(SEED);
    let trace = generate(&spec);
    trace
        .check_well_formed()
        .expect("soak trace is well-formed");
    let mut opts = ReplayOptions::new(SOAK_SHARDS);
    opts.replicas = 2;
    opts.flush_batch = 64;
    opts.crashes = CrashPlan::rolling(SOAK_CRASHES, trace.ops.len(), SOAK_SHARDS);
    opts.faults = FaultPlan::rolling(SOAK_FAULTS, trace.ops.len(), SOAK_SHARDS);
    let report = replay(&trace, &opts);
    assert!(
        report.is_clean(),
        "soak: mismatches {:?} / invariants {:?}",
        report.mismatches,
        report.invariants
    );
    assert_eq!(
        report.streamed_ops as usize,
        trace.streamed_ops(),
        "soak: exactly one decision per streamed op across {SOAK_CRASHES} crashes and \
         {SOAK_FAULTS} faults"
    );
    assert!(
        report.catch_up_lag_max <= SOAK_LAG_CEILING,
        "soak: promotion catch-up unbounded: {} events > {SOAK_LAG_CEILING}",
        report.catch_up_lag_max
    );
    assert!(
        report.fault_partitions > 0,
        "soak: the fault plan must have partitioned at least one leader"
    );
    assert!(
        report.fault_checksum_failures > 0,
        "soak: every injected corruption must be *detected*, not slip through"
    );
    assert!(
        report.fault_repairs > 0,
        "soak: detected corruption must be repaired from the replica quorum"
    );
    println!(
        "bench macro_workload/soak         groups {:>7}  ops {:>8}  crashes {SOAK_CRASHES}  \
         partitions {}  checksum fails {}  repairs {}  resubmits {}  catch-up lag max {}  \
         pause p99 {}us max {}us",
        trace.groups.len(),
        report.streamed_ops,
        report.fault_partitions,
        report.fault_checksum_failures,
        report.fault_repairs,
        report.resubmits,
        report.catch_up_lag_max,
        report.snapshot_pause_us.p99(),
        report.snapshot_pause_us.max(),
    );
}

fn write_json(ci: &(Trace, ReplayReport), full: &(Trace, ReplayReport)) {
    let mut body = String::from("{\n");
    body.push_str("  \"bench\": \"macro_workload\",\n");
    body.push_str(&format!(
        "  \"host_cpus\": {},\n",
        std::thread::available_parallelism().map_or(0, |n| n.get())
    ));
    body.push_str(&format!(
        "  \"seed\": {SEED},\n  \"shards\": {SHARDS},\n  \"flush_batch\": {FLUSH_BATCH},\n"
    ));
    body.push_str(&format!("  \"ci_baseline\": {},\n", section(&ci.0, &ci.1)));
    body.push_str(&format!("  \"full\": {},\n", section(&full.0, &full.1)));
    body.push_str("  \"acceptance\": {\n");
    body.push_str(&format!(
        "    \"groups_driven\": {},\n",
        full.0.groups.len()
    ));
    body.push_str(&format!(
        "    \"groups_driven_floor\": 100000,\n    \"mismatches\": {},\n",
        ci.1.mismatch_count + full.1.mismatch_count
    ));
    body.push_str(&format!(
        "    \"full_p99_submit_ns\": {},\n    \"full_p99_submit_target_ns\": 40000000,\n",
        full.1.submit_latency.p99()
    ));
    body.push_str(&format!(
        "    \"memory_regression_bar\": {MEMORY_REGRESSION_BAR:.2},\n"
    ));
    body.push_str(&format!(
        "    \"delta_bytes_regression_bar\": {DELTA_REGRESSION_BAR:.2}\n"
    ));
    body.push_str("  }\n}\n");
    std::fs::write(BENCH_PATH, &body).expect("write BENCH_macro.json");
    println!("\nwrote {BENCH_PATH}");
    print!("{body}");
}

fn main() {
    let ci_only = std::env::var("MACRO_CI").is_ok_and(|v| v == "1");

    let ci = run_scale("ci", &WorkloadSpec::ci(SEED));
    enforce_ci_gate(
        "memory",
        "state_bytes_per_group",
        ci.1.state_bytes_per_group(),
        MEMORY_REGRESSION_BAR,
    );
    enforce_ci_gate(
        "delta-bytes",
        "snapshot_delta_bytes_per_group",
        delta_bytes_per_group(&ci.0, &ci.1),
        DELTA_REGRESSION_BAR,
    );
    run_soak();
    if ci_only {
        // CI mode: the bars above are the gate; the committed artifact is
        // only rewritten by a full run.
        return;
    }

    let full = run_scale("full", &WorkloadSpec::full(SEED));
    assert!(
        full.0.groups.len() >= 100_000,
        "the full scale must drive at least 10^5 groups"
    );
    write_json(&ci, &full);
}
