//! Bench: the two costs of replicating a shard, with machine-readable
//! results written to `BENCH_replication.json`.
//!
//! * **Read axis** (`reads/leader-only`, `reads/replicas-N`) — the Equal
//!   Control hot poll: four reader gateways hammer `session_view` and
//!   `queue_position` across a populated campus. Leader-only reads contend
//!   on each owning shard's state lock; with followers the same reads
//!   round-robin across the replica fleet under the read-your-writes bound
//!   (fresh reader gateways carry no bound, so followers always qualify).
//!   The acceptance bar is ≥ 1.5× leader-only read throughput at
//!   3 replicas.
//! * **Ingest axis** (`ingest/unreplicated`, `ingest/replicas-3`) — the
//!   batched speak/release waves of `gateway_ingest`, re-run with each
//!   shard quorum-replicating its group commits over the simulated replica
//!   links. The pipelined quorum write (one round-trip per batch, worker
//!   draining while acknowledgements are in flight) must hold quorum
//!   ingest at ≥ 0.85× the unreplicated baseline.
//!
//! Both bars are judged against same-process, same-host comparators; when
//! host noise lands a pair outside its bar the whole pair is re-measured
//! evenhandedly (same attempt count per side, best attempt kept) before
//! the bar is enforced. The replication counters
//! (`cluster.shard.N.replica.*`) of each replicated case are reported as
//! extra columns.

use std::time::{Duration, Instant};

use dmps_cluster::{Cluster, ClusterConfig, Gateway, GlobalGroupId, GlobalMemberId, GlobalRequest};
use dmps_floor::{FcmMode, Member, Role};

const SHARDS: usize = 2;
const GROUPS: usize = 96;
const MEMBERS: usize = 4;
const READERS: usize = 4;
const INGEST_GATEWAYS: usize = 2;
/// One read pass: every group's session view plus every member's queue
/// position.
const READS_PER_ITER: u64 = (GROUPS * (1 + MEMBERS)) as u64;
/// One ingest pass: a speak wave plus a release wave through every group.
const REQUESTS_PER_ITER: u64 = (GROUPS * 2 * MEMBERS) as u64;
const READ_BAR: f64 = 1.5;
const INGEST_BAR: f64 = 0.85;

type Lectures = Vec<(GlobalGroupId, Vec<GlobalMemberId>)>;

fn campus(replicas: usize) -> (Cluster, Lectures) {
    let mut cluster = Cluster::new(ClusterConfig {
        replicas,
        // Durability knobs match the gateway_ingest throughput axes so the
        // unreplicated comparator is the same machine measured there.
        snapshot_every: 0,
        snapshot_every_bytes: 0,
        dedup_window: 0,
        ingest_batch: 512,
        ..ClusterConfig::with_shards(SHARDS)
    });
    let mut lectures = Vec::new();
    for g in 0..GROUPS {
        let gid = cluster
            .create_group(format!("lecture-{g}"), FcmMode::EqualControl)
            .expect("all shards active");
        let roster: Vec<GlobalMemberId> = (0..MEMBERS)
            .map(|m| {
                let role = if m == 0 {
                    Role::Chair
                } else {
                    Role::Participant
                };
                let member = cluster.register_member(Member::new(format!("u{g}-{m}"), role));
                cluster.join_group(gid, member).expect("fresh group");
                member
            })
            .collect();
        lectures.push((gid, roster));
    }
    (cluster, lectures)
}

/// The speak + release wave for one slice of the campus, in submission
/// order.
fn wave(slice: &[(GlobalGroupId, Vec<GlobalMemberId>)]) -> Vec<GlobalRequest> {
    let mut requests = Vec::with_capacity(slice.len() * MEMBERS * 2);
    for (gid, roster) in slice {
        for &member in roster {
            requests.push(GlobalRequest::speak(*gid, member));
        }
    }
    for (gid, roster) in slice {
        for &member in roster {
            requests.push(GlobalRequest::release_floor(*gid, member));
        }
    }
    requests
}

/// Measures `iter` over several independent windows (~150 ms each, min 3
/// iterations) after a warm-up and keeps the **fastest** window — host
/// noise only ever subtracts throughput. Returns (mean seconds/iter of
/// that window, elements/sec).
fn measure(elems_per_iter: u64, mut iter: impl FnMut()) -> (f64, f64) {
    iter(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        let mut iters = 0u32;
        while iters < 3 || start.elapsed() < Duration::from_millis(150) {
            iter();
            iters += 1;
        }
        best = best.min(start.elapsed().as_secs_f64() / f64::from(iters));
    }
    (best, elems_per_iter as f64 / best)
}

struct CaseResult {
    case: String,
    mean_secs: f64,
    elems_per_sec: f64,
    extra: Vec<(&'static str, f64)>,
}

fn report(result: &CaseResult) {
    let mean = Duration::from_secs_f64(result.mean_secs);
    let extras: String = result
        .extra
        .iter()
        .map(|(k, v)| format!("  {k} {v:.0}"))
        .collect();
    println!(
        "bench replication/{:<28} mean {mean:>12?}  {:>12.1} elem/s{extras}",
        result.case, result.elems_per_sec
    );
}

/// Sums a `cluster.shard.N.replica.*` counter across the fleet.
fn replica_counter(cluster: &Cluster, name: &str) -> f64 {
    (0..SHARDS)
        .map(|s| {
            cluster
                .metrics()
                .counter(&format!("cluster.shard.{s}.replica.{name}"))
                .get() as f64
        })
        .sum()
}

/// The read axis: `READERS` gateways polling session views and queue
/// positions over a campus whose queues were populated once up front.
fn read_case(replicas: usize) -> CaseResult {
    let (cluster, lectures) = campus(replicas);
    // Populate every group: the chair holds the floor, everyone else
    // queues — the state the hot poll is about.
    let writer = cluster.gateway();
    for (gid, roster) in &lectures {
        for &member in roster {
            writer
                .request(GlobalRequest::speak(*gid, member))
                .expect("routable");
        }
    }
    // Fresh reader gateways: no writes, so their read-your-writes bound is
    // zero and any follower qualifies.
    let readers: Vec<Gateway> = (0..READERS).map(|_| cluster.gateway()).collect();
    let slices: Vec<&[(GlobalGroupId, Vec<GlobalMemberId>)]> =
        lectures.chunks(lectures.len().div_ceil(READERS)).collect();
    let (mean_secs, elems_per_sec) = measure(READS_PER_ITER, || {
        std::thread::scope(|scope| {
            for (gateway, slice) in readers.iter().zip(&slices) {
                scope.spawn(move || {
                    for (gid, roster) in *slice {
                        let view = gateway.session_view(*gid).expect("group live");
                        assert!(view.chat.is_empty());
                        for &member in roster {
                            let position =
                                gateway.queue_position(*gid, member).expect("member known");
                            assert!(position.is_some(), "everyone holds or queues");
                        }
                    }
                });
            }
        })
    });
    let (case, extra) = if replicas == 0 {
        ("reads/leader-only".to_string(), Vec::new())
    } else {
        (
            format!("reads/replicas-{replicas}"),
            vec![
                (
                    "follower_reads",
                    replica_counter(&cluster, "follower_reads"),
                ),
                (
                    "forwarded_reads",
                    replica_counter(&cluster, "forwarded_reads"),
                ),
            ],
        )
    };
    CaseResult {
        case,
        mean_secs,
        elems_per_sec,
        extra,
    }
}

/// The ingest axis: batched speak/release waves, group-committed and (when
/// `replicas > 0`) quorum-replicated through the pipelined write path.
fn ingest_case(replicas: usize) -> CaseResult {
    let (cluster, lectures) = campus(replicas);
    let handles: Vec<Gateway> = (0..INGEST_GATEWAYS).map(|_| cluster.gateway()).collect();
    let slices: Vec<&[(GlobalGroupId, Vec<GlobalMemberId>)]> = lectures
        .chunks(lectures.len().div_ceil(INGEST_GATEWAYS))
        .collect();
    let (mean_secs, elems_per_sec) = measure(REQUESTS_PER_ITER, || {
        std::thread::scope(|scope| {
            for (gateway, slice) in handles.iter().zip(&slices) {
                scope.spawn(move || {
                    let requests = wave(slice);
                    let mut sent = 0;
                    for chunk in requests.chunks(256) {
                        sent += gateway.submit_batch(chunk).len();
                    }
                    gateway.collect_decisions(sent).expect("pipelines alive")
                });
            }
        })
    });
    let (case, extra) = if replicas == 0 {
        ("ingest/unreplicated".to_string(), Vec::new())
    } else {
        (
            format!("ingest/replicas-{replicas}"),
            vec![
                ("acks", replica_counter(&cluster, "acks")),
                ("retransmits", replica_counter(&cluster, "retransmits")),
                ("resyncs", replica_counter(&cluster, "resyncs")),
            ],
        )
    };
    CaseResult {
        case,
        mean_secs,
        elems_per_sec,
        extra,
    }
}

/// Re-measures a comparator pair evenhandedly until `accept` holds or the
/// retries run out, keeping each side's best attempt.
fn settle_pair(
    results: &mut [CaseResult],
    base_index: usize,
    test_index: usize,
    rebuild: impl Fn(usize) -> CaseResult,
    base_replicas: usize,
    test_replicas: usize,
    accept: impl Fn(f64, f64) -> bool,
) {
    for _ in 0..2 {
        if accept(
            results[base_index].elems_per_sec,
            results[test_index].elems_per_sec,
        ) {
            break;
        }
        for (index, replicas) in [(base_index, base_replicas), (test_index, test_replicas)] {
            let retry = rebuild(replicas);
            report(&retry);
            if retry.elems_per_sec > results[index].elems_per_sec {
                results[index] = retry;
            }
        }
    }
}

fn write_json(results: &[CaseResult], read_speedup: f64, ingest_ratio: f64) {
    let mut body = String::from("{\n");
    body.push_str("  \"bench\": \"replication\",\n");
    body.push_str(&format!(
        "  \"host_cpus\": {},\n",
        std::thread::available_parallelism().map_or(0, |n| n.get())
    ));
    body.push_str(&format!("  \"shards\": {SHARDS},\n"));
    body.push_str(&format!("  \"groups\": {GROUPS},\n"));
    body.push_str(&format!("  \"members_per_group\": {MEMBERS},\n"));
    body.push_str(&format!("  \"reader_gateways\": {READERS},\n"));
    body.push_str(&format!("  \"reads_per_iteration\": {READS_PER_ITER},\n"));
    body.push_str(&format!(
        "  \"requests_per_iteration\": {REQUESTS_PER_ITER},\n"
    ));
    body.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let extras: String = r
            .extra
            .iter()
            .map(|(k, v)| format!(", \"{k}\": {v:.0}"))
            .collect();
        body.push_str(&format!(
            "    {{\"case\": \"{}\", \"mean_iter_secs\": {:.6}, \"elems_per_sec\": {:.0}{extras}}}{}\n",
            r.case,
            r.mean_secs,
            r.elems_per_sec,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    body.push_str("  ],\n");
    body.push_str("  \"acceptance\": {\n");
    body.push_str(&format!(
        "    \"read_speedup_3_replicas_vs_leader_only\": {read_speedup:.2},\n"
    ));
    body.push_str(&format!("    \"read_speedup_bar\": {READ_BAR},\n"));
    body.push_str(&format!(
        "    \"quorum_ingest_over_unreplicated\": {ingest_ratio:.3},\n"
    ));
    body.push_str(&format!("    \"quorum_ingest_bar\": {INGEST_BAR}\n"));
    body.push_str("  }\n}\n");
    // The bench runs with CWD = crates/bench; the committed artifact lives
    // at the repository root.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_replication.json");
    std::fs::write(path, &body).expect("write BENCH_replication.json");
    println!("\nwrote {path}");
    print!("{body}");
}

fn main() {
    let mut results = Vec::new();
    for replicas in [0usize, 1, 2, 3] {
        results.push(read_case(replicas));
        report(results.last().unwrap());
    }
    let leader_index = 0;
    let fleet_index = 3;
    settle_pair(
        &mut results,
        leader_index,
        fleet_index,
        read_case,
        0,
        3,
        |base, test| test >= READ_BAR * base,
    );

    let base = results.len();
    results.push(ingest_case(0));
    report(results.last().unwrap());
    results.push(ingest_case(3));
    report(results.last().unwrap());
    settle_pair(
        &mut results,
        base,
        base + 1,
        ingest_case,
        0,
        3,
        |b, test| test >= INGEST_BAR * b,
    );

    let read_speedup = results[fleet_index].elems_per_sec / results[leader_index].elems_per_sec;
    let ingest_ratio = results[base + 1].elems_per_sec / results[base].elems_per_sec;
    assert!(
        read_speedup >= READ_BAR,
        "3-replica follower reads must reach {READ_BAR}x leader-only (got {read_speedup:.2}x)"
    );
    assert!(
        ingest_ratio >= INGEST_BAR,
        "quorum ingest must hold {INGEST_BAR}x of unreplicated (got {ingest_ratio:.3}x)"
    );
    write_json(&results, read_speedup, ingest_ratio);
}
