//! Criterion bench for experiment E8: arbitration throughput as the group
//! grows — the scalability of the server-side group administration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use dmps_floor::{FcmMode, FloorArbiter, FloorRequest};

fn bench_arbiter_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("arbiter_throughput");
    group.sample_size(20);
    for &members in &[2usize, 16, 64, 256, 512] {
        for mode in [FcmMode::FreeAccess, FcmMode::EqualControl] {
            let label = format!("{members}-members/{mode}");
            group.throughput(Throughput::Elements(members as u64));
            group.bench_with_input(BenchmarkId::from_parameter(label), &members, |b, &n| {
                let (mut arbiter, grp, teacher, students) = FloorArbiter::lecture(n - 1, mode);
                let all: Vec<_> = std::iter::once(teacher).chain(students).collect();
                b.iter(|| {
                    // One request per member, then release everything for the
                    // next iteration so token state does not accumulate.
                    for &m in &all {
                        let _ = arbiter.arbitrate(&FloorRequest::speak(grp, m)).unwrap();
                    }
                    if mode == FcmMode::EqualControl {
                        // Drain the token queue.
                        let mut holder = arbiter.token(grp).unwrap().holder();
                        while let Some(h) = holder {
                            let _ = arbiter.arbitrate(&FloorRequest::release_floor(grp, h));
                            holder = arbiter.token(grp).unwrap().holder();
                        }
                    }
                    arbiter.stats()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_arbiter_scaling);
criterion_main!(benches);
