//! Bench: live-migration throughput of `rebalance_active` — groups per
//! second moved to a freshly added shard while every group is floor-active
//! (held token + queued requester), i.e. in exactly the state
//! `rebalance_idle` can never move.
//!
//! Two cases:
//!
//! * `quiescent` — no traffic during the migration: the pure cost of the
//!   two-phase handoff (freeze, export, install via logged events, directory
//!   flip, source purge) per group.
//! * `under-ingest` — a gateway thread keeps streaming speak requests at the
//!   migrating groups throughout. Submissions that hit a frozen window park
//!   at the routing layer and are re-driven after the commit, so the ingest
//!   thread still collects every decision — the bench asserts that, which
//!   keeps the "migration does not lose traffic" property honest under
//!   timing pressure.
//!
//! Each iteration builds the displaced state from scratch (a migration is
//! one-shot), so the reported mean includes campus setup; the relative gap
//! between the two cases isolates what concurrent ingest costs.

use std::sync::atomic::{AtomicBool, Ordering};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use dmps_cluster::{Cluster, ClusterConfig, GlobalGroupId, GlobalMemberId, GlobalRequest};
use dmps_floor::{FcmMode, Member, Role};

const SHARDS: usize = 4;
const GROUPS: usize = 64;
const MEMBERS: usize = 3;

/// A campus where every group is floor-active: member 0 holds the token and
/// member 1 queues behind it.
fn busy_campus() -> (Cluster, Vec<(GlobalGroupId, Vec<GlobalMemberId>)>) {
    let mut cluster = Cluster::new(ClusterConfig {
        snapshot_every: 0,
        snapshot_every_bytes: 0,
        dedup_window: 256,
        ..ClusterConfig::with_shards(SHARDS)
    });
    let mut lectures = Vec::new();
    for g in 0..GROUPS {
        let gid = cluster
            .create_group(format!("lecture-{g}"), FcmMode::EqualControl)
            .expect("all shards active");
        let roster: Vec<GlobalMemberId> = (0..MEMBERS)
            .map(|m| {
                let role = if m == 0 {
                    Role::Chair
                } else {
                    Role::Participant
                };
                let member = cluster.register_member(Member::new(format!("u{g}-{m}"), role));
                cluster.join_group(gid, member).expect("fresh group");
                member
            })
            .collect();
        cluster
            .request(GlobalRequest::speak(gid, roster[0]))
            .expect("token granted");
        cluster
            .request(GlobalRequest::speak(gid, roster[1]))
            .expect("request queued");
        lectures.push((gid, roster));
    }
    (cluster, lectures)
}

fn bench_rebalance(c: &mut Criterion) {
    let mut group = c.benchmark_group("rebalance_active");
    group.sample_size(10);
    group.throughput(Throughput::Elements(GROUPS as u64));

    group.bench_with_input(BenchmarkId::from_parameter("quiescent"), &(), |b, _| {
        b.iter(|| {
            let (mut cluster, _) = busy_campus();
            cluster.add_shard();
            let report = cluster.rebalance_active().expect("directory intact");
            assert!(report.deferred.is_empty(), "a busy cluster must drain");
            report.migrated.len()
        })
    });

    group.bench_with_input(BenchmarkId::from_parameter("under-ingest"), &(), |b, _| {
        b.iter(|| {
            let (mut cluster, lectures) = busy_campus();
            cluster.add_shard();
            let gateway = cluster.gateway();
            let stop = AtomicBool::new(false);
            let migrated = std::thread::scope(|scope| {
                let ingest = scope.spawn(|| {
                    // Stream speak waves at the migrating groups until the
                    // rebalance finishes, collecting each wave's decisions
                    // before sending the next so ingest paces itself to
                    // the cluster's service rate instead of flooding the
                    // worker queues the handoff commands share. Parked
                    // submissions are re-driven after each commit, so
                    // every decision arrives.
                    let mut sent = 0usize;
                    while !stop.load(Ordering::Relaxed) {
                        for (gid, roster) in &lectures {
                            gateway
                                .submit(GlobalRequest::speak(*gid, roster[2]))
                                .expect("routable");
                        }
                        sent += lectures.len();
                        gateway
                            .collect_decisions(lectures.len())
                            .expect("pipelines alive");
                    }
                    sent
                });
                let report = cluster.rebalance_active().expect("directory intact");
                stop.store(true, Ordering::Relaxed);
                assert!(report.deferred.is_empty(), "a busy cluster must drain");
                let sent = ingest.join().expect("ingest thread");
                assert!(sent > 0);
                report.migrated.len()
            });
            migrated
        })
    });

    group.finish();
}

criterion_group!(benches, bench_rebalance);
criterion_main!(benches);
