//! Shared builders for the benchmark harness and the figure/experiment
//! reproduction binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Duration;

use dmps::{Session, SessionConfig};
use dmps_floor::{FcmMode, Role};
use dmps_media::{MediaKind, MediaObject, PresentationDocument, TemporalRelation};
use dmps_simnet::{Link, LocalClock};

/// The lecture presentation used throughout the experiments: a 40-second
/// lip-synced video+narration with slides for the first 30 seconds and a
/// 15-second quiz afterwards — the structure sketched in Figure 1 of the
/// paper.
pub fn lecture_document() -> PresentationDocument {
    let mut doc = PresentationDocument::new("figure-1-lecture");
    let video = doc.add_object(MediaObject::new(
        "lecture-video",
        MediaKind::Video,
        Duration::from_secs(40),
    ));
    let narration = doc.add_object(MediaObject::new(
        "narration",
        MediaKind::Audio,
        Duration::from_secs(40),
    ));
    let slides = doc.add_object(MediaObject::new(
        "slides",
        MediaKind::Slide,
        Duration::from_secs(30),
    ));
    let quiz = doc.add_object(MediaObject::new(
        "quiz",
        MediaKind::Text,
        Duration::from_secs(15),
    ));
    doc.relate(video, TemporalRelation::Equals, narration)
        .expect("distinct objects");
    doc.relate(video, TemporalRelation::StartedBy, slides)
        .expect("distinct objects");
    doc.relate(video, TemporalRelation::Meets, quiz)
        .expect("distinct objects");
    doc.add_interaction(
        "quiz-answers",
        Duration::from_secs(45),
        Duration::from_secs(8),
    );
    doc
}

/// A sequential presentation of `segments` equal-length video segments, used
/// for parameter sweeps.
pub fn sequential_document(segments: usize, segment: Duration) -> PresentationDocument {
    let mut doc = PresentationDocument::new(format!("sequence-{segments}"));
    let mut prev = None;
    for i in 0..segments {
        let seg = doc.add_object(MediaObject::new(
            format!("seg-{i}"),
            MediaKind::Video,
            segment,
        ));
        if let Some(p) = prev {
            doc.relate(p, TemporalRelation::Meets, seg)
                .expect("distinct objects");
        }
        prev = Some(seg);
    }
    doc
}

/// Builds a session with one teacher on the LAN and `students` students whose
/// links alternate between DSL and WAN and whose clocks drift by
/// `±drift_ppm` / `±offset_ms` in an alternating pattern.
pub fn classroom_session(
    seed: u64,
    mode: FcmMode,
    students: usize,
    drift_ppm: f64,
    offset_ms: i64,
    admission: bool,
) -> (Session, usize, Vec<usize>) {
    let mut config = SessionConfig::new(seed, mode);
    if !admission {
        config = config.without_admission_control();
    }
    let mut session = Session::new(config);
    let teacher = session.add_client("teacher", Role::Chair, Link::lan(), LocalClock::perfect());
    let students = (0..students)
        .map(|i| {
            let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
            let link = if i % 2 == 0 { Link::dsl() } else { Link::wan() };
            session.add_client(
                format!("student-{i}"),
                Role::Participant,
                link,
                LocalClock::new(sign * drift_ppm, sign as i64 * offset_ms * 1_000_000),
            )
        })
        .collect();
    session.pump();
    (session, teacher, students)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lecture_document_solves() {
        let doc = lecture_document();
        assert_eq!(doc.object_count(), 4);
        assert_eq!(
            doc.timeline().unwrap().total_duration(),
            Duration::from_secs(55)
        );
    }

    #[test]
    fn sequential_document_solves() {
        let doc = sequential_document(5, Duration::from_secs(4));
        assert_eq!(
            doc.timeline().unwrap().total_duration(),
            Duration::from_secs(20)
        );
    }

    #[test]
    fn classroom_session_joins_everyone() {
        let (session, teacher, students) =
            classroom_session(1, FcmMode::FreeAccess, 4, 200.0, 10, true);
        assert!(session.member_of(teacher).is_ok());
        assert_eq!(students.len(), 4);
        for s in students {
            assert!(session.member_of(s).is_ok());
        }
    }
}
