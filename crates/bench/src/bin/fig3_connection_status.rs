//! Figure 3 reproduction: the communication stage — annotation broadcast
//! (3a), connection lights while everything is healthy (3b), and the red
//! light after a client disconnects (3c).
//!
//! Run with: `cargo run -p dmps-bench --bin fig3_connection_status`

use std::time::Duration;

use dmps::render::render_connection_lights;
use dmps::{Session, SessionConfig};
use dmps_floor::{FcmMode, Role};
use dmps_simnet::{DropReason, Link, LocalClock};

fn main() {
    let mut session = Session::new(SessionConfig::new(2003, FcmMode::FreeAccess));
    let teacher = session.add_client("teacher", Role::Chair, Link::lan(), LocalClock::perfect());
    let alice = session.add_client(
        "alice",
        Role::Participant,
        Link::dsl(),
        LocalClock::perfect(),
    );
    let bob = session.add_client("bob", Role::Participant, Link::wan(), LocalClock::perfect());
    session.pump();

    // --- 3(a): the teacher sends an annotation to every client -------------
    println!("== Figure 3(a): teacher annotation broadcast ==");
    session.send_annotation(teacher, "Please annotate exercise 2 on your copies.");
    session.pump();
    for (name, idx) in [("alice", alice), ("bob", bob)] {
        println!(
            "  {name} received {} annotation(s): {:?}",
            session.client(idx).annotations().len(),
            session.client(idx).annotations()
        );
    }

    // --- 3(b): all lights green while heartbeats flow -----------------------
    let until = session.now() + Duration::from_secs(5);
    session.run_until(until);
    println!("\n== Figure 3(b): all connections healthy ==");
    println!(
        "{}",
        render_connection_lights(session.server(), session.now())
    );

    // --- 3(c): bob's connection drops; his light turns red ------------------
    session.set_client_link_up(bob, false);
    session.send_annotation(teacher, "Second annotation — bob will miss this one.");
    let until = session.now() + Duration::from_secs(10);
    session.run_until(until);
    println!("== Figure 3(c): bob disconnected ==");
    println!(
        "{}",
        render_connection_lights(session.server(), session.now())
    );
    let drops = session
        .network()
        .dropped()
        .iter()
        .filter(|d| d.reason == DropReason::LinkDown)
        .count();
    println!("messages dropped on the dead link: {drops}");
    println!(
        "alice has {} annotations, bob still has {}",
        session.client(alice).annotations().len(),
        session.client(bob).annotations().len()
    );

    // Recovery: the light goes back to green.
    session.set_client_link_up(bob, true);
    let until = session.now() + Duration::from_secs(6);
    session.run_until(until);
    println!("\n== after reconnection ==");
    println!(
        "{}",
        render_connection_lights(session.server(), session.now())
    );
}
