//! Experiment E4: global-clock synchronization.
//!
//! Sweeps client clock offset/drift and link latency, and reports the
//! cross-client playback skew with and without the paper's admission rule.
//! The paper's claim: the centralized global clock keeps the distributed
//! presentation synchronous despite clock skew and bounded network delay.
//!
//! Run with: `cargo run -p dmps-bench --bin exp_clock_sync --release`

use std::time::Duration;

use dmps::PresentationDriver;
use dmps_bench::{classroom_session, sequential_document};
use dmps_floor::FcmMode;

fn run_case(drift_ppm: f64, offset_ms: i64, admission: bool, seed: u64) -> (u128, u128) {
    let (mut session, _teacher, _students) = classroom_session(
        seed,
        FcmMode::FreeAccess,
        4,
        drift_ppm,
        offset_ms,
        admission,
    );
    let doc = sequential_document(4, Duration::from_secs(6));
    let driver = PresentationDriver::from_document(&doc).unwrap();
    let start = session.now() + Duration::from_secs(5);
    let report = driver.run(&mut session, start, Duration::from_secs(2));
    (
        report.overall.max.as_micros(),
        report.overall.spread.as_micros(),
    )
}

fn main() {
    println!("== E4: cross-client playback skew (microseconds) ==");
    println!("rows: client clock offset sweep; columns: with / without the global-clock admission rule\n");
    println!(
        "{:>12} {:>12} {:>16} {:>16} {:>18} {:>18}",
        "drift_ppm",
        "offset_ms",
        "max_with_us",
        "spread_with_us",
        "max_without_us",
        "spread_without_us"
    );
    for &(drift, offset) in &[
        (0.0, 0i64),
        (50.0, 5),
        (100.0, 10),
        (200.0, 25),
        (400.0, 50),
        (500.0, 100),
    ] {
        let (max_with, spread_with) = run_case(drift, offset, true, 11);
        let (max_without, spread_without) = run_case(drift, offset, false, 11);
        println!(
            "{drift:>12} {offset:>12} {max_with:>16} {spread_with:>16} {max_without:>18} {spread_without:>18}"
        );
    }

    println!("\nrows: link latency sweep (clock offset fixed at 25 ms, drift 200 ppm)\n");
    println!(
        "{:>14} {:>16} {:>18}",
        "latency_ms", "max_with_us", "max_without_us"
    );
    for &latency_ms in &[5u64, 20, 50, 100, 200, 400] {
        let make = |admission: bool| {
            use dmps::{Session, SessionConfig};
            use dmps_floor::Role;
            use dmps_simnet::{Link, LocalClock};
            let mut config = SessionConfig::new(13, FcmMode::FreeAccess);
            if !admission {
                config = config.without_admission_control();
            }
            let mut session = Session::new(config);
            session.add_client("teacher", Role::Chair, Link::lan(), LocalClock::perfect());
            for i in 0..4 {
                let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
                session.add_client(
                    format!("student-{i}"),
                    Role::Participant,
                    Link::lan().with_latency(Duration::from_millis(latency_ms)),
                    LocalClock::new(sign * 200.0, sign as i64 * 25_000_000),
                );
            }
            session.pump();
            let doc = sequential_document(3, Duration::from_secs(6));
            let driver = PresentationDriver::from_document(&doc).unwrap();
            let start = session.now() + Duration::from_secs(5);
            driver.run(&mut session, start, Duration::from_secs(2))
        };
        let with = make(true);
        let without = make(false);
        println!(
            "{:>14} {:>16} {:>18}",
            latency_ms,
            with.overall.max.as_micros(),
            without.overall.max.as_micros()
        );
    }
    println!(
        "\nexpected shape: the `with` columns stay bounded by the clock-sync estimation error"
    );
    println!("(≈ half the round-trip asymmetry) while the `without` columns grow with both the");
    println!("clock offset and the broadcast lead time / link latency.");
}
