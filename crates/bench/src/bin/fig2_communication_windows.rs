//! Figure 2 reproduction: the DMPS communication windows for a student (2a)
//! and the teacher (2b).
//!
//! A 1-teacher / 3-student session runs under Free Access, each participant
//! configures their channels, content flows, then the session switches to
//! Equal Control so the floor state becomes visible in the windows.
//!
//! Run with: `cargo run -p dmps-bench --bin fig2_communication_windows`

use dmps::render::render_communication_window;
use dmps::{Session, SessionConfig};
use dmps_floor::{FcmMode, Role};
use dmps_simnet::{Link, LocalClock};

fn main() {
    let mut session = Session::new(SessionConfig::new(2002, FcmMode::FreeAccess));
    let teacher = session.add_client("teacher", Role::Chair, Link::lan(), LocalClock::perfect());
    let alice = session.add_client(
        "alice",
        Role::Participant,
        Link::dsl(),
        LocalClock::new(150.0, 0),
    );
    let bob = session.add_client(
        "bob",
        Role::Participant,
        Link::dsl(),
        LocalClock::new(-200.0, 0),
    );
    let carol = session.add_client(
        "carol",
        Role::Participant,
        Link::wan(),
        LocalClock::perfect(),
    );
    session.pump();

    // Free access phase: everyone contributes.
    session.send_chat(teacher, "Welcome — today we cover floor control.");
    session.send_annotation(teacher, "Figure on the board: four control modes.");
    session.send_whiteboard(
        teacher,
        "box(free access | equal control | group discussion | direct contact)",
    );
    session.send_chat(alice, "Is equal control like a talking stick?");
    session.send_chat(bob, "Free access seems chaotic for 200 students.");
    session.pump();

    // Switch to equal control: only the token holder may deliver.
    let group = session.server().group();
    session
        .server_mut()
        .arbiter_mut()
        .set_mode(group, FcmMode::EqualControl)
        .unwrap();
    session.request_floor(carol);
    session.pump();
    session.request_floor(bob);
    session.pump();
    session.send_chat(carol, "With the token I can answer: yes, exactly.");
    session.send_chat(alice, "(this should be rejected — I have no token)");
    session.pump();

    println!("== Figure 2(a): student communication window (alice) ==");
    println!("{}", render_communication_window(session.client(alice)));
    println!("== Figure 2(a'): student communication window (carol, token holder) ==");
    println!("{}", render_communication_window(session.client(carol)));
    println!("== Figure 2(b): teacher communication window ==");
    println!("{}", render_communication_window(session.client(teacher)));
    println!(
        "server-side floor stats: {:?}, rejected deliveries: {}",
        session.server().arbiter().stats(),
        session.server().rejected_deliveries()
    );
    let _ = bob;
}
