//! Experiment E6: sufficiency of the four floor control modes for the
//! distance-learning scenarios the paper motivates.
//!
//! Each scenario (lecture, Q&A, breakout discussion) is replayed under Free
//! Access and Equal Control end to end over the simulated session; Group
//! Discussion and Direct Contact are exercised through invitations on top of
//! the running session. Reported per cell: delivered content, rejected
//! deliveries, floor grants/queues, and fairness of speaking opportunities.
//!
//! Run with: `cargo run -p dmps-bench --bin exp_fcm_modes --release`

use std::time::Duration;

use dmps::metrics::jain_fairness;
use dmps::workload::WorkloadAction;
use dmps::{Workload, WorkloadKind};
use dmps_bench::classroom_session;
use dmps_floor::{FcmMode, FloorRequest};

fn run_scenario(kind: WorkloadKind, mode: FcmMode, clients: usize) -> (usize, u64, u64, u64, f64) {
    let (mut session, teacher, students) = classroom_session(17, mode, clients - 1, 100.0, 5, true);
    let indices: Vec<usize> = std::iter::once(teacher).chain(students).collect();
    let workload = Workload::generate(kind, clients, Duration::from_secs(60), 2.0, 23);
    let mut speaks_per_client = vec![0u64; clients];
    for event in &workload.events {
        let idx = indices[event.client];
        match &event.action {
            WorkloadAction::RequestFloor => session.request_floor(idx),
            WorkloadAction::ReleaseFloor => session.release_floor(idx),
            WorkloadAction::Chat(text) => {
                session.send_chat(idx, text.clone());
                speaks_per_client[event.client] += 1;
            }
            WorkloadAction::Whiteboard(s) => {
                session.send_whiteboard(idx, s.clone());
                speaks_per_client[event.client] += 1;
            }
            WorkloadAction::Annotation(t) => {
                session.send_annotation(idx, t.clone());
                speaks_per_client[event.client] += 1;
            }
        }
        session.pump();
    }
    let delivered = session.server().chat_log().len()
        + session.server().whiteboard_log().len()
        + session.server().annotation_log().len();
    let rejected = session.server().rejected_deliveries();
    let stats = session.server().arbiter().stats();
    let fairness = jain_fairness(&speaks_per_client);
    (delivered, rejected, stats.granted, stats.queued, fairness)
}

fn main() {
    let clients = 6;
    println!("== E6: scenario x mode matrix ({clients} participants, 60 s, 2 events/s) ==\n");
    println!(
        "{:<16} {:<16} {:>10} {:>10} {:>8} {:>8} {:>10}",
        "scenario", "mode", "delivered", "rejected", "grants", "queued", "fairness"
    );
    for kind in [
        WorkloadKind::Lecture,
        WorkloadKind::QuestionAnswer,
        WorkloadKind::Discussion,
    ] {
        for mode in [FcmMode::FreeAccess, FcmMode::EqualControl] {
            let (delivered, rejected, grants, queued, fairness) = run_scenario(kind, mode, clients);
            println!(
                "{:<16} {:<16} {:>10} {:>10} {:>8} {:>8} {:>10.3}",
                format!("{kind:?}"),
                mode.to_string(),
                delivered,
                rejected,
                grants,
                queued,
                fairness
            );
        }
    }

    // Group discussion & direct contact: exercised via invitations.
    println!("\n== breakout (group discussion) and direct contact on a live session ==");
    let (mut session, _teacher, students) =
        classroom_session(29, FcmMode::EqualControl, 5, 100.0, 5, true);
    session.pump();
    let group = session.server().group();
    let m: Vec<_> = students
        .iter()
        .map(|&s| session.member_of(s).unwrap())
        .collect();
    let arbiter = session.server_mut().arbiter_mut();
    let (sub, inv) = arbiter
        .invite(group, m[0], m[1], FcmMode::GroupDiscussion)
        .unwrap();
    arbiter.respond_invitation(inv, m[1], true).unwrap();
    let (_, inv2) = arbiter
        .invite(group, m[0], m[2], FcmMode::GroupDiscussion)
        .unwrap();
    arbiter.respond_invitation(inv2, m[2], true).unwrap();
    arbiter.join_group(sub, m[2]).unwrap();
    let breakout_outcome = arbiter.arbitrate(&FloorRequest::speak(sub, m[0])).unwrap();
    println!(
        "breakout speakers (private, concurrent): {:?}",
        breakout_outcome
    );
    let (pair, inv3) = arbiter
        .invite(group, m[3], m[4], FcmMode::DirectContact)
        .unwrap();
    arbiter.respond_invitation(inv3, m[4], true).unwrap();
    let dc = arbiter
        .arbitrate(&FloorRequest::direct_contact(pair, m[3], m[4]))
        .unwrap();
    println!("direct contact pair: {dc:?}");

    println!("\nexpected shape: Free Access delivers everything (fair but noisy); Equal Control");
    println!("rejects non-holders (serialized, fairness driven by the token queue); Group");
    println!("Discussion grants the invited sub-group concurrently; Direct Contact grants exactly");
    println!("the pair — together covering every interaction pattern of the distance-learning");
    println!("scenarios, which is the paper's sufficiency claim.");
}
