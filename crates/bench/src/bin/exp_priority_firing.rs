//! Experiment E5: priority firing (DOCPN) vs. the OCPN / XOCPN baselines.
//!
//! The same lecture presentation is compiled under all three models while the
//! network transfer of one object is made increasingly late. The report shows
//! the paper's qualitative claim: OCPN cannot model the transfer at all,
//! XOCPN stalls the whole presentation, DOCPN holds the schedule (zero stall)
//! and confines the damage to the late object.
//!
//! Run with: `cargo run -p dmps-bench --bin exp_priority_firing --release`

use std::time::Duration;

use dmps_bench::lecture_document;
use dmps_docpn::schedule::evaluate;
use dmps_docpn::{compile, CompileOptions, ModelKind, TimedExecution};

fn main() {
    let doc = lecture_document();
    let slides = doc
        .objects()
        .find(|(_, o)| o.name == "slides")
        .expect("lecture has slides")
        .0;
    let tolerance = Duration::from_millis(100);

    println!("== E5: late-delivery behaviour per model ==");
    println!(
        "late object: `slides`; nominal presentation length: {} ms\n",
        doc.timeline().unwrap().total_duration().as_millis()
    );
    println!(
        "{:>14} {:>8} {:>14} {:>14} {:>16} {:>18} {:>14}",
        "delay_ms",
        "model",
        "makespan_ms",
        "stall_ms",
        "deadline_misses",
        "priority_firings",
        "on_schedule"
    );

    for &delay_ms in &[0u64, 1_000, 2_000, 5_000, 10_000, 20_000, 40_000] {
        let delay = Duration::from_millis(delay_ms);
        for model in ModelKind::all() {
            let options = CompileOptions::new(model).with_transfer_delay(slides, delay);
            let compiled = compile(&doc, &options).unwrap();
            let exec = TimedExecution::run_to_completion(&compiled.net, &compiled.initial).unwrap();
            let report = evaluate(&compiled, &exec, tolerance).unwrap();
            println!(
                "{:>14} {:>8} {:>14} {:>14} {:>16} {:>18} {:>14}",
                delay_ms,
                model.to_string(),
                report.makespan.as_millis(),
                report.total_stall.as_millis(),
                report.deadline_misses,
                report.priority_firings,
                report.on_schedule()
            );
        }
    }

    println!("\nexpected shape: OCPN ignores transport (always nominal, but meaningless under");
    println!("distribution); XOCPN's makespan and stall grow linearly with the delay and the miss");
    println!("cascades to later objects; DOCPN stays on schedule with exactly one miss (the late");
    println!("object) and at least one priority firing once the delay exceeds the slack.");
}
