//! Experiment E7: resource-threshold arbitration (α / β) and priority-ordered
//! media suspension.
//!
//! Sweeps resource availability from 1.0 down to 0.0 and reports, for each
//! level, the arbitration outcome of a teacher request in a 12-member class:
//! granted normally (≥ α), granted with suspensions (β ≤ a < α, lowest
//! priority members first), or aborted (< β). Includes the ablation that
//! replaces priority-ordered victim selection with join-order selection.
//!
//! Run with: `cargo run -p dmps-bench --bin exp_resource_arbitration --release`

use dmps_floor::suspend::SuspensionOrder;
use dmps_floor::{FcmMode, FloorArbiter, FloorRequest, Member, Resource, Role};

fn class(order: SuspensionOrder) -> (FloorArbiter, dmps_floor::GroupId, dmps_floor::MemberId) {
    let mut arbiter = FloorArbiter::with_defaults();
    arbiter.set_suspension_order(order);
    let group = arbiter.create_group("class", FcmMode::FreeAccess);
    let teacher = arbiter
        .add_member(group, Member::new("teacher", Role::Chair))
        .unwrap();
    for i in 0..8 {
        arbiter
            .add_member(
                group,
                Member::new(format!("student-{i}"), Role::Participant),
            )
            .unwrap();
    }
    for i in 0..3 {
        arbiter
            .add_member(group, Member::new(format!("observer-{i}"), Role::Observer))
            .unwrap();
    }
    (arbiter, group, teacher)
}

fn main() {
    let thresholds = FloorArbiter::with_defaults().thresholds();
    println!(
        "== E7: arbitration regimes over the availability sweep (alpha={}, beta={}) ==\n",
        thresholds.alpha(),
        thresholds.beta()
    );
    println!(
        "{:>14} {:>12} {:>14} {:>22} {:>22}",
        "availability", "regime", "granted", "suspensions(priority)", "suspensions(join-order)"
    );
    for &availability in &[
        1.0f64, 0.8, 0.6, 0.5, 0.45, 0.35, 0.25, 0.15, 0.1, 0.05, 0.0,
    ] {
        let mut row: Vec<String> = Vec::new();
        let mut granted = false;
        let mut regime = String::new();
        for order in [
            SuspensionOrder::PriorityAscending,
            SuspensionOrder::JoinOrder,
        ] {
            let (mut arbiter, group, teacher) = class(order);
            arbiter.set_resource(Resource::new(availability, 1.0, 1.0));
            let outcome = arbiter
                .arbitrate(&FloorRequest::speak(group, teacher))
                .unwrap();
            granted = outcome.is_granted();
            regime = if availability >= thresholds.alpha() {
                "sufficient".into()
            } else if availability >= thresholds.beta() {
                "degraded".into()
            } else {
                "critical".into()
            };
            let victims: Vec<String> = outcome
                .suspensions()
                .iter()
                .map(|s| format!("{}(p{})", s.member, s.priority))
                .collect();
            row.push(if victims.is_empty() {
                "-".into()
            } else {
                victims.join(",")
            });
        }
        println!(
            "{:>14} {:>12} {:>14} {:>22} {:>22}",
            availability, regime, granted, row[0], row[1]
        );
    }

    println!("\nexpected shape: above alpha every request is granted with no suspensions; between");
    println!("beta and alpha requests are granted but observers (priority 1) are suspended before");
    println!("students (priority 2) under the paper's rule — the join-order ablation instead");
    println!("suspends whoever joined first, including higher-priority members; below beta the");
    println!("arbitration aborts entirely.");
}
