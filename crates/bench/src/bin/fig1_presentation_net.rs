//! Figure 1 reproduction: the overview DOCPN of a distributed multimedia
//! presentation.
//!
//! Builds the lecture presentation, compiles it under the DOCPN model,
//! analyses the resulting net (bounded, safe, live sync transitions), prints
//! the synchronous firing schedule, and emits the net as Graphviz DOT
//! (`target/fig1_presentation_net.dot`) so the figure can be drawn.
//!
//! Run with: `cargo run -p dmps-bench --bin fig1_presentation_net`

use std::fs;
use std::time::Duration;

use dmps_bench::lecture_document;
use dmps_docpn::schedule::evaluate;
use dmps_docpn::{compile, verify_presentation, CompileOptions, ModelKind, TimedExecution};
use dmps_petri::dot::{to_dot, DotOptions};

fn main() {
    let doc = lecture_document();
    println!("== Figure 1: DOCPN of `{}` ==", doc.name());
    println!(
        "objects: {:?}",
        doc.objects()
            .map(|(_, o)| o.name.clone())
            .collect::<Vec<_>>()
    );
    println!("synchronous sets: {:?}", doc.synchronous_sets().unwrap());

    let compiled = compile(&doc, &CompileOptions::new(ModelKind::Docpn)).unwrap();
    println!(
        "net: {} places, {} transitions, {} arcs",
        compiled.net.place_count(),
        compiled.net.transition_count(),
        compiled.net.net().arc_count()
    );

    let verification = verify_presentation(&compiled).unwrap();
    println!(
        "analysis: bounded={} safe={} reaches-completion={} sync-points-fire-once={} states-explored={}",
        verification.bounded,
        verification.safe,
        verification.reaches_completion,
        verification.all_sync_points_fire_once,
        verification.analysis.state_count
    );

    let execution = TimedExecution::run_to_completion(&compiled.net, &compiled.initial).unwrap();
    println!("\nfiring schedule (the synchronous set schedule of Section 4):");
    for firing in execution.firings() {
        let name = &compiled
            .net
            .net()
            .transition(firing.transition)
            .unwrap()
            .name;
        println!(
            "  t={:>6} ms  {:<28} priority={}",
            firing.at.as_millis(),
            name,
            firing.fired_by_priority
        );
    }
    let report = evaluate(&compiled, &execution, Duration::from_millis(50)).unwrap();
    println!("\n{}", report.to_table());

    let dot = to_dot(
        compiled.net.net(),
        &DotOptions {
            title: Some("Figure 1: DOCPN of a distributed multimedia presentation".into()),
            horizontal: true,
            marking: Some(compiled.initial.clone()),
        },
    );
    let path = "target/fig1_presentation_net.dot";
    if fs::write(path, &dot).is_ok() {
        println!("DOT graph written to {path} ({} bytes)", dot.len());
    } else {
        println!("could not write {path}; DOT output follows:\n{dot}");
    }
}
