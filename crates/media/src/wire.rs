//! `dmps-wire` codec implementations for the media types.
//!
//! These back the snapshot / trace machinery (and replace the previous
//! `serde_json` round-trips, which the offline build cannot provide).

use std::time::Duration;

use dmps_wire::{Reader, Result, Wire, WireError, Writer};

use crate::channel::ChannelKind;
use crate::document::PresentationDocument;
use crate::object::{MediaId, MediaKind, MediaObject};
use crate::qos::QosRequirement;
use crate::temporal::{TemporalRelation, TimeInterval};

fn bad(expected: &'static str, got: impl ToString) -> WireError {
    WireError::BadToken {
        expected,
        token: got.to_string(),
    }
}

impl Wire for MediaId {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(MediaId(usize::decode(r)?))
    }
}

impl Wire for MediaKind {
    fn encode(&self, w: &mut Writer) {
        let tag: u8 = match self {
            MediaKind::Video => 0,
            MediaKind::Audio => 1,
            MediaKind::Image => 2,
            MediaKind::Text => 3,
            MediaKind::Slide => 4,
            MediaKind::Whiteboard => 5,
            MediaKind::Annotation => 6,
        };
        tag.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        match u8::decode(r)? {
            0 => Ok(MediaKind::Video),
            1 => Ok(MediaKind::Audio),
            2 => Ok(MediaKind::Image),
            3 => Ok(MediaKind::Text),
            4 => Ok(MediaKind::Slide),
            5 => Ok(MediaKind::Whiteboard),
            6 => Ok(MediaKind::Annotation),
            other => Err(bad("MediaKind tag", other)),
        }
    }
}

impl Wire for ChannelKind {
    fn encode(&self, w: &mut Writer) {
        let tag: u8 = match self {
            ChannelKind::MessageWindow => 0,
            ChannelKind::Whiteboard => 1,
            ChannelKind::Annotation => 2,
            ChannelKind::AudioStream => 3,
            ChannelKind::VideoStream => 4,
            ChannelKind::SlideCast => 5,
            ChannelKind::Control => 6,
        };
        tag.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        match u8::decode(r)? {
            0 => Ok(ChannelKind::MessageWindow),
            1 => Ok(ChannelKind::Whiteboard),
            2 => Ok(ChannelKind::Annotation),
            3 => Ok(ChannelKind::AudioStream),
            4 => Ok(ChannelKind::VideoStream),
            5 => Ok(ChannelKind::SlideCast),
            6 => Ok(ChannelKind::Control),
            other => Err(bad("ChannelKind tag", other)),
        }
    }
}

impl Wire for TemporalRelation {
    fn encode(&self, w: &mut Writer) {
        let tag = TemporalRelation::all()
            .iter()
            .position(|r| r == self)
            .expect("all() covers every relation") as u8;
        tag.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let tag = u8::decode(r)?;
        TemporalRelation::all()
            .get(tag as usize)
            .copied()
            .ok_or_else(|| bad("TemporalRelation tag", tag))
    }
}

impl Wire for TimeInterval {
    fn encode(&self, w: &mut Writer) {
        self.start.encode(w);
        self.length.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let start = Duration::decode(r)?;
        let length = Duration::decode(r)?;
        Ok(TimeInterval { start, length })
    }
}

impl Wire for QosRequirement {
    fn encode(&self, w: &mut Writer) {
        self.bandwidth_kbps.encode(w);
        self.max_latency.encode(w);
        self.max_jitter.encode(w);
        self.loss_tolerance.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(QosRequirement {
            bandwidth_kbps: u32::decode(r)?,
            max_latency: Duration::decode(r)?,
            max_jitter: Duration::decode(r)?,
            loss_tolerance: f64::decode(r)?,
        })
    }
}

impl Wire for MediaObject {
    fn encode(&self, w: &mut Writer) {
        self.name.encode(w);
        self.kind.encode(w);
        self.duration.encode(w);
        self.size_bytes.encode(w);
        self.qos.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(MediaObject {
            name: String::decode(r)?,
            kind: MediaKind::decode(r)?,
            duration: Duration::decode(r)?,
            size_bytes: u64::decode(r)?,
            qos: QosRequirement::decode(r)?,
        })
    }
}

impl Wire for PresentationDocument {
    fn encode(&self, w: &mut Writer) {
        self.name().to_string().encode(w);
        let objects: Vec<MediaObject> = self.objects().map(|(_, o)| o.clone()).collect();
        objects.encode(w);
        (self.relations().len() as u64).encode(w);
        for rel in self.relations() {
            rel.a.encode(w);
            rel.relation.encode(w);
            rel.b.encode(w);
        }
        (self.interactions().len() as u64).encode(w);
        for ip in self.interactions() {
            ip.label.encode(w);
            ip.at.encode(w);
            ip.timeout.encode(w);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let name = String::decode(r)?;
        let mut doc = PresentationDocument::new(name);
        for object in Vec::<MediaObject>::decode(r)? {
            doc.add_object(object);
        }
        let relations = u64::decode(r)?;
        for _ in 0..relations {
            let a = MediaId::decode(r)?;
            let relation = TemporalRelation::decode(r)?;
            let b = MediaId::decode(r)?;
            doc.relate(a, relation, b)
                .map_err(|e| bad("valid document relation", e))?;
        }
        let interactions = u64::decode(r)?;
        for _ in 0..interactions {
            let label = String::decode(r)?;
            let at = Duration::decode(r)?;
            let timeout = Duration::decode(r)?;
            doc.add_interaction(label, at, timeout);
        }
        Ok(doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmps_wire::{from_str, to_string};

    #[test]
    fn media_object_roundtrip() {
        let o = MediaObject::new("clip", MediaKind::Video, Duration::from_secs(12));
        assert_eq!(from_str::<MediaObject>(&to_string(&o)).unwrap(), o);
    }

    #[test]
    fn every_kind_and_relation_roundtrips() {
        for k in MediaKind::all() {
            assert_eq!(from_str::<MediaKind>(&to_string(&k)).unwrap(), k);
        }
        for c in ChannelKind::all() {
            assert_eq!(from_str::<ChannelKind>(&to_string(&c)).unwrap(), c);
        }
        for rel in TemporalRelation::all() {
            assert_eq!(from_str::<TemporalRelation>(&to_string(&rel)).unwrap(), rel);
        }
    }

    #[test]
    fn document_roundtrip() {
        let mut doc = PresentationDocument::new("demo");
        let a = doc.add_object(MediaObject::new(
            "a",
            MediaKind::Video,
            Duration::from_secs(10),
        ));
        let b = doc.add_object(MediaObject::new(
            "b",
            MediaKind::Audio,
            Duration::from_secs(10),
        ));
        doc.relate(a, TemporalRelation::Equals, b).unwrap();
        doc.add_interaction("quiz", Duration::from_secs(5), Duration::from_secs(2));
        assert_eq!(
            from_str::<PresentationDocument>(&to_string(&doc)).unwrap(),
            doc
        );
    }
}
