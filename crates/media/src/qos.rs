//! Quality-of-service requirements attached to media objects and channels.
//!
//! The XOCPN lineage the paper builds on (Woo, Qazi & Ghafoor) sets up
//! channels "according to the required QoS of the data"; the floor control
//! arbiter consumes the aggregate of these requirements as its
//! `Resource = Network × CPU × Memory` availability check.

use std::fmt;
use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::error::{MediaError, Result};

/// Coarse service classes used when mapping objects onto simulated channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum QosClass {
    /// Best effort: discrete media, no timing guarantee needed.
    BestEffort,
    /// Interactive: low latency matters more than bandwidth (whiteboard,
    /// annotation, floor-control signalling).
    Interactive,
    /// Streaming: sustained bandwidth and bounded jitter (audio/video).
    Streaming,
}

impl fmt::Display for QosClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            QosClass::BestEffort => "best-effort",
            QosClass::Interactive => "interactive",
            QosClass::Streaming => "streaming",
        };
        f.write_str(s)
    }
}

/// A per-object quality-of-service requirement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QosRequirement {
    /// Sustained bandwidth needed, in kilobits per second.
    pub bandwidth_kbps: u32,
    /// Maximum tolerable one-way latency.
    pub max_latency: Duration,
    /// Maximum tolerable jitter (delay variation).
    pub max_jitter: Duration,
    /// Fraction of packets that may be lost without failing the object
    /// (0.0 ..= 1.0).
    pub loss_tolerance: f64,
}

impl QosRequirement {
    /// Creates a requirement from its four components.
    pub fn new(
        bandwidth_kbps: u32,
        max_latency: Duration,
        max_jitter: Duration,
        loss_tolerance: f64,
    ) -> Self {
        QosRequirement {
            bandwidth_kbps,
            max_latency,
            max_jitter,
            loss_tolerance,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`MediaError::InvalidQos`] when the loss tolerance is outside
    /// `[0, 1]`, the bandwidth is zero, or the jitter bound exceeds the
    /// latency bound.
    pub fn validate(&self) -> Result<()> {
        if !(0.0..=1.0).contains(&self.loss_tolerance) || self.loss_tolerance.is_nan() {
            return Err(MediaError::InvalidQos(format!(
                "loss tolerance {} outside [0, 1]",
                self.loss_tolerance
            )));
        }
        if self.bandwidth_kbps == 0 {
            return Err(MediaError::InvalidQos("zero bandwidth".into()));
        }
        if self.max_jitter > self.max_latency {
            return Err(MediaError::InvalidQos(
                "jitter bound exceeds latency bound".into(),
            ));
        }
        Ok(())
    }

    /// The service class implied by the requirement.
    pub fn class(&self) -> QosClass {
        if self.bandwidth_kbps >= 96 && self.max_jitter <= Duration::from_millis(100) {
            QosClass::Streaming
        } else if self.max_latency <= Duration::from_millis(500) {
            QosClass::Interactive
        } else {
            QosClass::BestEffort
        }
    }

    /// Component-wise "at least as demanding as" comparison. Used to check
    /// whether an admitted channel can carry a new object without
    /// renegotiation.
    pub fn dominates(&self, other: &QosRequirement) -> bool {
        self.bandwidth_kbps >= other.bandwidth_kbps
            && self.max_latency <= other.max_latency
            && self.max_jitter <= other.max_jitter
            && self.loss_tolerance <= other.loss_tolerance
    }

    /// The sum of two requirements (bandwidth adds; latency/jitter take the
    /// stricter bound; loss takes the stricter tolerance). Used to aggregate
    /// a member's media set when the arbiter checks resource availability.
    pub fn combine(&self, other: &QosRequirement) -> QosRequirement {
        QosRequirement {
            bandwidth_kbps: self.bandwidth_kbps.saturating_add(other.bandwidth_kbps),
            max_latency: self.max_latency.min(other.max_latency),
            max_jitter: self.max_jitter.min(other.max_jitter),
            loss_tolerance: self.loss_tolerance.min(other.loss_tolerance),
        }
    }
}

impl Default for QosRequirement {
    fn default() -> Self {
        QosRequirement::new(
            64,
            Duration::from_millis(500),
            Duration::from_millis(200),
            0.01,
        )
    }
}

impl fmt::Display for QosRequirement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} kbps, ≤{} ms latency, ≤{} ms jitter, ≤{:.1}% loss",
            self.bandwidth_kbps,
            self.max_latency.as_millis(),
            self.max_jitter.as_millis(),
            self.loss_tolerance * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(QosRequirement::default().validate().is_ok());
    }

    #[test]
    fn invalid_loss_tolerance_rejected() {
        let q = QosRequirement::new(
            100,
            Duration::from_millis(100),
            Duration::from_millis(10),
            1.5,
        );
        assert!(q.validate().is_err());
        let q = QosRequirement::new(
            100,
            Duration::from_millis(100),
            Duration::from_millis(10),
            f64::NAN,
        );
        assert!(q.validate().is_err());
    }

    #[test]
    fn zero_bandwidth_rejected() {
        let q = QosRequirement::new(
            0,
            Duration::from_millis(100),
            Duration::from_millis(10),
            0.0,
        );
        assert!(q.validate().is_err());
    }

    #[test]
    fn jitter_above_latency_rejected() {
        let q = QosRequirement::new(
            10,
            Duration::from_millis(10),
            Duration::from_millis(100),
            0.0,
        );
        assert!(q.validate().is_err());
    }

    #[test]
    fn classes_follow_thresholds() {
        let streaming = QosRequirement::new(
            1500,
            Duration::from_millis(250),
            Duration::from_millis(60),
            0.01,
        );
        assert_eq!(streaming.class(), QosClass::Streaming);
        let interactive = QosRequirement::new(
            16,
            Duration::from_millis(300),
            Duration::from_millis(100),
            0.0,
        );
        assert_eq!(interactive.class(), QosClass::Interactive);
        let best_effort =
            QosRequirement::new(8, Duration::from_secs(5), Duration::from_secs(1), 0.0);
        assert_eq!(best_effort.class(), QosClass::BestEffort);
    }

    #[test]
    fn dominates_is_reflexive_and_directional() {
        let strong = QosRequirement::new(
            1000,
            Duration::from_millis(50),
            Duration::from_millis(5),
            0.0,
        );
        let weak = QosRequirement::new(
            100,
            Duration::from_millis(500),
            Duration::from_millis(50),
            0.1,
        );
        assert!(strong.dominates(&strong));
        assert!(strong.dominates(&weak));
        assert!(!weak.dominates(&strong));
    }

    #[test]
    fn combine_adds_bandwidth_and_tightens_bounds() {
        let a = QosRequirement::new(
            100,
            Duration::from_millis(200),
            Duration::from_millis(50),
            0.02,
        );
        let b = QosRequirement::new(
            200,
            Duration::from_millis(100),
            Duration::from_millis(80),
            0.01,
        );
        let c = a.combine(&b);
        assert_eq!(c.bandwidth_kbps, 300);
        assert_eq!(c.max_latency, Duration::from_millis(100));
        assert_eq!(c.max_jitter, Duration::from_millis(50));
        assert!((c.loss_tolerance - 0.01).abs() < f64::EPSILON);
    }

    #[test]
    fn display_formats_all_fields() {
        let q = QosRequirement::new(
            128,
            Duration::from_millis(150),
            Duration::from_millis(30),
            0.01,
        );
        let s = q.to_string();
        assert!(s.contains("128 kbps"));
        assert!(s.contains("150 ms"));
        assert!(s.contains("30 ms"));
        assert_eq!(QosClass::Streaming.to_string(), "streaming");
    }
}
