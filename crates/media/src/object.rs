//! Multimedia objects: the units the presentation schedules and transmits.

use std::fmt;
use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::qos::QosRequirement;

/// Identifier of a media object within a [`crate::PresentationDocument`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MediaId(pub usize);

impl MediaId {
    /// The dense index of the object inside its document.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for MediaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// The kind of a multimedia object.
///
/// The variants cover every object the paper's DMPS prototype presents:
/// continuous media (video, audio), discrete media (image, text, slide), and
/// the interactive channels of the communication window (whiteboard strokes
/// and teacher annotations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum MediaKind {
    /// A video clip (continuous, high bandwidth).
    Video,
    /// An audio clip or live narration (continuous).
    Audio,
    /// A still image.
    Image,
    /// A plain text block shown in the message window.
    Text,
    /// A presentation slide.
    Slide,
    /// A whiteboard stroke batch.
    Whiteboard,
    /// A teacher annotation overlayed on shared content (Figure 3a of the
    /// paper shows the annotation broadcast).
    Annotation,
}

impl MediaKind {
    /// Whether the medium is continuous (time-based playback) rather than
    /// discrete (shown instantaneously and then persists).
    pub fn is_continuous(self) -> bool {
        matches!(self, MediaKind::Video | MediaKind::Audio)
    }

    /// A reasonable default QoS requirement for the kind, used when a
    /// document author does not specify one explicitly.
    pub fn default_qos(self) -> QosRequirement {
        match self {
            MediaKind::Video => QosRequirement::new(
                1_500,
                Duration::from_millis(250),
                Duration::from_millis(60),
                0.01,
            ),
            MediaKind::Audio => QosRequirement::new(
                128,
                Duration::from_millis(150),
                Duration::from_millis(30),
                0.01,
            ),
            MediaKind::Image => QosRequirement::new(
                256,
                Duration::from_millis(2_000),
                Duration::from_millis(500),
                0.0,
            ),
            MediaKind::Text => QosRequirement::new(
                8,
                Duration::from_millis(1_000),
                Duration::from_millis(500),
                0.0,
            ),
            MediaKind::Slide => QosRequirement::new(
                512,
                Duration::from_millis(1_500),
                Duration::from_millis(500),
                0.0,
            ),
            MediaKind::Whiteboard => QosRequirement::new(
                32,
                Duration::from_millis(300),
                Duration::from_millis(100),
                0.0,
            ),
            MediaKind::Annotation => QosRequirement::new(
                16,
                Duration::from_millis(300),
                Duration::from_millis(100),
                0.0,
            ),
        }
    }

    /// All kinds, useful for exhaustive sweeps in benches and tests.
    pub fn all() -> [MediaKind; 7] {
        [
            MediaKind::Video,
            MediaKind::Audio,
            MediaKind::Image,
            MediaKind::Text,
            MediaKind::Slide,
            MediaKind::Whiteboard,
            MediaKind::Annotation,
        ]
    }
}

impl fmt::Display for MediaKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MediaKind::Video => "video",
            MediaKind::Audio => "audio",
            MediaKind::Image => "image",
            MediaKind::Text => "text",
            MediaKind::Slide => "slide",
            MediaKind::Whiteboard => "whiteboard",
            MediaKind::Annotation => "annotation",
        };
        f.write_str(s)
    }
}

/// A single multimedia object with a presentation duration and QoS needs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MediaObject {
    /// Human-readable name (unique within a document by convention, not
    /// enforced).
    pub name: String,
    /// The kind of medium.
    pub kind: MediaKind,
    /// How long the object is presented. Discrete media use their display
    /// dwell time.
    pub duration: Duration,
    /// Approximate payload size in bytes (drives simulated transfer time).
    pub size_bytes: u64,
    /// The object's QoS requirement.
    pub qos: QosRequirement,
}

impl MediaObject {
    /// Creates an object with the kind's default QoS and a size estimated
    /// from the kind's default bandwidth and the duration.
    pub fn new(name: impl Into<String>, kind: MediaKind, duration: Duration) -> Self {
        let qos = kind.default_qos();
        let size_bytes = (qos.bandwidth_kbps as u128 * duration.as_millis() / 8).max(1) as u64;
        MediaObject {
            name: name.into(),
            kind,
            duration,
            size_bytes,
            qos,
        }
    }

    /// Sets an explicit payload size.
    pub fn with_size(mut self, size_bytes: u64) -> Self {
        self.size_bytes = size_bytes;
        self
    }

    /// Sets an explicit QoS requirement.
    pub fn with_qos(mut self, qos: QosRequirement) -> Self {
        self.qos = qos;
        self
    }

    /// Whether the object is continuous media.
    pub fn is_continuous(&self) -> bool {
        self.kind.is_continuous()
    }
}

impl fmt::Display for MediaObject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} `{}` ({} ms, {} bytes)",
            self.kind,
            self.name,
            self.duration.as_millis(),
            self.size_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn continuous_kinds() {
        assert!(MediaKind::Video.is_continuous());
        assert!(MediaKind::Audio.is_continuous());
        assert!(!MediaKind::Slide.is_continuous());
        assert!(!MediaKind::Annotation.is_continuous());
    }

    #[test]
    fn all_kinds_has_no_duplicates() {
        let all = MediaKind::all();
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn default_size_scales_with_duration() {
        let short = MediaObject::new("s", MediaKind::Video, Duration::from_secs(1));
        let long = MediaObject::new("l", MediaKind::Video, Duration::from_secs(10));
        assert!(long.size_bytes > short.size_bytes);
        assert!(short.size_bytes > 0);
    }

    #[test]
    fn builder_style_overrides() {
        let obj = MediaObject::new("x", MediaKind::Text, Duration::from_secs(5))
            .with_size(42)
            .with_qos(QosRequirement::new(
                1,
                Duration::from_secs(1),
                Duration::from_secs(1),
                0.5,
            ));
        assert_eq!(obj.size_bytes, 42);
        assert_eq!(obj.qos.bandwidth_kbps, 1);
        assert!((obj.qos.loss_tolerance - 0.5).abs() < f64::EPSILON);
    }

    #[test]
    fn display_mentions_name_kind_and_duration() {
        let obj = MediaObject::new("intro", MediaKind::Audio, Duration::from_millis(1500));
        let s = obj.to_string();
        assert!(s.contains("audio"));
        assert!(s.contains("intro"));
        assert!(s.contains("1500"));
        assert_eq!(MediaId(3).to_string(), "m3");
    }

    #[test]
    fn default_qos_is_valid_for_every_kind() {
        for kind in MediaKind::all() {
            assert!(kind.default_qos().validate().is_ok(), "kind {kind}");
        }
    }
}
