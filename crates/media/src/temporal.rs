//! Temporal interval relations between media objects.
//!
//! The OCPN model the paper extends (Little & Ghafoor, 1990) specifies the
//! timing of pre-orchestrated multimedia with the thirteen binary interval
//! relations of Allen's interval algebra (seven base relations and six
//! inverses). This module provides those relations, concrete
//! [`TimeInterval`]s, and the checks used by the timeline solver.

use std::fmt;
use std::time::Duration;

use serde::{Deserialize, Serialize};

/// A closed-open time interval `[start, start + length)` on the presentation
/// timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TimeInterval {
    /// Start offset from the beginning of the presentation.
    pub start: Duration,
    /// Length of the interval.
    pub length: Duration,
}

impl TimeInterval {
    /// Creates an interval from a start offset and a length.
    pub fn new(start: Duration, length: Duration) -> Self {
        TimeInterval { start, length }
    }

    /// The exclusive end of the interval.
    pub fn end(&self) -> Duration {
        self.start + self.length
    }

    /// Whether the given instant falls inside the interval.
    pub fn contains(&self, t: Duration) -> bool {
        t >= self.start && t < self.end()
    }

    /// Whether two intervals share at least one instant.
    pub fn intersects(&self, other: &TimeInterval) -> bool {
        self.start < other.end() && other.start < self.end()
    }

    /// Identifies which of the thirteen relations holds from `self` to
    /// `other`.
    pub fn relation_to(&self, other: &TimeInterval) -> TemporalRelation {
        use std::cmp::Ordering::*;
        let (s1, e1, s2, e2) = (self.start, self.end(), other.start, other.end());
        match (s1.cmp(&s2), e1.cmp(&e2)) {
            (Equal, Equal) => TemporalRelation::Equals,
            (Equal, Less) => TemporalRelation::Starts,
            (Equal, Greater) => TemporalRelation::StartedBy,
            (Greater, Equal) => TemporalRelation::Finishes,
            (Less, Equal) => TemporalRelation::FinishedBy,
            (Less, Less) => {
                if e1 < s2 {
                    TemporalRelation::Before
                } else if e1 == s2 {
                    TemporalRelation::Meets
                } else {
                    TemporalRelation::Overlaps
                }
            }
            (Greater, Greater) => {
                if s1 > e2 {
                    TemporalRelation::After
                } else if s1 == e2 {
                    TemporalRelation::MetBy
                } else {
                    TemporalRelation::OverlappedBy
                }
            }
            (Less, Greater) => TemporalRelation::Contains,
            (Greater, Less) => TemporalRelation::During,
        }
    }
}

/// The thirteen interval relations of Allen's algebra, named from the
/// perspective of the first (left) object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TemporalRelation {
    /// `a` ends strictly before `b` starts.
    Before,
    /// `a` starts strictly after `b` ends (inverse of [`Before`](Self::Before)).
    After,
    /// `a` ends exactly where `b` starts.
    Meets,
    /// `a` starts exactly where `b` ends.
    MetBy,
    /// `a` starts first and they overlap, `a` ending inside `b`.
    Overlaps,
    /// Inverse of [`Overlaps`](Self::Overlaps).
    OverlappedBy,
    /// `a` lies strictly inside `b`.
    During,
    /// `b` lies strictly inside `a`.
    Contains,
    /// Both start together, `a` ends first.
    Starts,
    /// Both start together, `a` ends last.
    StartedBy,
    /// Both end together, `a` starts last.
    Finishes,
    /// Both end together, `a` starts first.
    FinishedBy,
    /// Identical intervals — the lip-sync relation used for video+audio.
    Equals,
}

impl TemporalRelation {
    /// The inverse relation (`a R b` iff `b R.inverse() a`).
    pub fn inverse(self) -> TemporalRelation {
        use TemporalRelation::*;
        match self {
            Before => After,
            After => Before,
            Meets => MetBy,
            MetBy => Meets,
            Overlaps => OverlappedBy,
            OverlappedBy => Overlaps,
            During => Contains,
            Contains => During,
            Starts => StartedBy,
            StartedBy => Starts,
            Finishes => FinishedBy,
            FinishedBy => Finishes,
            Equals => Equals,
        }
    }

    /// All thirteen relations.
    pub fn all() -> [TemporalRelation; 13] {
        use TemporalRelation::*;
        [
            Before,
            After,
            Meets,
            MetBy,
            Overlaps,
            OverlappedBy,
            During,
            Contains,
            Starts,
            StartedBy,
            Finishes,
            FinishedBy,
            Equals,
        ]
    }

    /// Whether the relation constrains the two objects to play concurrently
    /// for at least one instant.
    pub fn implies_overlap(self) -> bool {
        !matches!(
            self,
            TemporalRelation::Before
                | TemporalRelation::After
                | TemporalRelation::Meets
                | TemporalRelation::MetBy
        )
    }

    /// Checks that the relation holds between two concrete intervals.
    pub fn holds(self, a: &TimeInterval, b: &TimeInterval) -> bool {
        a.relation_to(b) == self
    }
}

impl fmt::Display for TemporalRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TemporalRelation::Before => "before",
            TemporalRelation::After => "after",
            TemporalRelation::Meets => "meets",
            TemporalRelation::MetBy => "met-by",
            TemporalRelation::Overlaps => "overlaps",
            TemporalRelation::OverlappedBy => "overlapped-by",
            TemporalRelation::During => "during",
            TemporalRelation::Contains => "contains",
            TemporalRelation::Starts => "starts",
            TemporalRelation::StartedBy => "started-by",
            TemporalRelation::Finishes => "finishes",
            TemporalRelation::FinishedBy => "finished-by",
            TemporalRelation::Equals => "equals",
        };
        f.write_str(s)
    }
}

/// Given the duration of the two objects and the relation `a R b`, computes
/// the start offset of `b` relative to the start of `a`, when the relation
/// pins it down exactly.
///
/// Relations that only constrain the offset to a range (`Before`, `After`,
/// `Overlaps`, `OverlappedBy`, `During`, `Contains`) are resolved with the
/// smallest non-negative gap / a centred placement, which matches how the
/// paper's pre-orchestrated examples lay objects out. Returns `None` when the
/// durations cannot satisfy the relation at all (e.g. `Equals` with unequal
/// durations).
pub fn resolve_offset(
    dur_a: Duration,
    relation: TemporalRelation,
    dur_b: Duration,
) -> Option<Duration> {
    use TemporalRelation::*;
    let zero = Duration::ZERO;
    match relation {
        Equals => (dur_a == dur_b).then_some(zero),
        Starts => (dur_a < dur_b).then_some(zero),
        StartedBy => (dur_a > dur_b).then_some(zero),
        Finishes => None, // caller should express as `b finished-by a`
        FinishedBy => (dur_a > dur_b).then(|| dur_a - dur_b),
        Meets => Some(dur_a),
        MetBy => None, // caller should express as `b meets a`
        Before => Some(dur_a + Duration::from_millis(1)),
        After => None, // caller should express as `b before a`
        Overlaps => {
            // Need 0 < offset < dur_a and offset + dur_b > dur_a.
            if dur_a == zero || dur_b == zero {
                return None;
            }
            let offset = dur_a - dur_a.min(dur_b) / 2;
            (offset > zero && offset < dur_a && offset + dur_b > dur_a).then_some(offset)
        }
        OverlappedBy => None,
        During => None, // caller should express as `b contains a`
        Contains => {
            // Need 0 < offset and offset + dur_b < dur_a.
            if dur_a <= dur_b {
                return None;
            }
            let offset = (dur_a - dur_b) / 2;
            (offset > zero && offset + dur_b < dur_a).then_some(offset)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(start_ms: u64, len_ms: u64) -> TimeInterval {
        TimeInterval::new(
            Duration::from_millis(start_ms),
            Duration::from_millis(len_ms),
        )
    }

    #[test]
    fn classify_all_thirteen_relations() {
        use TemporalRelation::*;
        assert_eq!(iv(0, 10).relation_to(&iv(20, 10)), Before);
        assert_eq!(iv(20, 10).relation_to(&iv(0, 10)), After);
        assert_eq!(iv(0, 10).relation_to(&iv(10, 10)), Meets);
        assert_eq!(iv(10, 10).relation_to(&iv(0, 10)), MetBy);
        assert_eq!(iv(0, 10).relation_to(&iv(5, 10)), Overlaps);
        assert_eq!(iv(5, 10).relation_to(&iv(0, 10)), OverlappedBy);
        assert_eq!(iv(5, 5).relation_to(&iv(0, 20)), During);
        assert_eq!(iv(0, 20).relation_to(&iv(5, 5)), Contains);
        assert_eq!(iv(0, 5).relation_to(&iv(0, 10)), Starts);
        assert_eq!(iv(0, 10).relation_to(&iv(0, 5)), StartedBy);
        assert_eq!(iv(5, 5).relation_to(&iv(0, 10)), Finishes);
        assert_eq!(iv(0, 10).relation_to(&iv(5, 5)), FinishedBy);
        assert_eq!(iv(3, 7).relation_to(&iv(3, 7)), Equals);
    }

    #[test]
    fn inverse_is_an_involution_and_consistent_with_classification() {
        for r in TemporalRelation::all() {
            assert_eq!(r.inverse().inverse(), r);
        }
        let a = iv(0, 10);
        let b = iv(5, 10);
        assert_eq!(a.relation_to(&b).inverse(), b.relation_to(&a));
    }

    #[test]
    fn interval_queries() {
        let a = iv(10, 5);
        assert_eq!(a.end(), Duration::from_millis(15));
        assert!(a.contains(Duration::from_millis(10)));
        assert!(a.contains(Duration::from_millis(14)));
        assert!(!a.contains(Duration::from_millis(15)));
        assert!(a.intersects(&iv(14, 10)));
        assert!(!a.intersects(&iv(15, 10)));
    }

    #[test]
    fn implies_overlap_matches_intersection() {
        // For every pair of intervals, relation.implies_overlap() must agree
        // with geometric intersection.
        let samples = [
            iv(0, 10),
            iv(0, 5),
            iv(5, 5),
            iv(3, 3),
            iv(10, 4),
            iv(12, 2),
        ];
        for a in &samples {
            for b in &samples {
                let rel = a.relation_to(b);
                assert_eq!(
                    rel.implies_overlap(),
                    a.intersects(b),
                    "relation {rel} between {a:?} and {b:?}"
                );
            }
        }
    }

    #[test]
    fn holds_checks_concrete_intervals() {
        assert!(TemporalRelation::Meets.holds(&iv(0, 10), &iv(10, 5)));
        assert!(!TemporalRelation::Meets.holds(&iv(0, 10), &iv(11, 5)));
    }

    #[test]
    fn resolve_offset_pins_down_exact_relations() {
        let d10 = Duration::from_millis(10);
        let d20 = Duration::from_millis(20);
        assert_eq!(
            resolve_offset(d10, TemporalRelation::Equals, d10),
            Some(Duration::ZERO)
        );
        assert_eq!(resolve_offset(d10, TemporalRelation::Equals, d20), None);
        assert_eq!(resolve_offset(d10, TemporalRelation::Meets, d20), Some(d10));
        assert_eq!(
            resolve_offset(d10, TemporalRelation::Starts, d20),
            Some(Duration::ZERO)
        );
        assert_eq!(
            resolve_offset(d20, TemporalRelation::StartedBy, d10),
            Some(Duration::ZERO)
        );
        assert_eq!(
            resolve_offset(d20, TemporalRelation::FinishedBy, d10),
            Some(Duration::from_millis(10))
        );
        assert_eq!(
            resolve_offset(d20, TemporalRelation::Contains, d10),
            Some(Duration::from_millis(5))
        );
        assert_eq!(resolve_offset(d10, TemporalRelation::Contains, d20), None);
        assert!(resolve_offset(d10, TemporalRelation::Before, d20).unwrap() > d10);
    }

    #[test]
    fn display_names_are_unique() {
        use std::collections::HashSet;
        let names: HashSet<String> = TemporalRelation::all()
            .iter()
            .map(|r| r.to_string())
            .collect();
        assert_eq!(names.len(), 13);
    }

    #[test]
    fn serde_roundtrip() {
        let r = TemporalRelation::Overlaps;
        let encoded = dmps_wire::to_string(&r);
        let back: TemporalRelation = dmps_wire::from_str(&encoded).unwrap();
        assert_eq!(r, back);
        let i = iv(3, 9);
        let encoded = dmps_wire::to_string(&i);
        let back: TimeInterval = dmps_wire::from_str(&encoded).unwrap();
        assert_eq!(i, back);
    }
}
