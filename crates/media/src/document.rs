//! Pre-orchestrated presentation documents and their solved timelines.
//!
//! A [`PresentationDocument`] collects media objects, the temporal relations
//! between them, and the user-interaction points (the "dynamical operations
//! of users" the paper adds on top of OCPN). [`PresentationDocument::timeline`]
//! solves the relation graph into concrete [`TimeInterval`]s — the input the
//! DOCPN compiler turns into a Petri net and the scheduler turns into a
//! synchronous firing schedule.

use std::collections::{HashMap, VecDeque};
use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::error::{MediaError, Result};
use crate::object::{MediaId, MediaObject};
use crate::temporal::{resolve_offset, TemporalRelation, TimeInterval};

/// A declared temporal relation `a R b` between two objects of a document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Relation {
    /// Left-hand object.
    pub a: MediaId,
    /// The relation from `a` to `b`.
    pub relation: TemporalRelation,
    /// Right-hand object.
    pub b: MediaId,
}

/// A point during the presentation where user interaction is solicited
/// (question break, poll, floor handover). The DOCPN compiler turns each
/// point into a user-interaction transition with a priority arc.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InteractionPoint {
    /// Human-readable label.
    pub label: String,
    /// Offset from presentation start.
    pub at: Duration,
    /// Maximum time the presentation waits for the interaction before the
    /// priority (timeout) firing proceeds without it.
    pub timeout: Duration,
}

/// A pre-orchestrated multimedia presentation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PresentationDocument {
    name: String,
    objects: Vec<MediaObject>,
    relations: Vec<Relation>,
    interactions: Vec<InteractionPoint>,
}

impl PresentationDocument {
    /// Creates an empty document.
    pub fn new(name: impl Into<String>) -> Self {
        PresentationDocument {
            name: name.into(),
            objects: Vec::new(),
            relations: Vec::new(),
            interactions: Vec::new(),
        }
    }

    /// The document name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a media object and returns its identifier.
    pub fn add_object(&mut self, object: MediaObject) -> MediaId {
        self.objects.push(object);
        MediaId(self.objects.len() - 1)
    }

    /// Returns an object by id.
    ///
    /// # Errors
    ///
    /// Returns [`MediaError::UnknownMedia`] for an id outside the document.
    pub fn object(&self, id: MediaId) -> Result<&MediaObject> {
        self.objects.get(id.0).ok_or(MediaError::UnknownMedia(id))
    }

    /// Number of objects in the document.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Iterates over `(id, object)` pairs.
    pub fn objects(&self) -> impl Iterator<Item = (MediaId, &MediaObject)> {
        self.objects
            .iter()
            .enumerate()
            .map(|(i, o)| (MediaId(i), o))
    }

    /// Declares a temporal relation `a R b`.
    ///
    /// # Errors
    ///
    /// Returns [`MediaError::UnknownMedia`] when either id is unknown and
    /// [`MediaError::SelfRelation`] when `a == b`.
    pub fn relate(&mut self, a: MediaId, relation: TemporalRelation, b: MediaId) -> Result<()> {
        if a == b {
            return Err(MediaError::SelfRelation(a));
        }
        self.object(a)?;
        self.object(b)?;
        self.relations.push(Relation { a, relation, b });
        Ok(())
    }

    /// The declared relations.
    pub fn relations(&self) -> &[Relation] {
        &self.relations
    }

    /// Adds a user-interaction point.
    pub fn add_interaction(&mut self, label: impl Into<String>, at: Duration, timeout: Duration) {
        self.interactions.push(InteractionPoint {
            label: label.into(),
            at,
            timeout,
        });
    }

    /// The declared interaction points.
    pub fn interactions(&self) -> &[InteractionPoint] {
        &self.interactions
    }

    /// Solves the temporal relation graph into a concrete [`Timeline`].
    ///
    /// Objects not constrained (directly or transitively) relative to the
    /// first object start at offset zero. The solver propagates offsets
    /// breadth-first over the relation graph and verifies every declared
    /// relation against the solved intervals.
    ///
    /// # Errors
    ///
    /// * [`MediaError::DurationMismatch`] when a relation cannot hold for the
    ///   objects' durations (e.g. `Equals` with different lengths),
    /// * [`MediaError::InconsistentTimeline`] when two relation chains give
    ///   an object contradictory start times or a solved interval violates a
    ///   declared relation,
    /// * [`MediaError::InteractionOutOfRange`] when an interaction point lies
    ///   beyond the end of the solved timeline.
    pub fn timeline(&self) -> Result<Timeline> {
        // Signed start offsets (nanoseconds) during propagation; each
        // connected component is shifted afterwards so its earliest start is
        // zero.
        let mut starts: HashMap<MediaId, i128> = HashMap::new();
        // Constraint edges: (from, to, signed offset of `to` relative to `from`).
        let mut edges: Vec<(MediaId, MediaId, i128)> = Vec::new();
        for rel in &self.relations {
            let dur_a = self.object(rel.a)?.duration;
            let dur_b = self.object(rel.b)?.duration;
            if let Some(offset) = resolve_offset(dur_a, rel.relation, dur_b) {
                edges.push((rel.a, rel.b, offset.as_nanos() as i128));
            } else if let Some(offset) = resolve_offset(dur_b, rel.relation.inverse(), dur_a) {
                edges.push((rel.b, rel.a, offset.as_nanos() as i128));
            } else {
                return Err(MediaError::DurationMismatch {
                    a: rel.a,
                    b: rel.b,
                    relation: rel.relation.to_string(),
                });
            }
        }

        // Propagate offsets over connected components.
        for seed in 0..self.objects.len() {
            let seed = MediaId(seed);
            if starts.contains_key(&seed) {
                continue;
            }
            starts.insert(seed, 0);
            let mut component = vec![seed];
            let mut queue = VecDeque::new();
            queue.push_back(seed);
            while let Some(cur) = queue.pop_front() {
                let cur_start = starts[&cur];
                for &(from, to, offset) in &edges {
                    let (next, next_start) = if from == cur {
                        (to, cur_start + offset)
                    } else if to == cur {
                        (from, cur_start - offset)
                    } else {
                        continue;
                    };
                    match starts.get(&next) {
                        Some(&existing) => {
                            if existing != next_start {
                                return Err(MediaError::InconsistentTimeline {
                                    between: (cur, next),
                                    reason: format!("start {}ns vs {}ns", existing, next_start),
                                });
                            }
                        }
                        None => {
                            starts.insert(next, next_start);
                            component.push(next);
                            queue.push_back(next);
                        }
                    }
                }
            }
            // Shift this component so its earliest start is zero.
            let min = component.iter().map(|id| starts[id]).min().unwrap_or(0);
            if min != 0 {
                for id in component {
                    *starts.get_mut(&id).expect("component member has a start") -= min;
                }
            }
        }

        let intervals: Vec<TimeInterval> = self
            .objects
            .iter()
            .enumerate()
            .map(|(i, o)| {
                let start_nanos = starts[&MediaId(i)].max(0) as u128;
                TimeInterval::new(
                    Duration::new(
                        (start_nanos / 1_000_000_000) as u64,
                        (start_nanos % 1_000_000_000) as u32,
                    ),
                    o.duration,
                )
            })
            .collect();

        // Verify every declared relation against the solved intervals.
        for rel in &self.relations {
            let ia = intervals[rel.a.0];
            let ib = intervals[rel.b.0];
            if !rel.relation.holds(&ia, &ib) {
                return Err(MediaError::InconsistentTimeline {
                    between: (rel.a, rel.b),
                    reason: format!(
                        "declared `{}` but solved intervals give `{}`",
                        rel.relation,
                        ia.relation_to(&ib)
                    ),
                });
            }
        }

        let timeline = Timeline { intervals };
        for ip in &self.interactions {
            if ip.at > timeline.total_duration() {
                return Err(MediaError::InteractionOutOfRange {
                    label: ip.label.clone(),
                });
            }
        }
        Ok(timeline)
    }

    /// Groups the objects into *synchronous sets*: maximal groups of objects
    /// whose intervals mutually intersect at some instant, i.e. objects that
    /// must be presented together. This is the "synchronous set of multimedia
    /// objects with respect to time duration" the paper's algorithm produces.
    ///
    /// # Errors
    ///
    /// Propagates timeline solving errors.
    pub fn synchronous_sets(&self) -> Result<Vec<Vec<MediaId>>> {
        let timeline = self.timeline()?;
        // Sweep event points; at every interval start collect everything
        // active, dedupe identical sets, keep maximal ones.
        let mut sets: Vec<Vec<MediaId>> = Vec::new();
        let mut points: Vec<Duration> = timeline.intervals.iter().map(|iv| iv.start).collect();
        points.sort();
        points.dedup();
        for point in points {
            let mut active: Vec<MediaId> = timeline
                .intervals
                .iter()
                .enumerate()
                .filter(|(_, iv)| iv.contains(point))
                .map(|(i, _)| MediaId(i))
                .collect();
            active.sort();
            if active.is_empty() || sets.contains(&active) {
                continue;
            }
            sets.push(active);
        }
        // Remove sets strictly contained in another set.
        let maximal: Vec<Vec<MediaId>> = sets
            .iter()
            .filter(|s| {
                !sets
                    .iter()
                    .any(|other| other != *s && s.iter().all(|x| other.contains(x)))
            })
            .cloned()
            .collect();
        Ok(maximal)
    }
}

/// A solved timeline: one concrete interval per object of the document.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Timeline {
    intervals: Vec<TimeInterval>,
}

impl Timeline {
    /// The interval assigned to an object.
    ///
    /// # Errors
    ///
    /// Returns [`MediaError::UnknownMedia`] for an id outside the timeline.
    pub fn interval(&self, id: MediaId) -> Result<TimeInterval> {
        self.intervals
            .get(id.0)
            .copied()
            .ok_or(MediaError::UnknownMedia(id))
    }

    /// All intervals in object order.
    pub fn intervals(&self) -> &[TimeInterval] {
        &self.intervals
    }

    /// The instant the last object finishes.
    pub fn total_duration(&self) -> Duration {
        self.intervals
            .iter()
            .map(TimeInterval::end)
            .max()
            .unwrap_or(Duration::ZERO)
    }

    /// The objects active at a given instant.
    pub fn active_at(&self, t: Duration) -> Vec<MediaId> {
        self.intervals
            .iter()
            .enumerate()
            .filter(|(_, iv)| iv.contains(t))
            .map(|(i, _)| MediaId(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::MediaKind;

    fn obj(name: &str, kind: MediaKind, secs: u64) -> MediaObject {
        MediaObject::new(name, kind, Duration::from_secs(secs))
    }

    #[test]
    fn empty_document_solves_to_empty_timeline() {
        let doc = PresentationDocument::new("empty");
        let tl = doc.timeline().unwrap();
        assert_eq!(tl.total_duration(), Duration::ZERO);
        assert!(tl.intervals().is_empty());
    }

    #[test]
    fn equals_relation_aligns_objects() {
        let mut doc = PresentationDocument::new("lipsync");
        let v = doc.add_object(obj("video", MediaKind::Video, 30));
        let a = doc.add_object(obj("audio", MediaKind::Audio, 30));
        doc.relate(v, TemporalRelation::Equals, a).unwrap();
        let tl = doc.timeline().unwrap();
        assert_eq!(tl.interval(v).unwrap(), tl.interval(a).unwrap());
        assert_eq!(tl.total_duration(), Duration::from_secs(30));
    }

    #[test]
    fn meets_relation_sequences_objects() {
        let mut doc = PresentationDocument::new("sequence");
        let s1 = doc.add_object(obj("slide-1", MediaKind::Slide, 10));
        let s2 = doc.add_object(obj("slide-2", MediaKind::Slide, 10));
        doc.relate(s1, TemporalRelation::Meets, s2).unwrap();
        let tl = doc.timeline().unwrap();
        assert_eq!(tl.interval(s2).unwrap().start, Duration::from_secs(10));
        assert_eq!(tl.total_duration(), Duration::from_secs(20));
    }

    #[test]
    fn inverse_relations_are_resolved_by_flipping() {
        let mut doc = PresentationDocument::new("flip");
        let long = doc.add_object(obj("video", MediaKind::Video, 20));
        let short = doc.add_object(obj("caption", MediaKind::Text, 10));
        // `caption during video` cannot be resolved directly but the inverse
        // `video contains caption` can.
        doc.relate(short, TemporalRelation::During, long).unwrap();
        let tl = doc.timeline().unwrap();
        let iv_long = tl.interval(long).unwrap();
        let iv_short = tl.interval(short).unwrap();
        assert!(iv_short.start > iv_long.start);
        assert!(iv_short.end() < iv_long.end());
    }

    #[test]
    fn equals_with_unequal_durations_is_rejected() {
        let mut doc = PresentationDocument::new("bad");
        let v = doc.add_object(obj("video", MediaKind::Video, 30));
        let a = doc.add_object(obj("audio", MediaKind::Audio, 10));
        doc.relate(v, TemporalRelation::Equals, a).unwrap();
        assert!(matches!(
            doc.timeline().unwrap_err(),
            MediaError::DurationMismatch { .. }
        ));
    }

    #[test]
    fn contradictory_chains_are_rejected() {
        let mut doc = PresentationDocument::new("contradiction");
        let a = doc.add_object(obj("a", MediaKind::Slide, 10));
        let b = doc.add_object(obj("b", MediaKind::Slide, 10));
        doc.relate(a, TemporalRelation::Meets, b).unwrap();
        doc.relate(a, TemporalRelation::Equals, b).unwrap();
        assert!(matches!(
            doc.timeline().unwrap_err(),
            MediaError::InconsistentTimeline { .. }
        ));
    }

    #[test]
    fn self_relation_rejected() {
        let mut doc = PresentationDocument::new("self");
        let a = doc.add_object(obj("a", MediaKind::Slide, 10));
        assert_eq!(
            doc.relate(a, TemporalRelation::Meets, a).unwrap_err(),
            MediaError::SelfRelation(a)
        );
    }

    #[test]
    fn unknown_media_rejected() {
        let mut doc = PresentationDocument::new("unknown");
        let a = doc.add_object(obj("a", MediaKind::Slide, 10));
        assert!(doc.relate(a, TemporalRelation::Meets, MediaId(99)).is_err());
        assert!(doc.object(MediaId(99)).is_err());
    }

    #[test]
    fn unrelated_components_anchor_at_zero() {
        let mut doc = PresentationDocument::new("parallel");
        let a = doc.add_object(obj("a", MediaKind::Slide, 10));
        let b = doc.add_object(obj("b", MediaKind::Audio, 20));
        let tl = doc.timeline().unwrap();
        assert_eq!(tl.interval(a).unwrap().start, Duration::ZERO);
        assert_eq!(tl.interval(b).unwrap().start, Duration::ZERO);
        assert_eq!(tl.total_duration(), Duration::from_secs(20));
    }

    #[test]
    fn interaction_beyond_timeline_is_rejected() {
        let mut doc = PresentationDocument::new("interact");
        doc.add_object(obj("a", MediaKind::Slide, 10));
        doc.add_interaction("q&a", Duration::from_secs(60), Duration::from_secs(5));
        assert!(matches!(
            doc.timeline().unwrap_err(),
            MediaError::InteractionOutOfRange { .. }
        ));
    }

    #[test]
    fn interaction_within_timeline_is_accepted() {
        let mut doc = PresentationDocument::new("interact-ok");
        doc.add_object(obj("a", MediaKind::Slide, 100));
        doc.add_interaction("q&a", Duration::from_secs(60), Duration::from_secs(5));
        assert!(doc.timeline().is_ok());
        assert_eq!(doc.interactions().len(), 1);
        assert_eq!(doc.interactions()[0].label, "q&a");
    }

    #[test]
    fn synchronous_sets_group_overlapping_objects() {
        let mut doc = PresentationDocument::new("lecture");
        let video = doc.add_object(obj("video", MediaKind::Video, 30));
        let audio = doc.add_object(obj("audio", MediaKind::Audio, 30));
        let slides = doc.add_object(obj("slides", MediaKind::Slide, 20));
        let quiz = doc.add_object(obj("quiz", MediaKind::Text, 10));
        doc.relate(video, TemporalRelation::Equals, audio).unwrap();
        doc.relate(video, TemporalRelation::StartedBy, slides)
            .unwrap();
        // quiz comes after the video.
        doc.relate(video, TemporalRelation::Before, quiz).unwrap();
        let sets = doc.synchronous_sets().unwrap();
        // First set: the three concurrent objects; second: the quiz alone.
        assert!(sets.contains(&vec![video, audio, slides]));
        assert!(sets.contains(&vec![quiz]));
        assert_eq!(sets.len(), 2);
    }

    #[test]
    fn active_at_reports_running_objects() {
        let mut doc = PresentationDocument::new("active");
        let a = doc.add_object(obj("a", MediaKind::Slide, 10));
        let b = doc.add_object(obj("b", MediaKind::Slide, 10));
        doc.relate(a, TemporalRelation::Meets, b).unwrap();
        let tl = doc.timeline().unwrap();
        assert_eq!(tl.active_at(Duration::from_secs(5)), vec![a]);
        assert_eq!(tl.active_at(Duration::from_secs(15)), vec![b]);
        assert!(tl.active_at(Duration::from_secs(25)).is_empty());
    }

    #[test]
    fn objects_iterator_and_count() {
        let mut doc = PresentationDocument::new("iter");
        doc.add_object(obj("a", MediaKind::Slide, 10));
        doc.add_object(obj("b", MediaKind::Audio, 10));
        assert_eq!(doc.object_count(), 2);
        let names: Vec<&str> = doc.objects().map(|(_, o)| o.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
        assert_eq!(doc.name(), "iter");
        assert_eq!(doc.relations().len(), 0);
    }
}
