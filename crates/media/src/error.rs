//! Error types for the media model.

use std::fmt;

use crate::object::MediaId;

/// Convenience result alias for the media crate.
pub type Result<T> = std::result::Result<T, MediaError>;

/// Errors produced while assembling or solving presentation documents.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MediaError {
    /// A media identifier does not belong to the document.
    UnknownMedia(MediaId),
    /// A temporal relation was declared between an object and itself.
    SelfRelation(MediaId),
    /// The temporal constraints contradict each other (no consistent
    /// timeline exists).
    InconsistentTimeline {
        /// The pair of objects whose constraints clashed.
        between: (MediaId, MediaId),
        /// Human-readable explanation of the clash.
        reason: String,
    },
    /// A relation requires specific durations which the two objects do not
    /// satisfy (e.g. `Equals` between objects of different length).
    DurationMismatch {
        /// First object.
        a: MediaId,
        /// Second object.
        b: MediaId,
        /// The relation that could not be satisfied.
        relation: String,
    },
    /// An interaction point refers to a time beyond the end of the timeline.
    InteractionOutOfRange {
        /// The offending interaction label.
        label: String,
    },
    /// A QoS requirement is internally inconsistent (e.g. zero bandwidth for
    /// a streaming medium).
    InvalidQos(String),
}

impl fmt::Display for MediaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MediaError::UnknownMedia(id) => write!(f, "unknown media object {id}"),
            MediaError::SelfRelation(id) => {
                write!(f, "temporal relation declared between {id} and itself")
            }
            MediaError::InconsistentTimeline { between, reason } => write!(
                f,
                "inconsistent timeline between {} and {}: {reason}",
                between.0, between.1
            ),
            MediaError::DurationMismatch { a, b, relation } => write!(
                f,
                "durations of {a} and {b} do not admit relation {relation}"
            ),
            MediaError::InteractionOutOfRange { label } => {
                write!(
                    f,
                    "interaction point `{label}` lies beyond the timeline end"
                )
            }
            MediaError::InvalidQos(msg) => write!(f, "invalid qos requirement: {msg}"),
        }
    }
}

impl std::error::Error for MediaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        let e = MediaError::UnknownMedia(MediaId(7));
        assert!(e.to_string().contains("m7"));
        let e = MediaError::InconsistentTimeline {
            between: (MediaId(0), MediaId(1)),
            reason: "cycle".into(),
        };
        assert!(e.to_string().contains("cycle"));
        let e = MediaError::InvalidQos("zero bandwidth".into());
        assert!(e.to_string().contains("zero bandwidth"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync + std::error::Error>() {}
        check::<MediaError>();
    }
}
