//! # dmps-media
//!
//! Multimedia object model for the DMPS reproduction of *"Using the Floor
//! Control Mechanism in Distributed Multimedia Presentation System"*
//! (Shih et al., ICDCS 2001 Workshops).
//!
//! The paper presents "different multimedia objects on a web presentation
//! system": video, audio, slides, text messages, whiteboard strokes and
//! teacher annotations, each with a playback duration and quality-of-service
//! needs, arranged by temporal relationships (in the tradition of OCPN /
//! Little & Ghafoor). This crate models those objects independently of any
//! Petri net or network so that the `dmps-docpn` compiler and the `dmps`
//! application layer can share one vocabulary.
//!
//! * [`MediaObject`] / [`MediaKind`] — the objects themselves,
//! * [`QosRequirement`] — per-object bandwidth / latency / jitter / loss needs,
//! * [`temporal`] — the thirteen interval relations and timeline computation,
//! * [`PresentationDocument`] — a pre-orchestrated presentation: objects,
//!   temporal constraints, and user-interaction points,
//! * [`channel`] — the logical channels of the DMPS communication window
//!   (message window, whiteboard, annotation, audio/video streams).
//!
//! # Example
//!
//! ```
//! use dmps_media::{MediaKind, MediaObject, PresentationDocument, temporal::TemporalRelation};
//! use std::time::Duration;
//!
//! let mut doc = PresentationDocument::new("lecture-1");
//! let video = doc.add_object(MediaObject::new("intro-video", MediaKind::Video, Duration::from_secs(30)));
//! let audio = doc.add_object(MediaObject::new("narration", MediaKind::Audio, Duration::from_secs(30)));
//! doc.relate(video, TemporalRelation::Equals, audio).unwrap();
//! let timeline = doc.timeline().unwrap();
//! assert_eq!(timeline.interval(video).unwrap().start, timeline.interval(audio).unwrap().start);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod document;
pub mod error;
pub mod object;
pub mod qos;
pub mod temporal;
mod wire;

pub use channel::{Channel, ChannelKind};
pub use document::{InteractionPoint, PresentationDocument, Timeline};
pub use error::{MediaError, Result};
pub use object::{MediaId, MediaKind, MediaObject};
pub use qos::{QosClass, QosRequirement};
pub use temporal::{TemporalRelation, TimeInterval};
