//! Logical channels of the DMPS communication window.
//!
//! Figure 2 of the paper shows the communication windows each participant
//! configures: a message window, a shared whiteboard, the teacher's
//! annotation stream, plus audio/video media channels. Each channel carries
//! objects of particular [`MediaKind`]s and implies a QoS class.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::object::MediaKind;
use crate::qos::{QosClass, QosRequirement};

/// The kinds of logical channels a DMPS session exposes to each participant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ChannelKind {
    /// Text chat shown in the message window.
    MessageWindow,
    /// The shared whiteboard.
    Whiteboard,
    /// The teacher's annotation overlay (Figure 3a).
    Annotation,
    /// Continuous audio.
    AudioStream,
    /// Continuous video.
    VideoStream,
    /// Slide / image distribution.
    SlideCast,
    /// Floor-control and clock signalling (always present, lowest bandwidth,
    /// highest priority).
    Control,
}

impl ChannelKind {
    /// All channel kinds.
    pub fn all() -> [ChannelKind; 7] {
        [
            ChannelKind::MessageWindow,
            ChannelKind::Whiteboard,
            ChannelKind::Annotation,
            ChannelKind::AudioStream,
            ChannelKind::VideoStream,
            ChannelKind::SlideCast,
            ChannelKind::Control,
        ]
    }

    /// The media kinds a channel of this kind carries.
    pub fn carries(self) -> &'static [MediaKind] {
        match self {
            ChannelKind::MessageWindow => &[MediaKind::Text],
            ChannelKind::Whiteboard => &[MediaKind::Whiteboard],
            ChannelKind::Annotation => &[MediaKind::Annotation],
            ChannelKind::AudioStream => &[MediaKind::Audio],
            ChannelKind::VideoStream => &[MediaKind::Video],
            ChannelKind::SlideCast => &[MediaKind::Slide, MediaKind::Image],
            ChannelKind::Control => &[],
        }
    }

    /// The channel kind that carries a given media kind.
    pub fn for_media(kind: MediaKind) -> ChannelKind {
        match kind {
            MediaKind::Text => ChannelKind::MessageWindow,
            MediaKind::Whiteboard => ChannelKind::Whiteboard,
            MediaKind::Annotation => ChannelKind::Annotation,
            MediaKind::Audio => ChannelKind::AudioStream,
            MediaKind::Video => ChannelKind::VideoStream,
            MediaKind::Slide | MediaKind::Image => ChannelKind::SlideCast,
        }
    }

    /// The QoS class a channel of this kind needs.
    pub fn qos_class(self) -> QosClass {
        match self {
            ChannelKind::AudioStream | ChannelKind::VideoStream => QosClass::Streaming,
            ChannelKind::Whiteboard | ChannelKind::Annotation | ChannelKind::Control => {
                QosClass::Interactive
            }
            ChannelKind::MessageWindow | ChannelKind::SlideCast => QosClass::BestEffort,
        }
    }
}

impl fmt::Display for ChannelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ChannelKind::MessageWindow => "message-window",
            ChannelKind::Whiteboard => "whiteboard",
            ChannelKind::Annotation => "annotation",
            ChannelKind::AudioStream => "audio-stream",
            ChannelKind::VideoStream => "video-stream",
            ChannelKind::SlideCast => "slide-cast",
            ChannelKind::Control => "control",
        };
        f.write_str(s)
    }
}

/// A configured channel belonging to one participant of a session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Channel {
    /// The kind of channel.
    pub kind: ChannelKind,
    /// Whether the participant enabled the channel in their communication
    /// window (Figure 2 shows students and teachers selecting "their
    /// communication medias of what they needed").
    pub enabled: bool,
    /// The negotiated QoS for the channel.
    pub qos: QosRequirement,
}

impl Channel {
    /// Creates an enabled channel with the default QoS for the most
    /// demanding media kind it carries.
    pub fn new(kind: ChannelKind) -> Self {
        let qos = kind
            .carries()
            .iter()
            .map(|k| k.default_qos())
            .reduce(|a, b| {
                if a.bandwidth_kbps >= b.bandwidth_kbps {
                    a
                } else {
                    b
                }
            })
            .unwrap_or_default();
        Channel {
            kind,
            enabled: true,
            qos,
        }
    }

    /// Disables the channel (the participant deselected it).
    pub fn disabled(mut self) -> Self {
        self.enabled = false;
        self
    }
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] ({})",
            self.kind,
            if self.enabled { "on" } else { "off" },
            self.qos
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_media_kind_has_a_channel() {
        for kind in MediaKind::all() {
            let ch = ChannelKind::for_media(kind);
            assert!(
                ch.carries().contains(&kind),
                "channel {ch} must carry {kind}"
            );
        }
    }

    #[test]
    fn control_channel_carries_no_media() {
        assert!(ChannelKind::Control.carries().is_empty());
        assert_eq!(ChannelKind::Control.qos_class(), QosClass::Interactive);
    }

    #[test]
    fn streaming_channels_are_streaming_class() {
        assert_eq!(ChannelKind::VideoStream.qos_class(), QosClass::Streaming);
        assert_eq!(ChannelKind::AudioStream.qos_class(), QosClass::Streaming);
        assert_eq!(ChannelKind::MessageWindow.qos_class(), QosClass::BestEffort);
    }

    #[test]
    fn channel_new_picks_most_demanding_default() {
        let slidecast = Channel::new(ChannelKind::SlideCast);
        // SlideCast carries slide (512 kbps) and image (256 kbps): picks slide.
        assert_eq!(slidecast.qos.bandwidth_kbps, 512);
        assert!(slidecast.enabled);
        let off = slidecast.clone().disabled();
        assert!(!off.enabled);
    }

    #[test]
    fn display_is_informative() {
        let ch = Channel::new(ChannelKind::Whiteboard);
        let s = ch.to_string();
        assert!(s.contains("whiteboard"));
        assert!(s.contains("on"));
        assert_eq!(ChannelKind::all().len(), 7);
    }
}
