//! Property-based tests for the media model: interval relations and the
//! timeline solver.

use std::time::Duration;

use dmps_media::temporal::{resolve_offset, TemporalRelation, TimeInterval};
use dmps_media::{MediaKind, MediaObject, PresentationDocument};
use proptest::prelude::*;

fn arb_interval() -> impl Strategy<Value = TimeInterval> {
    (0u64..10_000, 1u64..10_000).prop_map(|(start, len)| {
        TimeInterval::new(Duration::from_millis(start), Duration::from_millis(len))
    })
}

proptest! {
    /// Exactly one of the thirteen relations holds between any two intervals,
    /// and the inverse relation holds in the other direction.
    #[test]
    fn relation_classification_is_total_and_invertible(a in arb_interval(), b in arb_interval()) {
        let r = a.relation_to(&b);
        prop_assert!(r.holds(&a, &b));
        prop_assert!(r.inverse().holds(&b, &a));
        // No other relation may hold.
        for other in TemporalRelation::all() {
            if other != r {
                prop_assert!(!other.holds(&a, &b));
            }
        }
    }

    /// `implies_overlap` agrees with geometric intersection.
    #[test]
    fn overlap_agrees_with_intersection(a in arb_interval(), b in arb_interval()) {
        prop_assert_eq!(a.relation_to(&b).implies_overlap(), a.intersects(&b));
    }

    /// When `resolve_offset` produces an offset for durations (da, R, db),
    /// placing `b` at that offset really does satisfy the relation.
    #[test]
    fn resolved_offsets_satisfy_the_relation(
        da_ms in 1u64..5_000,
        db_ms in 1u64..5_000,
        rel_idx in 0usize..13,
    ) {
        let rel = TemporalRelation::all()[rel_idx];
        let da = Duration::from_millis(da_ms);
        let db = Duration::from_millis(db_ms);
        if let Some(offset) = resolve_offset(da, rel, db) {
            let a = TimeInterval::new(Duration::ZERO, da);
            let b = TimeInterval::new(offset, db);
            prop_assert_eq!(a.relation_to(&b), rel,
                "offset {:?} for {} between {}ms and {}ms", offset, rel, da_ms, db_ms);
        }
    }

    /// A chain of `Meets` relations always solves, the total duration equals
    /// the sum of the parts, and every declared relation holds on the solved
    /// timeline.
    #[test]
    fn meets_chains_always_solve(durations in proptest::collection::vec(1u64..300, 1..12)) {
        let mut doc = PresentationDocument::new("chain");
        let ids: Vec<_> = durations
            .iter()
            .enumerate()
            .map(|(i, &d)| doc.add_object(MediaObject::new(
                format!("seg{i}"), MediaKind::Slide, Duration::from_millis(d))))
            .collect();
        for pair in ids.windows(2) {
            doc.relate(pair[0], TemporalRelation::Meets, pair[1]).unwrap();
        }
        let tl = doc.timeline().unwrap();
        let total: u64 = durations.iter().sum();
        prop_assert_eq!(tl.total_duration(), Duration::from_millis(total));
        for (i, pair) in ids.windows(2).enumerate() {
            let a = tl.interval(pair[0]).unwrap();
            let b = tl.interval(pair[1]).unwrap();
            prop_assert_eq!(a.relation_to(&b), TemporalRelation::Meets, "segment {}", i);
        }
    }

    /// Synchronous sets cover every object exactly when objects are active at
    /// some instant, and objects inside one set pairwise intersect.
    #[test]
    fn synchronous_sets_members_pairwise_intersect(durations in proptest::collection::vec(1u64..200, 2..8)) {
        let mut doc = PresentationDocument::new("sync");
        let ids: Vec<_> = durations
            .iter()
            .enumerate()
            .map(|(i, &d)| doc.add_object(MediaObject::new(
                format!("o{i}"), MediaKind::Audio, Duration::from_millis(d))))
            .collect();
        // Alternate: even objects start together; odd objects follow the previous even one.
        for pair in ids.windows(2) {
            doc.relate(pair[0], TemporalRelation::Meets, pair[1]).unwrap();
        }
        let tl = doc.timeline().unwrap();
        let sets = doc.synchronous_sets().unwrap();
        for set in &sets {
            for x in set {
                for y in set {
                    if x != y {
                        let ix = tl.interval(*x).unwrap();
                        let iy = tl.interval(*y).unwrap();
                        prop_assert!(ix.intersects(&iy));
                    }
                }
            }
        }
        // Every object appears in at least one set (every object is active at
        // its own start instant).
        for id in &ids {
            prop_assert!(sets.iter().any(|s| s.contains(id)));
        }
    }

    /// Documents round-trip through serde JSON.
    #[test]
    fn document_serde_roundtrip(durations in proptest::collection::vec(1u64..100, 1..5)) {
        let mut doc = PresentationDocument::new("roundtrip");
        for (i, &d) in durations.iter().enumerate() {
            doc.add_object(MediaObject::new(format!("o{i}"), MediaKind::Video, Duration::from_millis(d)));
        }
        let encoded = dmps_wire::to_string(&doc);
        let back: PresentationDocument = dmps_wire::from_str(&encoded).unwrap();
        prop_assert_eq!(doc, back);
    }
}
