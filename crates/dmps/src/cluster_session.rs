//! Full DMPS presentation sessions over the sharded control plane.
//!
//! [`crate::Session`] binds one presentation session to a single in-process
//! server; [`ClusterSession`] is its scale-out sibling: the session's floor
//! requests *and* its content plane — chat, whiteboard, annotations, Group
//! Discussion / Direct Contact sub-sessions, synchronized media playback —
//! execute against a `dmps-cluster` deployment over the deterministic
//! network simulator ([`dmps_cluster::ClusterSim`]). The session's
//! server-side state (the logs a [`crate::DmpsServer`] keeps) lives on the
//! shard owning each group, rides the shard's durable event log, and
//! survives a mid-session shard crash by snapshot-plus-log-replay.
//!
//! ```
//! use dmps::{ClusterSession, ClusterSessionConfig};
//! use dmps_floor::{FcmMode, Role};
//! use dmps_simnet::SimTime;
//!
//! let config = ClusterSessionConfig::new(7, FcmMode::FreeAccess).with_shards(2);
//! let mut session = ClusterSession::new(config);
//! let teacher = session.add_participant("teacher", Role::Chair).unwrap();
//! let alice = session.add_participant("alice", Role::Participant).unwrap();
//! session.chat_at(SimTime::from_millis(10), teacher, "welcome").unwrap();
//! session.chat_at(SimTime::from_millis(20), alice, "hello").unwrap();
//! session.run_to_idle();
//! let log = session.chat_log(session.main_group()).unwrap();
//! assert_eq!(log.len(), 2);
//! session.check_invariants().unwrap();
//! ```

use std::time::Duration;

use dmps_cluster::{
    ClusterConfig, ClusterSim, GlobalGroupId, GlobalMemberId, GlobalRequest, GroupSession,
    SessionOp, SessionOutcome, ShardId,
};
use dmps_floor::{FcmMode, Member, Role};
use dmps_simnet::{Link, SimTime};

use crate::error::{DmpsError, Result};

/// Configuration of a sharded session.
#[derive(Debug, Clone, Copy)]
pub struct ClusterSessionConfig {
    /// Sizing and durability knobs of the underlying cluster.
    pub cluster: ClusterConfig,
    /// Seed of the deterministic network simulator.
    pub seed: u64,
    /// The floor control mode of the main session group.
    pub mode: FcmMode,
    /// The link profile between the gateway and every shard host.
    pub link: Link,
    /// When set, the gateway retransmits unanswered requests this long after
    /// a failover completes (exactly-once, thanks to the shard dedup
    /// journals). `None` leaves stranded requests unanswered.
    pub retransmit_after: Option<Duration>,
}

impl ClusterSessionConfig {
    /// A configuration with the given seed and main-group mode, four shards,
    /// a LAN link and 50 ms retransmission.
    pub fn new(seed: u64, mode: FcmMode) -> Self {
        ClusterSessionConfig {
            cluster: ClusterConfig::with_shards(4),
            seed,
            mode,
            link: Link::lan(),
            retransmit_after: Some(Duration::from_millis(50)),
        }
    }

    /// Overrides the shard count, keeping every other cluster knob
    /// (snapshot cadence, dedup window, vnodes) as configured.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.cluster.shards = shards;
        self
    }

    /// Overrides the full cluster configuration (snapshot cadence, dedup
    /// window, vnodes).
    pub fn with_cluster(mut self, cluster: ClusterConfig) -> Self {
        self.cluster = cluster;
        self
    }

    /// Overrides the gateway↔shard link profile.
    pub fn with_link(mut self, link: Link) -> Self {
        self.link = link;
        self
    }
}

/// A participant of a sharded session.
#[derive(Debug, Clone)]
struct Participant {
    name: String,
    member: GlobalMemberId,
}

/// A full DMPS presentation session running sharded over `dmps-cluster`.
///
/// Participants join a main group (placed by consistent hashing on some
/// shard); every action is scheduled at a global simulation time and travels
/// the simulated network to the shard owning the addressed group. Shard
/// crashes scheduled with [`ClusterSession::schedule_crash`] interleave with
/// the traffic, and — with retransmission enabled — every submitted action
/// is answered exactly once.
#[derive(Debug)]
pub struct ClusterSession {
    sim: ClusterSim,
    main: GlobalGroupId,
    participants: Vec<Participant>,
    subsessions: Vec<GlobalGroupId>,
}

impl ClusterSession {
    /// Deploys the cluster over the simulated network and creates the main
    /// session group.
    pub fn new(config: ClusterSessionConfig) -> Self {
        let mut sim = ClusterSim::new(config.cluster, config.seed, config.link);
        if let Some(delay) = config.retransmit_after {
            sim.enable_retransmission(delay);
        }
        let main = sim
            .cluster_mut()
            .create_group("session", config.mode)
            .expect("fresh cluster has no failed shards");
        ClusterSession {
            sim,
            main,
            participants: Vec::new(),
            subsessions: Vec::new(),
        }
    }

    // ----- roster -----------------------------------------------------------

    /// Registers a participant and joins them to the main session group,
    /// returning their index.
    ///
    /// # Errors
    ///
    /// Returns [`DmpsError::Cluster`] when the main group's shard is down.
    pub fn add_participant(&mut self, name: impl Into<String>, role: Role) -> Result<usize> {
        let name = name.into();
        let member = self
            .sim
            .cluster_mut()
            .register_member(Member::new(name.clone(), role));
        self.sim.cluster_mut().join_group(self.main, member)?;
        self.participants.push(Participant { name, member });
        Ok(self.participants.len() - 1)
    }

    /// Number of participants.
    pub fn participant_count(&self) -> usize {
        self.participants.len()
    }

    /// The cluster-wide member id of a participant.
    ///
    /// # Errors
    ///
    /// Returns [`DmpsError::UnknownClient`] for an out-of-range index.
    pub fn member(&self, index: usize) -> Result<GlobalMemberId> {
        self.participants
            .get(index)
            .map(|p| p.member)
            .ok_or(DmpsError::UnknownClient(index))
    }

    /// The display name of a participant.
    ///
    /// # Errors
    ///
    /// Returns [`DmpsError::UnknownClient`] for an out-of-range index.
    pub fn name(&self, index: usize) -> Result<&str> {
        self.participants
            .get(index)
            .map(|p| p.name.as_str())
            .ok_or(DmpsError::UnknownClient(index))
    }

    // ----- groups -----------------------------------------------------------

    /// The main session group.
    pub fn main_group(&self) -> GlobalGroupId {
        self.main
    }

    /// Sub-sessions spawned so far, in creation order.
    pub fn subsessions(&self) -> &[GlobalGroupId] {
        &self.subsessions
    }

    /// The shard currently owning a group.
    ///
    /// # Errors
    ///
    /// Returns [`DmpsError::Cluster`] for an unknown group.
    pub fn shard_of(&self, group: GlobalGroupId) -> Result<ShardId> {
        Ok(self.sim.cluster().placement(group)?.shard)
    }

    /// Spawns a Group Discussion / Direct Contact sub-session: `from`
    /// invites `to`, the invitation is accepted, and the sub-group lands on
    /// whatever shard the ring picks — typically *not* the parent's, which
    /// is how breakout load spreads across the cluster. Sub-session traffic
    /// then flows through [`ClusterSession::chat_in_at`] and friends.
    ///
    /// # Errors
    ///
    /// Returns index, membership and shard-down errors.
    pub fn spawn_subsession(
        &mut self,
        from: usize,
        to: usize,
        mode: FcmMode,
    ) -> Result<GlobalGroupId> {
        let inviter = self.member(from)?;
        let invitee = self.member(to)?;
        let (sub, invitation) = self
            .sim
            .cluster_mut()
            .invite(self.main, inviter, invitee, mode, None)?;
        self.sim
            .cluster_mut()
            .respond_invitation(invitation, invitee, true)?;
        self.subsessions.push(sub);
        Ok(sub)
    }

    // ----- scheduled actions ------------------------------------------------

    /// Schedules a chat line in the main group at global time `at`.
    ///
    /// # Errors
    ///
    /// Returns index and routing errors.
    pub fn chat_at(&mut self, at: SimTime, index: usize, text: impl Into<String>) -> Result<u64> {
        self.chat_in_at(at, self.main, index, text)
    }

    /// Schedules a chat line in an arbitrary group (e.g. a sub-session).
    ///
    /// # Errors
    ///
    /// Returns index and routing errors.
    pub fn chat_in_at(
        &mut self,
        at: SimTime,
        group: GlobalGroupId,
        index: usize,
        text: impl Into<String>,
    ) -> Result<u64> {
        let member = self.member(index)?;
        Ok(self
            .sim
            .submit_session_at(at, SessionOp::chat(group, member, text))?)
    }

    /// Schedules a whiteboard stroke in the main group.
    ///
    /// # Errors
    ///
    /// Returns index and routing errors.
    pub fn whiteboard_at(
        &mut self,
        at: SimTime,
        index: usize,
        stroke: impl Into<String>,
    ) -> Result<u64> {
        let member = self.member(index)?;
        Ok(self
            .sim
            .submit_session_at(at, SessionOp::whiteboard(self.main, member, stroke))?)
    }

    /// Schedules a teacher annotation in the main group.
    ///
    /// # Errors
    ///
    /// Returns index and routing errors.
    pub fn annotate_at(
        &mut self,
        at: SimTime,
        index: usize,
        text: impl Into<String>,
    ) -> Result<u64> {
        let member = self.member(index)?;
        Ok(self
            .sim
            .submit_session_at(at, SessionOp::annotation(self.main, member, text))?)
    }

    /// Schedules a synchronized playback: at global time `at` the request
    /// travels to the main group's shard, which records that every member
    /// starts `media` at global time `start` (the sharded analog of
    /// [`crate::Session::schedule_media_start`]). The schedule is durable —
    /// it survives a shard crash between `at` and `start`.
    ///
    /// # Errors
    ///
    /// Returns index and routing errors.
    pub fn schedule_playback_at(
        &mut self,
        at: SimTime,
        index: usize,
        media: impl Into<String>,
        start: SimTime,
    ) -> Result<u64> {
        let member = self.member(index)?;
        Ok(self.sim.submit_session_at(
            at,
            SessionOp::schedule_media(self.main, member, media, start),
        )?)
    }

    /// Schedules a floor request in the main group.
    ///
    /// # Errors
    ///
    /// Returns index and routing errors.
    pub fn request_floor_at(&mut self, at: SimTime, index: usize) -> Result<u64> {
        let member = self.member(index)?;
        Ok(self
            .sim
            .submit_at(at, GlobalRequest::speak(self.main, member))?)
    }

    /// Schedules a floor release in the main group.
    ///
    /// # Errors
    ///
    /// Returns index and routing errors.
    pub fn release_floor_at(&mut self, at: SimTime, index: usize) -> Result<u64> {
        let member = self.member(index)?;
        Ok(self
            .sim
            .submit_at(at, GlobalRequest::release_floor(self.main, member))?)
    }

    /// Schedules a floor pass in the main group.
    ///
    /// # Errors
    ///
    /// Returns index and routing errors.
    pub fn pass_floor_at(&mut self, at: SimTime, from: usize, to: usize) -> Result<u64> {
        let from = self.member(from)?;
        let to = self.member(to)?;
        Ok(self
            .sim
            .submit_at(at, GlobalRequest::pass_floor(self.main, from, to))?)
    }

    // ----- failure injection and execution ----------------------------------

    /// Schedules a crash of the shard's serving host at `at`, with standby
    /// recovery (snapshot restore + log replay) completing `downtime` later.
    pub fn schedule_crash(&mut self, at: SimTime, shard: ShardId, downtime: Duration) {
        self.sim.schedule_crash(at, shard, downtime);
    }

    /// Runs the session — deliveries and scheduled failures in global time
    /// order — until the network is idle and the failure plan is exhausted.
    pub fn run_to_idle(&mut self) {
        self.sim.run_to_idle();
    }

    // ----- observation ------------------------------------------------------

    /// The recorded session state of a group, read from its owning shard.
    ///
    /// # Errors
    ///
    /// Returns [`DmpsError::Cluster`] for an unknown group.
    pub fn session_view(&self, group: GlobalGroupId) -> Result<GroupSession> {
        Ok(self.sim.cluster().session_view(group)?)
    }

    /// The chat log of a group.
    ///
    /// # Errors
    ///
    /// Returns [`DmpsError::Cluster`] for an unknown group.
    pub fn chat_log(&self, group: GlobalGroupId) -> Result<Vec<(GlobalMemberId, String)>> {
        Ok(self.session_view(group)?.chat)
    }

    /// The synchronized playbacks of a group: one record per scheduled media
    /// object per current group member, each starting at the same global
    /// time — the sharded Figure-2 media-sync behaviour.
    ///
    /// # Errors
    ///
    /// Returns [`DmpsError::Cluster`] / [`DmpsError::Floor`] for unknown
    /// groups.
    pub fn playbacks(
        &self,
        group: GlobalGroupId,
    ) -> Result<Vec<(GlobalMemberId, String, SimTime)>> {
        let placement = self.sim.cluster().placement(group)?;
        let arbiter = self.sim.cluster().arbiter(placement.shard);
        let roster: Vec<GlobalMemberId> = arbiter
            .group(placement.local)
            .map_err(DmpsError::Floor)?
            .members()
            .filter_map(|local| self.sim.cluster().global_member(placement.shard, local))
            .collect();
        let view = self.sim.cluster().session_view(group)?;
        Ok(view
            .media
            .iter()
            .flat_map(|(media, start)| {
                roster
                    .iter()
                    .map(move |&member| (member, media.clone(), *start))
            })
            .collect())
    }

    /// Every floor decision the gateway received, in arrival order.
    pub fn decisions(&self) -> &[(u64, GlobalGroupId, dmps_floor::ArbitrationOutcome)] {
        self.sim.decisions()
    }

    /// Every session acknowledgement the gateway received, in arrival order.
    pub fn session_acks(&self) -> &[(u64, GlobalGroupId, SessionOutcome)] {
        self.sim.session_acks()
    }

    /// Number of failovers performed so far.
    pub fn failovers(&self) -> u64 {
        self.sim.failovers()
    }

    /// Number of requests the gateway retransmitted after failovers.
    pub fn retransmits(&self) -> u64 {
        self.sim.retransmits()
    }

    /// Checks the floor-state invariants on every active shard plus the
    /// cluster-level directory invariants.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> std::result::Result<(), String> {
        self.sim.cluster().check_invariants()
    }

    /// The underlying simulation harness (escape hatch for custom traffic).
    pub fn sim(&self) -> &ClusterSim {
        &self.sim
    }

    /// Mutable access to the underlying simulation harness.
    pub fn sim_mut(&mut self) -> &mut ClusterSim {
        &mut self.sim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn participants_join_and_chat_across_shards() {
        let mut session =
            ClusterSession::new(ClusterSessionConfig::new(3, FcmMode::FreeAccess).with_shards(3));
        let teacher = session.add_participant("teacher", Role::Chair).unwrap();
        let alice = session.add_participant("alice", Role::Participant).unwrap();
        assert_eq!(session.participant_count(), 2);
        assert_eq!(session.name(teacher).unwrap(), "teacher");
        assert!(session.member(99).is_err());
        session
            .chat_at(SimTime::from_millis(5), teacher, "hello class")
            .unwrap();
        session
            .whiteboard_at(SimTime::from_millis(10), alice, "circle(3,3,2)")
            .unwrap();
        session
            .annotate_at(SimTime::from_millis(15), teacher, "see fig. 2")
            .unwrap();
        session.run_to_idle();
        let view = session.session_view(session.main_group()).unwrap();
        assert_eq!(view.chat.len(), 1);
        assert_eq!(view.whiteboard.len(), 1);
        assert_eq!(view.annotations.len(), 1);
        session.check_invariants().unwrap();
    }

    #[test]
    fn equal_control_gates_sharded_chat() {
        let mut session = ClusterSession::new(ClusterSessionConfig::new(11, FcmMode::EqualControl));
        let teacher = session.add_participant("teacher", Role::Chair).unwrap();
        let alice = session.add_participant("alice", Role::Participant).unwrap();
        session
            .request_floor_at(SimTime::from_millis(10), teacher)
            .unwrap();
        // Alice chats while the teacher holds the floor: rejected. After the
        // release, her retry goes through.
        session
            .chat_at(SimTime::from_millis(100), alice, "premature")
            .unwrap();
        session
            .release_floor_at(SimTime::from_millis(200), teacher)
            .unwrap();
        session
            .request_floor_at(SimTime::from_millis(300), alice)
            .unwrap();
        session
            .chat_at(SimTime::from_millis(400), alice, "my turn now")
            .unwrap();
        session.run_to_idle();
        let rejected = session
            .session_acks()
            .iter()
            .filter(|(_, _, o)| !o.is_delivered())
            .count();
        assert_eq!(rejected, 1, "the premature chat was floor-denied");
        let log = session.chat_log(session.main_group()).unwrap();
        assert_eq!(log.len(), 1);
        assert!(log[0].1.contains("my turn"));
        session.check_invariants().unwrap();
    }

    #[test]
    fn subsessions_spawn_cross_shard_and_carry_private_chat() {
        let mut session =
            ClusterSession::new(ClusterSessionConfig::new(5, FcmMode::FreeAccess).with_shards(4));
        let teacher = session.add_participant("teacher", Role::Chair).unwrap();
        let alice = session.add_participant("alice", Role::Participant).unwrap();
        let bob = session.add_participant("bob", Role::Participant).unwrap();
        let sub = session
            .spawn_subsession(teacher, alice, FcmMode::GroupDiscussion)
            .unwrap();
        assert_eq!(session.subsessions(), &[sub]);
        session
            .chat_in_at(SimTime::from_millis(10), sub, teacher, "just us")
            .unwrap();
        // Bob is not in the sub-session: his line is rejected there.
        session
            .chat_in_at(SimTime::from_millis(20), sub, bob, "let me in")
            .unwrap();
        session.run_to_idle();
        let view = session.session_view(sub).unwrap();
        assert_eq!(view.chat.len(), 1);
        assert_eq!(view.chat[0].1, "just us");
        assert!(session
            .session_acks()
            .iter()
            .any(|(_, g, o)| *g == sub && !o.is_delivered()));
        session.check_invariants().unwrap();
    }
}
