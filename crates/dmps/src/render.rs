//! Textual renderers reproducing the paper's screenshots.
//!
//! * [`render_communication_window`] — the student/teacher communication
//!   windows of Figure 2 (message window, whiteboard, annotation overlay,
//!   channel selection, floor state);
//! * [`render_connection_lights`] — the connection-status lights of Figure 3
//!   (green = messages flowing, red = client unreachable).

use dmps_simnet::SimTime;

use crate::client::DmpsClient;
use crate::server::DmpsServer;
use crate::session::Session;

/// Renders one participant's communication window as text (Figure 2a/2b).
pub fn render_communication_window(client: &DmpsClient) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "+==== DMPS communication window — {} ({:?}) ====+\n",
        client.name(),
        client.role()
    ));
    out.push_str("| channels: ");
    let channels: Vec<String> = client.channels().iter().map(|c| c.to_string()).collect();
    out.push_str(&channels.join(", "));
    out.push('\n');
    out.push_str(&format!(
        "| floor: {}\n",
        if client.may_speak() {
            "may deliver".to_string()
        } else if let Some(holder) = client.queued_behind() {
            format!("waiting behind {holder}")
        } else {
            "listening".to_string()
        }
    ));
    out.push_str("|---- message window ----\n");
    if client.message_window().is_empty() {
        out.push_str("| (empty)\n");
    }
    for line in client.message_window() {
        out.push_str(&format!("| {line}\n"));
    }
    out.push_str("|---- whiteboard ----\n");
    for line in client.whiteboard() {
        out.push_str(&format!("| {line}\n"));
    }
    out.push_str("|---- teacher annotations ----\n");
    for line in client.annotations() {
        out.push_str(&format!("| {line}\n"));
    }
    out.push_str("+================================================+\n");
    out
}

/// Renders the server's connection-status panel (Figure 3b/3c): one light per
/// member, green when the member was heard from recently, red otherwise.
pub fn render_connection_lights(server: &DmpsServer, now: SimTime) -> String {
    let mut out = String::from("connection status:\n");
    for (member, green) in server.connection_lights(now) {
        out.push_str(&format!(
            "  {} [{}] {}\n",
            member,
            if green { "GREEN" } else { "RED" },
            if green {
                "connected, messages acknowledged"
            } else {
                "no recent traffic — move the mouse to this light to check the problem"
            }
        ));
    }
    out
}

/// Renders every participant's window plus the server panel — the composite
/// view the figure-reproduction binaries print.
pub fn render_session(session: &Session) -> String {
    let mut out = String::new();
    for idx in 0..session.client_count() {
        out.push_str(&render_communication_window(session.client(idx)));
        out.push('\n');
    }
    out.push_str(&render_connection_lights(session.server(), session.now()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SessionConfig;
    use dmps_floor::{FcmMode, Role};
    use dmps_simnet::{Link, LocalClock};

    #[test]
    fn window_render_contains_channels_and_content() {
        let mut session = Session::new(SessionConfig::new(1, FcmMode::FreeAccess));
        let teacher =
            session.add_client("teacher", Role::Chair, Link::lan(), LocalClock::perfect());
        let alice = session.add_client(
            "alice",
            Role::Participant,
            Link::lan(),
            LocalClock::perfect(),
        );
        session.pump();
        session.send_annotation(teacher, "look at slide 3");
        session.send_chat(alice, "question about slide 3");
        session.pump();
        let teacher_window = render_communication_window(session.client(teacher));
        assert!(teacher_window.contains("teacher"));
        assert!(teacher_window.contains("annotation"));
        assert!(teacher_window.contains("question about slide 3"));
        let alice_window = render_communication_window(session.client(alice));
        assert!(alice_window.contains("look at slide 3"));
        assert!(alice_window.contains("message window"));
    }

    #[test]
    fn lights_render_green_and_red() {
        let mut session = Session::new(SessionConfig::new(1, FcmMode::FreeAccess));
        let _teacher =
            session.add_client("teacher", Role::Chair, Link::lan(), LocalClock::perfect());
        let bob = session.add_client("bob", Role::Participant, Link::dsl(), LocalClock::perfect());
        session.pump();
        session.set_client_link_up(bob, false);
        let until = session.now() + std::time::Duration::from_secs(10);
        session.run_until(until);
        let panel = render_connection_lights(session.server(), session.now());
        assert!(panel.contains("GREEN"));
        assert!(panel.contains("RED"));
        let composite = render_session(&session);
        assert!(composite.contains("connection status"));
        assert!(composite.contains("DMPS communication window"));
    }

    #[test]
    fn empty_window_renders_placeholder() {
        let client = DmpsClient::new(dmps_simnet::HostId(5), "lonely", Role::Observer);
        let window = render_communication_window(&client);
        assert!(window.contains("(empty)"));
        assert!(window.contains("listening"));
    }
}
