//! The DMPS client: one participant's communication window, local clock
//! synchronization state, and floor-control view.

use dmps_floor::{ArbitrationOutcome, GroupId, MemberId, Role};
use dmps_media::ChannelKind;
use dmps_simnet::{AdmissionDecision, ClockSyncClient, HostId, SimTime};

use crate::message::DmpsMessage;

/// A media playback the client performed, with the timing the skew
/// measurement needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlaybackRecord {
    /// The media object's name.
    pub media: String,
    /// The global time the server scheduled for the start.
    pub scheduled_global: SimTime,
    /// The client's local clock reading when it started the object.
    pub started_local: SimTime,
    /// Whether the start was delayed by the global-clock admission rule.
    pub delayed_by_admission: bool,
}

/// The DMPS client.
#[derive(Debug)]
pub struct DmpsClient {
    host: HostId,
    name: String,
    role: Role,
    channels: Vec<ChannelKind>,
    member: Option<MemberId>,
    group: Option<GroupId>,
    sync: ClockSyncClient,
    use_admission_control: bool,
    message_window: Vec<String>,
    whiteboard: Vec<String>,
    annotations: Vec<String>,
    may_speak: bool,
    queued_behind: Option<MemberId>,
    rejections: u64,
    playbacks: Vec<PlaybackRecord>,
}

impl DmpsClient {
    /// Creates a client bound to a simulated host.
    pub fn new(host: HostId, name: impl Into<String>, role: Role) -> Self {
        let channels = match role {
            Role::Chair => vec![
                ChannelKind::MessageWindow,
                ChannelKind::Whiteboard,
                ChannelKind::Annotation,
                ChannelKind::AudioStream,
                ChannelKind::VideoStream,
                ChannelKind::SlideCast,
            ],
            Role::Participant => vec![
                ChannelKind::MessageWindow,
                ChannelKind::Whiteboard,
                ChannelKind::AudioStream,
            ],
            Role::Observer => vec![ChannelKind::MessageWindow],
        };
        DmpsClient {
            host,
            name: name.into(),
            role,
            channels,
            member: None,
            group: None,
            sync: ClockSyncClient::new(),
            use_admission_control: true,
            message_window: Vec::new(),
            whiteboard: Vec::new(),
            annotations: Vec::new(),
            may_speak: false,
            queued_behind: None,
            rejections: 0,
            playbacks: Vec::new(),
        }
    }

    /// Disables the global-clock admission rule (the E4 ablation: clients
    /// start media the moment the command arrives).
    pub fn disable_admission_control(&mut self) {
        self.use_admission_control = false;
    }

    /// The simulated host the client runs on.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// The client's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The client's role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// The channels enabled in the communication window.
    pub fn channels(&self) -> &[ChannelKind] {
        &self.channels
    }

    /// The member id assigned by the server, once joined.
    pub fn member(&self) -> Option<MemberId> {
        self.member
    }

    /// The session group, once joined.
    pub fn group(&self) -> Option<GroupId> {
        self.group
    }

    /// The clock-synchronization state.
    pub fn sync(&self) -> &ClockSyncClient {
        &self.sync
    }

    /// The lines shown in the message window.
    pub fn message_window(&self) -> &[String] {
        &self.message_window
    }

    /// The strokes on the whiteboard.
    pub fn whiteboard(&self) -> &[String] {
        &self.whiteboard
    }

    /// The teacher annotations shown as an overlay.
    pub fn annotations(&self) -> &[String] {
        &self.annotations
    }

    /// Whether the client currently holds the floor (or the mode lets
    /// everyone speak).
    pub fn may_speak(&self) -> bool {
        self.may_speak
    }

    /// The member the client is queued behind in Equal Control, if any.
    pub fn queued_behind(&self) -> Option<MemberId> {
        self.queued_behind
    }

    /// Number of deliveries floor control rejected.
    pub fn rejections(&self) -> u64 {
        self.rejections
    }

    /// The media playbacks the client performed.
    pub fn playbacks(&self) -> &[PlaybackRecord] {
        &self.playbacks
    }

    // ----- outgoing actions --------------------------------------------------

    /// The join message announcing the client to the server.
    pub fn join_message(&self) -> DmpsMessage {
        DmpsMessage::Join {
            name: self.name.clone(),
            role: self.role,
            channels: self.channels.clone(),
        }
    }

    /// A clock-synchronization request stamped with the given local reading.
    pub fn clock_sync_message(&mut self, local_now: SimTime) -> DmpsMessage {
        self.sync.request_sent(local_now);
        DmpsMessage::ClockSyncRequest {
            client_local: local_now,
        }
    }

    /// A heartbeat, once joined.
    pub fn heartbeat_message(&self) -> Option<DmpsMessage> {
        self.member.map(|member| DmpsMessage::Heartbeat { member })
    }

    // ----- incoming handling -------------------------------------------------

    /// Handles a message delivered to this client. `local_now` is the
    /// client's local clock reading at the moment of delivery. Returns the
    /// messages to send back to the server.
    pub fn handle(&mut self, local_now: SimTime, msg: DmpsMessage) -> Vec<DmpsMessage> {
        match msg {
            DmpsMessage::JoinAccepted { member, group } => {
                self.member = Some(member);
                self.group = Some(group);
                Vec::new()
            }
            DmpsMessage::ClockSyncResponse { server_global } => {
                self.sync.response_received(server_global, local_now);
                Vec::new()
            }
            DmpsMessage::FloorDecision { member, outcome } => {
                if Some(member) == self.member {
                    match outcome {
                        ArbitrationOutcome::Granted { ref speakers, .. } => {
                            // A grant names the members who may now deliver.
                            // After a release or pass the *requester* also
                            // receives a grant naming the new holder, so
                            // membership in `speakers` — not the mere arrival
                            // of a grant — decides whether this client holds
                            // the floor.
                            self.may_speak = speakers.contains(&member);
                            self.queued_behind = None;
                        }
                        ArbitrationOutcome::Queued { current_holder, .. } => {
                            self.queued_behind = Some(current_holder);
                        }
                        ArbitrationOutcome::Denied { .. } | ArbitrationOutcome::Aborted { .. } => {
                            self.may_speak = false;
                        }
                    }
                }
                Vec::new()
            }
            DmpsMessage::Chat { from, text } => {
                self.message_window.push(format!("{from}: {text}"));
                Vec::new()
            }
            DmpsMessage::Whiteboard { from, stroke } => {
                self.whiteboard.push(format!("{from}: {stroke}"));
                Vec::new()
            }
            DmpsMessage::Annotation { from, text } => {
                self.annotations.push(format!("{from}: {text}"));
                Vec::new()
            }
            DmpsMessage::DeliveryRejected { .. } => {
                self.rejections += 1;
                self.may_speak = false;
                Vec::new()
            }
            DmpsMessage::MediaStart {
                media,
                scheduled_global,
            } => {
                // The paper's admission rule: a client whose clock is ahead of
                // the global clock waits; one whose clock lags fires at once.
                let (started_local, delayed) = if self.use_admission_control {
                    match self.sync.admission(scheduled_global, local_now) {
                        AdmissionDecision::FireNow => (local_now, false),
                        AdmissionDecision::DelayUntilLocal(at) => (at, true),
                    }
                } else {
                    (local_now, false)
                };
                self.playbacks.push(PlaybackRecord {
                    media: media.clone(),
                    scheduled_global,
                    started_local,
                    delayed_by_admission: delayed,
                });
                let report = self.member.map(|member| DmpsMessage::MediaStarted {
                    member,
                    media,
                    estimated_global: self.sync.estimate_global(started_local),
                });
                report.into_iter().collect()
            }
            // Server-bound messages are ignored if they somehow reach a client.
            DmpsMessage::ClockSyncRequest { .. }
            | DmpsMessage::Join { .. }
            | DmpsMessage::Floor(_)
            | DmpsMessage::Heartbeat { .. }
            | DmpsMessage::MediaStarted { .. } => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmps_floor::FloorRequest;

    #[test]
    fn role_determines_default_channels() {
        let teacher = DmpsClient::new(HostId(1), "teacher", Role::Chair);
        assert!(teacher.channels().contains(&ChannelKind::Annotation));
        assert!(teacher.channels().contains(&ChannelKind::VideoStream));
        let student = DmpsClient::new(HostId(2), "alice", Role::Participant);
        assert!(!student.channels().contains(&ChannelKind::Annotation));
        let observer = DmpsClient::new(HostId(3), "guest", Role::Observer);
        assert_eq!(observer.channels(), &[ChannelKind::MessageWindow]);
        assert_eq!(student.name(), "alice");
        assert_eq!(student.role(), Role::Participant);
        assert_eq!(student.host(), HostId(2));
    }

    #[test]
    fn join_handshake_sets_identity() {
        let mut c = DmpsClient::new(HostId(1), "alice", Role::Participant);
        assert!(c.member().is_none());
        assert!(matches!(c.join_message(), DmpsMessage::Join { .. }));
        c.handle(
            SimTime::ZERO,
            DmpsMessage::JoinAccepted {
                member: MemberId(4),
                group: GroupId(0),
            },
        );
        assert_eq!(c.member(), Some(MemberId(4)));
        assert_eq!(c.group(), Some(GroupId(0)));
        assert!(c.heartbeat_message().is_some());
    }

    #[test]
    fn clock_sync_round_updates_offset() {
        let mut c = DmpsClient::new(HostId(1), "alice", Role::Participant);
        let req = c.clock_sync_message(SimTime::from_millis(1_000));
        assert!(matches!(req, DmpsMessage::ClockSyncRequest { .. }));
        c.handle(
            SimTime::from_millis(1_040),
            DmpsMessage::ClockSyncResponse {
                server_global: SimTime::from_millis(1_120),
            },
        );
        assert!(c.sync().is_synchronized());
        assert_eq!(c.sync().estimated_offset_nanos(), 100_000_000);
    }

    #[test]
    fn content_lands_in_the_right_window() {
        let mut c = DmpsClient::new(HostId(1), "alice", Role::Participant);
        c.handle(
            SimTime::ZERO,
            DmpsMessage::Chat {
                from: MemberId(0),
                text: "hi".into(),
            },
        );
        c.handle(
            SimTime::ZERO,
            DmpsMessage::Whiteboard {
                from: MemberId(0),
                stroke: "rect".into(),
            },
        );
        c.handle(
            SimTime::ZERO,
            DmpsMessage::Annotation {
                from: MemberId(0),
                text: "note".into(),
            },
        );
        assert_eq!(c.message_window().len(), 1);
        assert_eq!(c.whiteboard().len(), 1);
        assert_eq!(c.annotations().len(), 1);
        assert!(c.message_window()[0].contains("hi"));
    }

    #[test]
    fn floor_decisions_update_speaking_state() {
        let mut c = DmpsClient::new(HostId(1), "alice", Role::Participant);
        c.handle(
            SimTime::ZERO,
            DmpsMessage::JoinAccepted {
                member: MemberId(2),
                group: GroupId(0),
            },
        );
        c.handle(
            SimTime::ZERO,
            DmpsMessage::FloorDecision {
                member: MemberId(2),
                outcome: ArbitrationOutcome::Queued {
                    current_holder: MemberId(1),
                    position: 1,
                },
            },
        );
        assert_eq!(c.queued_behind(), Some(MemberId(1)));
        assert!(!c.may_speak());
        c.handle(
            SimTime::ZERO,
            DmpsMessage::FloorDecision {
                member: MemberId(2),
                outcome: ArbitrationOutcome::Granted {
                    speakers: vec![MemberId(2)],
                    suspensions: vec![],
                },
            },
        );
        assert!(c.may_speak());
        assert_eq!(c.queued_behind(), None);
        // Decisions for other members are ignored.
        c.handle(
            SimTime::ZERO,
            DmpsMessage::FloorDecision {
                member: MemberId(9),
                outcome: ArbitrationOutcome::Denied {
                    reason: dmps_floor::arbiter::DenialReason::InsufficientPriority,
                },
            },
        );
        assert!(c.may_speak());
        // A grant naming only another member (the decision a releaser
        // receives after the token moved on) clears the speaking state.
        c.handle(
            SimTime::ZERO,
            DmpsMessage::FloorDecision {
                member: MemberId(2),
                outcome: ArbitrationOutcome::Granted {
                    speakers: vec![MemberId(5)],
                    suspensions: vec![],
                },
            },
        );
        assert!(!c.may_speak(), "releaser no longer holds the floor");
        let _ = DmpsMessage::Floor(FloorRequest::speak(GroupId(0), MemberId(2)));
    }

    #[test]
    fn rejected_delivery_is_counted() {
        let mut c = DmpsClient::new(HostId(1), "alice", Role::Participant);
        c.handle(
            SimTime::ZERO,
            DmpsMessage::DeliveryRejected {
                member: MemberId(2),
                reason: "no floor".into(),
            },
        );
        assert_eq!(c.rejections(), 1);
        assert!(!c.may_speak());
    }

    #[test]
    fn media_start_applies_the_admission_rule() {
        let mut c = DmpsClient::new(HostId(1), "alice", Role::Participant);
        c.handle(
            SimTime::ZERO,
            DmpsMessage::JoinAccepted {
                member: MemberId(1),
                group: GroupId(0),
            },
        );
        // Synchronize with a clock that is 50 ms ahead of global (offset −50 ms).
        c.clock_sync_message(SimTime::from_millis(1_050));
        c.handle(
            SimTime::from_millis(1_050),
            DmpsMessage::ClockSyncResponse {
                server_global: SimTime::from_millis(1_000),
            },
        );
        // The command arrives "early" by the client's fast clock: it delays.
        let replies = c.handle(
            SimTime::from_millis(2_000),
            DmpsMessage::MediaStart {
                media: "intro".into(),
                scheduled_global: SimTime::from_millis(2_000),
            },
        );
        assert_eq!(c.playbacks().len(), 1);
        let p = &c.playbacks()[0];
        assert!(p.delayed_by_admission);
        assert_eq!(p.started_local, SimTime::from_millis(2_050));
        assert!(matches!(replies[0], DmpsMessage::MediaStarted { .. }));
        // With admission control disabled the client starts immediately.
        let mut c2 = DmpsClient::new(HostId(2), "bob", Role::Participant);
        c2.disable_admission_control();
        c2.handle(
            SimTime::from_millis(2_000),
            DmpsMessage::MediaStart {
                media: "intro".into(),
                scheduled_global: SimTime::from_millis(2_500),
            },
        );
        assert!(!c2.playbacks()[0].delayed_by_admission);
        assert_eq!(c2.playbacks()[0].started_local, SimTime::from_millis(2_000));
    }
}
