//! The presentation driver: broadcasting a DOCPN schedule to every client of
//! a session and measuring the cross-client skew (experiment E4).

use std::time::Duration;

use serde::{Deserialize, Serialize};

use dmps_docpn::CompiledPresentation;
use dmps_media::PresentationDocument;
use dmps_simnet::SimTime;

use crate::error::Result;
use crate::metrics::SkewStats;
use crate::session::Session;

/// One media object's measured playback across clients.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MediaSkewEntry {
    /// The media object's name.
    pub media: String,
    /// The scheduled global start.
    pub scheduled_global: SimTime,
    /// Per-client signed deviation (actual true-global start − scheduled), in
    /// nanoseconds, indexed by client.
    pub deviations_nanos: Vec<i64>,
}

/// The skew report of one presentation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlaybackSkewReport {
    /// Per-media entries in schedule order.
    pub media: Vec<MediaSkewEntry>,
    /// Aggregate statistics over every (media, client) sample.
    pub overall: SkewStats,
    /// Whether clients applied the global-clock admission rule.
    pub admission_control: bool,
}

impl PlaybackSkewReport {
    /// Renders the report as a text table (one row per media object).
    pub fn to_table(&self) -> String {
        let mut out = format!(
            "admission_control={} max_skew_us={} mean_skew_us={} spread_us={}\n",
            self.admission_control,
            self.overall.max.as_micros(),
            self.overall.mean.as_micros(),
            self.overall.spread.as_micros()
        );
        out.push_str("media\tscheduled_ms\tper_client_deviation_us\n");
        for m in &self.media {
            let devs: Vec<String> = m
                .deviations_nanos
                .iter()
                .map(|d| format!("{}", d / 1_000))
                .collect();
            out.push_str(&format!(
                "{}\t{}\t{}\n",
                m.media,
                m.scheduled_global.as_millis(),
                devs.join(",")
            ));
        }
        out
    }
}

/// Drives a compiled presentation over a session.
#[derive(Debug)]
pub struct PresentationDriver {
    /// `(media name, offset from presentation start)` in schedule order.
    schedule: Vec<(String, Duration)>,
}

impl PresentationDriver {
    /// Builds a driver from a presentation document: every media object is
    /// broadcast at its solved timeline start.
    ///
    /// # Errors
    ///
    /// Returns timeline-solving errors from the media crate.
    pub fn from_document(doc: &PresentationDocument) -> Result<Self> {
        let timeline = doc.timeline()?;
        let mut schedule: Vec<(String, Duration)> = doc
            .objects()
            .map(|(id, obj)| {
                let start = timeline
                    .interval(id)
                    .expect("object is on the timeline")
                    .start;
                (obj.name.clone(), start)
            })
            .collect();
        schedule.sort_by_key(|(_, start)| *start);
        Ok(PresentationDriver { schedule })
    }

    /// Builds a driver from an already-compiled presentation (uses the same
    /// nominal timeline).
    pub fn from_compiled(compiled: &CompiledPresentation) -> Self {
        let mut schedule: Vec<(String, Duration)> = compiled
            .media_playout_place
            .keys()
            .map(|&id| {
                let start = compiled
                    .ideal_start(id)
                    .expect("compiled media is on the timeline");
                let name = compiled
                    .net
                    .net()
                    .place(compiled.media_playout_place[&id])
                    .expect("playout place exists")
                    .name
                    .trim_start_matches("play:")
                    .to_string();
                (name, start)
            })
            .collect();
        schedule.sort_by_key(|(_, start)| *start);
        PresentationDriver { schedule }
    }

    /// The broadcast schedule.
    pub fn schedule(&self) -> &[(String, Duration)] {
        &self.schedule
    }

    /// Runs the presentation over the session: the server broadcasts every
    /// media start `lead_time` before its scheduled global time, the session
    /// is pumped to completion, and the per-client skew is measured using the
    /// true host clocks.
    pub fn run(
        &self,
        session: &mut Session,
        presentation_start: SimTime,
        lead_time: Duration,
    ) -> PlaybackSkewReport {
        for (media, offset) in &self.schedule {
            let scheduled_global = presentation_start + *offset;
            let broadcast_at = scheduled_global
                .saturating_sub(lead_time)
                .max(session.now());
            session.schedule_media_start(broadcast_at, media.clone(), scheduled_global);
        }
        session.pump();

        // Measure: for every media object and every client, the true global
        // time of the client's start is its local start converted through the
        // host's true clock.
        let client_count = session.client_count();
        let admission_control = session.admission_control();
        let mut media_entries = Vec::new();
        let mut all_deviations = Vec::new();
        for (media, offset) in &self.schedule {
            let scheduled_global = presentation_start + *offset;
            let mut deviations = Vec::new();
            for idx in 0..client_count {
                let client = session.client(idx);
                let Some(record) = client.playbacks().iter().find(|p| &p.media == media) else {
                    continue;
                };
                let host = client.host();
                let true_clock = *session.network().clock(host).expect("client host exists");
                let actual_global = true_clock.global_at(record.started_local);
                let deviation = actual_global.signed_offset_from(scheduled_global);
                deviations.push(deviation);
                all_deviations.push(deviation);
            }
            media_entries.push(MediaSkewEntry {
                media: media.clone(),
                scheduled_global,
                deviations_nanos: deviations,
            });
        }
        PlaybackSkewReport {
            media: media_entries,
            overall: SkewStats::from_deviations(&all_deviations),
            admission_control,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SessionConfig;
    use dmps_floor::{FcmMode, Role};
    use dmps_media::{MediaKind, MediaObject, TemporalRelation};
    use dmps_simnet::{Link, LocalClock};

    fn doc() -> PresentationDocument {
        let mut doc = PresentationDocument::new("lecture");
        let intro = doc.add_object(MediaObject::new(
            "intro",
            MediaKind::Video,
            Duration::from_secs(5),
        ));
        let body = doc.add_object(MediaObject::new(
            "body",
            MediaKind::Video,
            Duration::from_secs(10),
        ));
        doc.relate(intro, TemporalRelation::Meets, body).unwrap();
        doc
    }

    fn session_with_drifting_clients(admission: bool) -> Session {
        let mut config = SessionConfig::new(11, FcmMode::FreeAccess);
        if !admission {
            config = config.without_admission_control();
        }
        let mut session = Session::new(config);
        session.add_client("teacher", Role::Chair, Link::lan(), LocalClock::perfect());
        session.add_client(
            "fast-student",
            Role::Participant,
            Link::dsl(),
            LocalClock::new(400.0, 5_000_000),
        );
        session.add_client(
            "slow-student",
            Role::Participant,
            Link::wan(),
            LocalClock::new(-400.0, -5_000_000),
        );
        session.pump();
        session
    }

    #[test]
    fn driver_schedule_follows_the_timeline() {
        let driver = PresentationDriver::from_document(&doc()).unwrap();
        assert_eq!(driver.schedule().len(), 2);
        assert_eq!(driver.schedule()[0], ("intro".to_string(), Duration::ZERO));
        assert_eq!(
            driver.schedule()[1],
            ("body".to_string(), Duration::from_secs(5))
        );
    }

    #[test]
    fn admission_control_bounds_skew() {
        let driver = PresentationDriver::from_document(&doc()).unwrap();
        let mut session = session_with_drifting_clients(true);
        let start = session.now() + Duration::from_secs(5);
        let report = driver.run(&mut session, start, Duration::from_secs(2));
        assert_eq!(report.media.len(), 2);
        assert_eq!(report.overall.samples, 6, "2 media × 3 clients");
        // With admission control the spread stays within the clock-estimate
        // error (sub-50 ms for these links), far below the ±100 ms drift
        // offsets the clients were given.
        assert!(
            report.overall.max < Duration::from_millis(60),
            "max skew {:?}",
            report.overall.max
        );
        let table = report.to_table();
        assert!(table.contains("intro"));
        assert!(table.contains("admission_control=true"));
    }

    #[test]
    fn without_admission_control_skew_tracks_clock_offsets() {
        let driver = PresentationDriver::from_document(&doc()).unwrap();
        let mut session = session_with_drifting_clients(false);
        let start = session.now() + Duration::from_secs(5);
        let report = driver.run(&mut session, start, Duration::from_secs(2));
        // Clients start as soon as the broadcast arrives (2 s early minus
        // network latency), so the deviation is dominated by the lead time.
        assert!(
            report.overall.max > Duration::from_millis(500),
            "expected large skew without admission control, got {:?}",
            report.overall.max
        );
    }

    #[test]
    fn from_compiled_matches_document_schedule() {
        use dmps_docpn::{compile, CompileOptions, ModelKind};
        let d = doc();
        let compiled = compile(&d, &CompileOptions::new(ModelKind::Docpn)).unwrap();
        let driver = PresentationDriver::from_compiled(&compiled);
        let names: Vec<&str> = driver.schedule().iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["intro", "body"]);
    }
}
