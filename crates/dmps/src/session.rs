//! The session: server + clients wired together over the simulated network.

use std::collections::BTreeMap;
use std::time::Duration;

use dmps_floor::{FcmMode, FloorRequest, MemberId, Role};
use dmps_simnet::{Delivery, HostId, Link, LocalClock, Network, SimTime, Trace};

use crate::client::DmpsClient;
use crate::error::{DmpsError, Result};
use crate::message::DmpsMessage;
use crate::server::DmpsServer;

/// Configuration of a session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionConfig {
    /// Seed of the deterministic network simulator.
    pub seed: u64,
    /// The floor control mode of the main session group.
    pub mode: FcmMode,
    /// How often clients send heartbeats (drives the Figure 3 connection
    /// lights).
    pub heartbeat_interval: Duration,
    /// Whether clients apply the global-clock admission rule to media starts.
    pub admission_control: bool,
}

impl SessionConfig {
    /// Creates a configuration with the given seed and mode, 1-second
    /// heartbeats, and admission control enabled.
    pub fn new(seed: u64, mode: FcmMode) -> Self {
        SessionConfig {
            seed,
            mode,
            heartbeat_interval: Duration::from_secs(1),
            admission_control: true,
        }
    }

    /// Disables the global-clock admission rule (E4 ablation).
    pub fn without_admission_control(mut self) -> Self {
        self.admission_control = false;
        self
    }
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig::new(0, FcmMode::FreeAccess)
    }
}

/// A running DMPS session: the server, its clients, and the network between
/// them.
///
/// This is the paper's single-station deployment: one [`DmpsServer`] owns
/// the whole session. To run sessions *sharded* across a federation of
/// arbiters — with crash/failover and exactly-once retries — use
/// [`crate::ClusterSession`], which executes the same session traffic
/// against the `dmps-cluster` control plane.
#[derive(Debug)]
pub struct Session {
    net: Network<DmpsMessage>,
    server: DmpsServer,
    clients: Vec<DmpsClient>,
    host_client: BTreeMap<HostId, usize>,
    config: SessionConfig,
    trace: Trace,
    /// The next heartbeat instant of each client, injected lazily by
    /// [`Session::run_until`].
    next_heartbeat: Vec<SimTime>,
}

impl Session {
    /// Creates a session with a server host and no clients.
    pub fn new(config: SessionConfig) -> Self {
        let mut net = Network::new(config.seed);
        let server_host = net.add_host("dmps-server");
        let server = DmpsServer::new(server_host, config.mode);
        Session {
            net,
            server,
            clients: Vec::new(),
            host_client: BTreeMap::new(),
            config,
            trace: Trace::new(),
            next_heartbeat: Vec::new(),
        }
    }

    /// The current global simulation time.
    pub fn now(&self) -> SimTime {
        self.net.now()
    }

    /// Whether clients of this session apply the global-clock admission rule.
    pub fn admission_control(&self) -> bool {
        self.config.admission_control
    }

    /// The server.
    pub fn server(&self) -> &DmpsServer {
        &self.server
    }

    /// Mutable access to the server (mode switches, resource updates).
    pub fn server_mut(&mut self) -> &mut DmpsServer {
        &mut self.server
    }

    /// The underlying network (read-only: clocks, drop records, counters).
    pub fn network(&self) -> &Network<DmpsMessage> {
        &self.net
    }

    /// The underlying network (for link manipulation and fault injection).
    pub fn network_mut(&mut self) -> &mut Network<DmpsMessage> {
        &mut self.net
    }

    /// The event trace recorded so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Number of clients.
    pub fn client_count(&self) -> usize {
        self.clients.len()
    }

    /// The client with the given index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range (client indices are returned by
    /// [`Session::add_client`], so this is a programming error).
    pub fn client(&self, index: usize) -> &DmpsClient {
        &self.clients[index]
    }

    /// The member id of a client, once it has joined.
    ///
    /// # Errors
    ///
    /// Returns [`DmpsError::UnknownClient`] / [`DmpsError::NotJoined`].
    pub fn member_of(&self, index: usize) -> Result<MemberId> {
        let client = self
            .clients
            .get(index)
            .ok_or(DmpsError::UnknownClient(index))?;
        client.member().ok_or(DmpsError::NotJoined(index))
    }

    /// Adds a client connected to the server over `link`, with the given
    /// local clock, and immediately queues its join handshake, a first clock
    /// synchronization round, and its periodic heartbeats for the first
    /// minute of the session. Returns the client's index.
    pub fn add_client(
        &mut self,
        name: impl Into<String>,
        role: Role,
        link: Link,
        clock: LocalClock,
    ) -> usize {
        let name = name.into();
        let host = self.net.add_host_with_clock(&name, clock);
        self.net
            .connect(self.server.host(), host, link)
            .expect("fresh host connects to the server");
        let mut client = DmpsClient::new(host, name, role);
        if !self.config.admission_control {
            client.disable_admission_control();
        }
        // Join handshake.
        let join = client.join_message();
        let size = join.size_bytes();
        self.net
            .send(host, self.server.host(), join, size)
            .expect("connected host can send");
        // First clock sync round.
        let local = self.net.local_time(host).expect("host exists");
        let sync = client.clock_sync_message(local);
        let size = sync.size_bytes();
        self.net
            .send(host, self.server.host(), sync, size)
            .expect("connected host can send");
        let index = self.clients.len();
        self.host_client.insert(host, index);
        self.clients.push(client);
        self.next_heartbeat
            .push(self.net.now() + self.config.heartbeat_interval);
        index
    }

    /// Snapshot of the server's floor-control state (rebalancing hook; see
    /// [`DmpsServer::export_arbiter`]).
    pub fn snapshot_arbiter(&self) -> dmps_floor::ArbiterSnapshot {
        self.server.export_arbiter(0)
    }

    /// Restores the server's floor-control state from a snapshot — models a
    /// standby server process taking over the session's station mid-run.
    ///
    /// # Errors
    ///
    /// Returns [`DmpsError::Floor`] when the snapshot does not decode.
    pub fn restore_arbiter(&mut self, snapshot: &dmps_floor::ArbiterSnapshot) -> Result<()> {
        self.server
            .import_arbiter(snapshot)
            .map(|_applied_seq| ())
            .map_err(DmpsError::Floor)
    }

    // ----- client-initiated actions -----------------------------------------

    fn send_from_client(&mut self, index: usize, msg: DmpsMessage) {
        let host = self.clients[index].host();
        let size = msg.size_bytes();
        // Ignore send failures caused by a link that was taken down: the
        // drop is recorded by the network and surfaces as a red light.
        let _ = self.net.send(host, self.server.host(), msg, size);
    }

    /// Client `index` sends a chat line.
    pub fn send_chat(&mut self, index: usize, text: impl Into<String>) {
        if let Some(member) = self.clients[index].member() {
            self.send_from_client(
                index,
                DmpsMessage::Chat {
                    from: member,
                    text: text.into(),
                },
            );
        }
    }

    /// Client `index` draws on the whiteboard.
    pub fn send_whiteboard(&mut self, index: usize, stroke: impl Into<String>) {
        if let Some(member) = self.clients[index].member() {
            self.send_from_client(
                index,
                DmpsMessage::Whiteboard {
                    from: member,
                    stroke: stroke.into(),
                },
            );
        }
    }

    /// Client `index` sends a teacher annotation.
    pub fn send_annotation(&mut self, index: usize, text: impl Into<String>) {
        if let Some(member) = self.clients[index].member() {
            self.send_from_client(
                index,
                DmpsMessage::Annotation {
                    from: member,
                    text: text.into(),
                },
            );
        }
    }

    /// Client `index` requests the floor.
    pub fn request_floor(&mut self, index: usize) {
        if let (Some(member), Some(group)) =
            (self.clients[index].member(), self.clients[index].group())
        {
            self.send_from_client(
                index,
                DmpsMessage::Floor(FloorRequest::speak(group, member)),
            );
        }
    }

    /// Client `index` releases the floor (Equal Control).
    pub fn release_floor(&mut self, index: usize) {
        if let (Some(member), Some(group)) =
            (self.clients[index].member(), self.clients[index].group())
        {
            self.send_from_client(
                index,
                DmpsMessage::Floor(FloorRequest::release_floor(group, member)),
            );
        }
    }

    /// Client `index` runs another clock-synchronization round now.
    pub fn sync_clock(&mut self, index: usize) {
        let host = self.clients[index].host();
        let local = self.net.local_time(host).expect("host exists");
        let msg = self.clients[index].clock_sync_message(local);
        self.send_from_client(index, msg);
    }

    /// Schedules a media-start broadcast: at global time `broadcast_at` the
    /// server tells every client to start `media` at `scheduled_global`.
    pub fn schedule_media_start(
        &mut self,
        broadcast_at: SimTime,
        media: impl Into<String>,
        scheduled_global: SimTime,
    ) {
        self.net
            .schedule(
                self.server.host(),
                broadcast_at,
                DmpsMessage::MediaStart {
                    media: media.into(),
                    scheduled_global,
                },
            )
            .expect("future timer");
    }

    /// Takes the link between a client and the server down (Figure 3c) or
    /// back up.
    pub fn set_client_link_up(&mut self, index: usize, up: bool) {
        let host = self.clients[index].host();
        self.net
            .set_link_up(self.server.host(), host, up)
            .expect("client is connected");
    }

    // ----- event loop --------------------------------------------------------

    fn dispatch(&mut self, delivery: Delivery<DmpsMessage>) {
        let Delivery {
            at,
            from,
            to,
            payload,
            ..
        } = delivery;
        if to == self.server.host() {
            let out = self.server.handle(at, from, payload);
            for (dest, msg) in out {
                let size = msg.size_bytes();
                let _ = self.net.send(self.server.host(), dest, msg, size);
            }
        } else if let Some(&index) = self.host_client.get(&to) {
            // A self-delivery is a timer: the payload is an action the client
            // wants to send to the server (heartbeats use a placeholder
            // member id that is patched here).
            if from == to {
                let msg = match payload {
                    DmpsMessage::Heartbeat { .. } => match self.clients[index].member() {
                        Some(member) => DmpsMessage::Heartbeat { member },
                        None => return,
                    },
                    other => other,
                };
                let size = msg.size_bytes();
                let _ = self.net.send(to, self.server.host(), msg, size);
                return;
            }
            let local = self.net.local_time(to).expect("client host exists");
            let replies = self.clients[index].handle(local, payload);
            for msg in replies {
                let size = msg.size_bytes();
                let _ = self.net.send(to, self.server.host(), msg, size);
            }
        } else if from == to && to == self.server.host() {
            // Server timer handled in the first branch.
        }
        self.trace
            .record(at, Some(to), "deliver", "message dispatched");
    }

    /// Processes every queued event until the network is idle.
    pub fn pump(&mut self) {
        while let Some(delivery) = self.net.next_delivery() {
            self.dispatch(delivery);
        }
    }

    /// Processes events up to and including global time `until`, generating
    /// each client's periodic heartbeats along the way (so the connection
    /// lights of Figure 3 reflect real traffic over the links).
    pub fn run_until(&mut self, until: SimTime) {
        // Inject heartbeat timers for the window we are about to simulate.
        for idx in 0..self.clients.len() {
            let host = self.clients[idx].host();
            let mut at = self.next_heartbeat[idx];
            while at <= until {
                // A timer may fall slightly in the past if run_until windows
                // do not align with the interval; clamp to "now".
                let fire_at = at.max(self.net.now());
                let _ = self.net.schedule(
                    host,
                    fire_at,
                    DmpsMessage::Heartbeat {
                        member: MemberId(usize::MAX),
                    },
                );
                at += self.config.heartbeat_interval;
            }
            self.next_heartbeat[idx] = at;
        }
        while let Some(at) = self.net.peek_time() {
            if at > until {
                break;
            }
            let delivery = self.net.next_delivery().expect("peeked event exists");
            self.dispatch(delivery);
        }
        let _ = self.net.advance_to(until);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lecture_session(mode: FcmMode) -> (Session, usize, usize, usize) {
        let mut session = Session::new(SessionConfig::new(7, mode));
        let teacher =
            session.add_client("teacher", Role::Chair, Link::lan(), LocalClock::perfect());
        let alice = session.add_client(
            "alice",
            Role::Participant,
            Link::dsl(),
            LocalClock::new(200.0, 0),
        );
        let bob = session.add_client(
            "bob",
            Role::Participant,
            Link::wan(),
            LocalClock::new(-300.0, 2_000_000),
        );
        session.pump();
        (session, teacher, alice, bob)
    }

    #[test]
    fn clients_join_and_synchronize() {
        let (session, teacher, alice, bob) = lecture_session(FcmMode::FreeAccess);
        for idx in [teacher, alice, bob] {
            assert!(session.member_of(idx).is_ok(), "client {idx} joined");
            assert!(session.client(idx).sync().is_synchronized());
        }
        assert_eq!(session.client_count(), 3);
        assert_eq!(session.server().members().count(), 3);
        assert!(session.member_of(99).is_err());
    }

    #[test]
    fn chat_reaches_every_other_client() {
        let (mut session, teacher, alice, bob) = lecture_session(FcmMode::FreeAccess);
        session.send_chat(teacher, "welcome everyone");
        session.pump();
        assert!(session.client(alice).message_window()[0].contains("welcome"));
        assert!(session.client(bob).message_window()[0].contains("welcome"));
        assert!(session.client(teacher).message_window().is_empty());
        assert_eq!(session.server().chat_log().len(), 1);
    }

    #[test]
    fn equal_control_round_trip() {
        let (mut session, teacher, alice, _bob) = lecture_session(FcmMode::EqualControl);
        session.request_floor(teacher);
        session.pump();
        assert!(session.client(teacher).may_speak());
        session.request_floor(alice);
        session.pump();
        assert!(session.client(alice).queued_behind().is_some());
        // Alice's chat is rejected while the teacher holds the floor.
        session.send_chat(alice, "premature");
        session.pump();
        assert_eq!(session.client(alice).rejections(), 1);
        // After the teacher releases, alice is granted and may chat.
        session.release_floor(teacher);
        session.pump();
        assert!(session.client(alice).may_speak());
        session.send_chat(alice, "my turn now");
        session.pump();
        assert!(session
            .client(teacher)
            .message_window()
            .iter()
            .any(|l| l.contains("my turn")));
    }

    #[test]
    fn media_start_produces_playback_records_on_every_client() {
        let (mut session, teacher, alice, bob) = lecture_session(FcmMode::FreeAccess);
        let start = session.now() + Duration::from_secs(2);
        session.schedule_media_start(session.now() + Duration::from_secs(1), "intro-video", start);
        session.pump();
        for idx in [teacher, alice, bob] {
            assert_eq!(session.client(idx).playbacks().len(), 1, "client {idx}");
            assert_eq!(session.client(idx).playbacks()[0].media, "intro-video");
        }
    }

    #[test]
    fn link_failure_turns_the_light_red() {
        let (mut session, _teacher, alice, _bob) = lecture_session(FcmMode::FreeAccess);
        let alice_member = session.member_of(alice).unwrap();
        // Cut alice's link and advance 10 seconds: heartbeats stop arriving.
        session.set_client_link_up(alice, false);
        let until = session.now() + Duration::from_secs(10);
        session.run_until(until);
        let lights = session.server().connection_lights(session.now());
        let alice_light = lights.iter().find(|(m, _)| *m == alice_member).unwrap().1;
        assert!(
            !alice_light,
            "alice's light must be red after the link went down"
        );
        // At least one other member is still green.
        assert!(lights.iter().any(|&(m, green)| m != alice_member && green));
    }

    #[test]
    fn run_until_stops_at_the_requested_time() {
        let (mut session, ..) = lecture_session(FcmMode::FreeAccess);
        let target = session.now() + Duration::from_secs(3);
        session.run_until(target);
        assert_eq!(session.now(), target);
        assert!(!session.trace().is_empty());
    }
}
