//! The DMPS server: group administration, global clock master, floor control
//! arbitration, and content fan-out.

use std::collections::BTreeMap;
use std::time::Duration;

use dmps_floor::{ArbitrationOutcome, FcmMode, FloorArbiter, GroupId, Member, MemberId};
use dmps_simnet::{ClockSyncServer, HostId, SimTime};

use crate::message::DmpsMessage;

/// How long a client may stay silent before its connection light turns red
/// (Figure 3c).
pub const DEFAULT_LIVENESS_TIMEOUT: Duration = Duration::from_secs(5);

/// The DMPS server.
#[derive(Debug)]
pub struct DmpsServer {
    host: HostId,
    group: GroupId,
    arbiter: FloorArbiter,
    clock: ClockSyncServer,
    member_host: BTreeMap<MemberId, HostId>,
    host_member: BTreeMap<HostId, MemberId>,
    last_seen: BTreeMap<MemberId, SimTime>,
    liveness_timeout: Duration,
    chat_log: Vec<(MemberId, String)>,
    annotation_log: Vec<(MemberId, String)>,
    whiteboard_log: Vec<(MemberId, String)>,
    rejected_deliveries: u64,
}

impl DmpsServer {
    /// Creates a server bound to a simulated host, with a main session group
    /// in the given floor control mode.
    pub fn new(host: HostId, mode: FcmMode) -> Self {
        let mut arbiter = FloorArbiter::with_defaults();
        let group = arbiter.create_group("session", mode);
        DmpsServer {
            host,
            group,
            arbiter,
            clock: ClockSyncServer::new(),
            member_host: BTreeMap::new(),
            host_member: BTreeMap::new(),
            last_seen: BTreeMap::new(),
            liveness_timeout: DEFAULT_LIVENESS_TIMEOUT,
            chat_log: Vec::new(),
            annotation_log: Vec::new(),
            whiteboard_log: Vec::new(),
            rejected_deliveries: 0,
        }
    }

    /// The simulated host the server runs on.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// The main session group.
    pub fn group(&self) -> GroupId {
        self.group
    }

    /// Immutable access to the floor arbiter (for inspection in tests and
    /// experiments).
    pub fn arbiter(&self) -> &FloorArbiter {
        &self.arbiter
    }

    /// Mutable access to the floor arbiter (mode switches, resource updates).
    pub fn arbiter_mut(&mut self) -> &mut FloorArbiter {
        &mut self.arbiter
    }

    /// Exports the complete floor-control state for rebalancing or failover.
    /// `applied_seq` tags the snapshot with the caller's event-log position
    /// (pass 0 when no log is kept).
    pub fn export_arbiter(&self, applied_seq: u64) -> dmps_floor::ArbiterSnapshot {
        self.arbiter.snapshot(applied_seq)
    }

    /// Replaces the floor-control state from a snapshot — the hook a standby
    /// server (or a rebalancer moving the group administration to another
    /// station) uses to take over without losing grants, queues or
    /// suspensions. Returns the snapshot's event-log position, so a caller
    /// that keeps a log (like a `dmps-cluster` shard) knows where to resume
    /// replay.
    ///
    /// # Errors
    ///
    /// Returns [`dmps_floor::FloorError::CorruptSnapshot`] when the snapshot
    /// does not decode; the current state is left untouched in that case.
    pub fn import_arbiter(
        &mut self,
        snapshot: &dmps_floor::ArbiterSnapshot,
    ) -> dmps_floor::Result<u64> {
        self.arbiter = FloorArbiter::restore(snapshot)?;
        Ok(snapshot.applied_seq)
    }

    /// The member connected from a host, if any.
    pub fn member_at(&self, host: HostId) -> Option<MemberId> {
        self.host_member.get(&host).copied()
    }

    /// The host a member is connected from, if known.
    pub fn host_of(&self, member: MemberId) -> Option<HostId> {
        self.member_host.get(&member).copied()
    }

    /// All registered members and their hosts.
    pub fn members(&self) -> impl Iterator<Item = (MemberId, HostId)> + '_ {
        self.member_host.iter().map(|(&m, &h)| (m, h))
    }

    /// The chat log accumulated by the message window channel.
    pub fn chat_log(&self) -> &[(MemberId, String)] {
        &self.chat_log
    }

    /// The teacher-annotation log.
    pub fn annotation_log(&self) -> &[(MemberId, String)] {
        &self.annotation_log
    }

    /// The whiteboard log.
    pub fn whiteboard_log(&self) -> &[(MemberId, String)] {
        &self.whiteboard_log
    }

    /// Number of content deliveries rejected by floor control.
    pub fn rejected_deliveries(&self) -> u64 {
        self.rejected_deliveries
    }

    /// Sets the heartbeat timeout after which a client's light turns red.
    pub fn set_liveness_timeout(&mut self, timeout: Duration) {
        self.liveness_timeout = timeout;
    }

    /// The connection status of every member at global time `now`: `true`
    /// means the light is green (a heartbeat or any message was seen within
    /// the liveness timeout).
    pub fn connection_lights(&self, now: SimTime) -> Vec<(MemberId, bool)> {
        self.member_host
            .keys()
            .map(|&m| {
                let green = self
                    .last_seen
                    .get(&m)
                    .map(|&seen| now.duration_since(seen) <= self.liveness_timeout)
                    .unwrap_or(false);
                (m, green)
            })
            .collect()
    }

    /// Whether a member may currently deliver content under the group's
    /// floor control mode (without changing any arbitration state). The rule
    /// itself lives on [`FloorArbiter::may_deliver`] so the sharded session
    /// path (`dmps-cluster`) gates deliveries identically.
    fn may_deliver(&self, member: MemberId) -> bool {
        self.arbiter.may_deliver(self.group, member)
    }

    /// Handles one delivered message and returns the messages to send in
    /// response, each addressed to a destination host.
    pub fn handle(
        &mut self,
        now: SimTime,
        from: HostId,
        msg: DmpsMessage,
    ) -> Vec<(HostId, DmpsMessage)> {
        // Any message from a registered member refreshes its liveness.
        if let Some(member) = self.host_member.get(&from).copied() {
            self.last_seen.insert(member, now);
        }
        match msg {
            DmpsMessage::ClockSyncRequest { .. } => {
                let global = self.clock.handle_request(now);
                vec![(
                    from,
                    DmpsMessage::ClockSyncResponse {
                        server_global: global,
                    },
                )]
            }
            DmpsMessage::Join {
                name,
                role,
                channels,
            } => {
                // Idempotent per host: a client that lost the JoinAccepted
                // reply re-sends its handshake, and must get its existing
                // member id back rather than a duplicate registration.
                let id = match self.host_member.get(&from) {
                    Some(&existing) => existing,
                    None => {
                        let member = Member::new(name, role).with_channels(channels);
                        let id = self
                            .arbiter
                            .add_member(self.group, member)
                            .expect("session group exists");
                        self.member_host.insert(id, from);
                        self.host_member.insert(from, id);
                        id
                    }
                };
                self.last_seen.insert(id, now);
                vec![(
                    from,
                    DmpsMessage::JoinAccepted {
                        member: id,
                        group: self.group,
                    },
                )]
            }
            DmpsMessage::Floor(request) => {
                let member = request.member;
                let outcome =
                    self.arbiter
                        .arbitrate(&request)
                        .unwrap_or(ArbitrationOutcome::Denied {
                            reason: dmps_floor::arbiter::DenialReason::InsufficientPriority,
                        });
                let mut out = Vec::new();
                // The requester always learns the outcome; granted speakers
                // are notified too so their windows unlock.
                if let Some(&host) = self.member_host.get(&member) {
                    out.push((
                        host,
                        DmpsMessage::FloorDecision {
                            member,
                            outcome: outcome.clone(),
                        },
                    ));
                }
                if let ArbitrationOutcome::Granted { ref speakers, .. } = outcome {
                    for &s in speakers {
                        if s == member {
                            continue;
                        }
                        if let Some(&host) = self.member_host.get(&s) {
                            out.push((
                                host,
                                DmpsMessage::FloorDecision {
                                    member: s,
                                    outcome: outcome.clone(),
                                },
                            ));
                        }
                    }
                }
                out
            }
            DmpsMessage::Chat { from: member, text } => self.fanout_content(
                member,
                DmpsMessage::Chat {
                    from: member,
                    text: text.clone(),
                },
                |s| s.chat_log.push((member, text.clone())),
            ),
            DmpsMessage::Whiteboard {
                from: member,
                stroke,
            } => self.fanout_content(
                member,
                DmpsMessage::Whiteboard {
                    from: member,
                    stroke: stroke.clone(),
                },
                |s| s.whiteboard_log.push((member, stroke.clone())),
            ),
            DmpsMessage::Annotation { from: member, text } => self.fanout_content(
                member,
                DmpsMessage::Annotation {
                    from: member,
                    text: text.clone(),
                },
                |s| s.annotation_log.push((member, text.clone())),
            ),
            DmpsMessage::Heartbeat { member } => {
                self.last_seen.insert(member, now);
                Vec::new()
            }
            DmpsMessage::MediaStart {
                media,
                scheduled_global,
            } => {
                // A self-scheduled broadcast timer: fan the command out to
                // every connected client.
                self.member_host
                    .values()
                    .map(|&host| {
                        (
                            host,
                            DmpsMessage::MediaStart {
                                media: media.clone(),
                                scheduled_global,
                            },
                        )
                    })
                    .collect()
            }
            DmpsMessage::MediaStarted { .. } => Vec::new(),
            DmpsMessage::ClockSyncResponse { .. }
            | DmpsMessage::JoinAccepted { .. }
            | DmpsMessage::FloorDecision { .. }
            | DmpsMessage::DeliveryRejected { .. } => Vec::new(),
        }
    }

    /// Fans user content out to every other member if floor control permits,
    /// or rejects it back to the sender.
    fn fanout_content(
        &mut self,
        member: MemberId,
        msg: DmpsMessage,
        log: impl FnOnce(&mut Self),
    ) -> Vec<(HostId, DmpsMessage)> {
        if !self.may_deliver(member) {
            self.rejected_deliveries += 1;
            let Some(&host) = self.member_host.get(&member) else {
                return Vec::new();
            };
            return vec![(
                host,
                DmpsMessage::DeliveryRejected {
                    member,
                    reason: "floor control denied the delivery".into(),
                },
            )];
        }
        log(self);
        self.member_host
            .iter()
            .filter(|(&m, _)| m != member)
            .map(|(_, &host)| (host, msg.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmps_floor::{FloorRequest, Role};
    use dmps_media::ChannelKind;

    fn server() -> DmpsServer {
        DmpsServer::new(HostId(0), FcmMode::FreeAccess)
    }

    fn join(server: &mut DmpsServer, host: HostId, name: &str, role: Role) -> MemberId {
        let replies = server.handle(
            SimTime::ZERO,
            host,
            DmpsMessage::Join {
                name: name.into(),
                role,
                channels: vec![ChannelKind::MessageWindow],
            },
        );
        match &replies[0].1 {
            DmpsMessage::JoinAccepted { member, .. } => *member,
            other => panic!("expected JoinAccepted, got {other:?}"),
        }
    }

    #[test]
    fn join_registers_member_and_host() {
        let mut s = server();
        let teacher = join(&mut s, HostId(1), "teacher", Role::Chair);
        let student = join(&mut s, HostId(2), "alice", Role::Participant);
        assert_eq!(s.member_at(HostId(1)), Some(teacher));
        assert_eq!(s.host_of(student), Some(HostId(2)));
        assert_eq!(s.members().count(), 2);
        assert_eq!(s.arbiter().group(s.group()).unwrap().chair, Some(teacher));
    }

    #[test]
    fn clock_sync_reports_server_time() {
        let mut s = server();
        let replies = s.handle(
            SimTime::from_millis(1_234),
            HostId(1),
            DmpsMessage::ClockSyncRequest {
                client_local: SimTime::from_millis(1_000),
            },
        );
        assert_eq!(
            replies,
            vec![(
                HostId(1),
                DmpsMessage::ClockSyncResponse {
                    server_global: SimTime::from_millis(1_234)
                }
            )]
        );
    }

    #[test]
    fn chat_is_fanned_out_to_other_members_only() {
        let mut s = server();
        let teacher = join(&mut s, HostId(1), "teacher", Role::Chair);
        let _alice = join(&mut s, HostId(2), "alice", Role::Participant);
        let _bob = join(&mut s, HostId(3), "bob", Role::Participant);
        let out = s.handle(
            SimTime::from_secs(1),
            HostId(1),
            DmpsMessage::Chat {
                from: teacher,
                text: "hello class".into(),
            },
        );
        let hosts: Vec<HostId> = out.iter().map(|(h, _)| *h).collect();
        assert_eq!(hosts, vec![HostId(2), HostId(3)]);
        assert_eq!(s.chat_log().len(), 1);
    }

    #[test]
    fn equal_control_blocks_non_holders() {
        let mut s = DmpsServer::new(HostId(0), FcmMode::EqualControl);
        let teacher = join(&mut s, HostId(1), "teacher", Role::Chair);
        let alice = join(&mut s, HostId(2), "alice", Role::Participant);
        // Teacher requests and receives the floor.
        let out = s.handle(
            SimTime::from_secs(1),
            HostId(1),
            DmpsMessage::Floor(FloorRequest::speak(s.group(), teacher)),
        );
        assert!(matches!(
            out[0].1,
            DmpsMessage::FloorDecision {
                outcome: ArbitrationOutcome::Granted { .. },
                ..
            }
        ));
        // Alice's chat is rejected; the teacher's goes through.
        let out = s.handle(
            SimTime::from_secs(2),
            HostId(2),
            DmpsMessage::Chat {
                from: alice,
                text: "can I say something?".into(),
            },
        );
        assert!(matches!(out[0].1, DmpsMessage::DeliveryRejected { .. }));
        assert_eq!(s.rejected_deliveries(), 1);
        let out = s.handle(
            SimTime::from_secs(3),
            HostId(1),
            DmpsMessage::Chat {
                from: teacher,
                text: "go ahead after the token".into(),
            },
        );
        assert!(matches!(out[0].1, DmpsMessage::Chat { .. }));
    }

    #[test]
    fn connection_lights_follow_heartbeats() {
        let mut s = server();
        let teacher = join(&mut s, HostId(1), "teacher", Role::Chair);
        let alice = join(&mut s, HostId(2), "alice", Role::Participant);
        s.set_liveness_timeout(Duration::from_secs(5));
        // Heartbeat from the teacher at t = 8 s; alice stays silent.
        s.handle(
            SimTime::from_secs(8),
            HostId(1),
            DmpsMessage::Heartbeat { member: teacher },
        );
        let lights = s.connection_lights(SimTime::from_secs(10));
        let get = |m: MemberId| lights.iter().find(|(x, _)| *x == m).unwrap().1;
        assert!(get(teacher), "teacher stayed green");
        assert!(!get(alice), "alice went red after 10 s of silence");
    }

    #[test]
    fn media_start_timer_is_broadcast_to_all_members() {
        let mut s = server();
        join(&mut s, HostId(1), "teacher", Role::Chair);
        join(&mut s, HostId(2), "alice", Role::Participant);
        let out = s.handle(
            SimTime::from_secs(1),
            s.host(),
            DmpsMessage::MediaStart {
                media: "intro".into(),
                scheduled_global: SimTime::from_secs(2),
            },
        );
        assert_eq!(out.len(), 2);
        assert!(out
            .iter()
            .all(|(_, m)| matches!(m, DmpsMessage::MediaStart { .. })));
    }

    #[test]
    fn annotation_and_whiteboard_are_logged() {
        let mut s = server();
        let teacher = join(&mut s, HostId(1), "teacher", Role::Chair);
        join(&mut s, HostId(2), "alice", Role::Participant);
        s.handle(
            SimTime::from_secs(1),
            HostId(1),
            DmpsMessage::Annotation {
                from: teacher,
                text: "see equation 3".into(),
            },
        );
        s.handle(
            SimTime::from_secs(2),
            HostId(1),
            DmpsMessage::Whiteboard {
                from: teacher,
                stroke: "line(0,0,10,10)".into(),
            },
        );
        assert_eq!(s.annotation_log().len(), 1);
        assert_eq!(s.whiteboard_log().len(), 1);
    }
}
