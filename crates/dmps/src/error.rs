//! Error type of the DMPS application layer.

use std::fmt;

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, DmpsError>;

/// Errors raised by the DMPS application layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DmpsError {
    /// An error from the floor control mechanism.
    Floor(dmps_floor::FloorError),
    /// An error from the network simulator.
    Sim(dmps_simnet::SimError),
    /// An error from the presentation models.
    Docpn(dmps_docpn::DocpnError),
    /// An error from the media model.
    Media(dmps_media::MediaError),
    /// An error from the sharded control plane.
    Cluster(dmps_cluster::ClusterError),
    /// A client index does not exist in the session.
    UnknownClient(usize),
    /// A client has not completed the join handshake yet.
    NotJoined(usize),
}

impl fmt::Display for DmpsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DmpsError::Floor(e) => write!(f, "floor control error: {e}"),
            DmpsError::Sim(e) => write!(f, "network simulator error: {e}"),
            DmpsError::Docpn(e) => write!(f, "presentation model error: {e}"),
            DmpsError::Media(e) => write!(f, "media model error: {e}"),
            DmpsError::Cluster(e) => write!(f, "cluster error: {e}"),
            DmpsError::UnknownClient(i) => write!(f, "unknown client index {i}"),
            DmpsError::NotJoined(i) => write!(f, "client {i} has not joined the session"),
        }
    }
}

impl std::error::Error for DmpsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DmpsError::Floor(e) => Some(e),
            DmpsError::Sim(e) => Some(e),
            DmpsError::Docpn(e) => Some(e),
            DmpsError::Media(e) => Some(e),
            DmpsError::Cluster(e) => Some(e),
            _ => None,
        }
    }
}

impl From<dmps_floor::FloorError> for DmpsError {
    fn from(e: dmps_floor::FloorError) -> Self {
        DmpsError::Floor(e)
    }
}

impl From<dmps_simnet::SimError> for DmpsError {
    fn from(e: dmps_simnet::SimError) -> Self {
        DmpsError::Sim(e)
    }
}

impl From<dmps_docpn::DocpnError> for DmpsError {
    fn from(e: dmps_docpn::DocpnError) -> Self {
        DmpsError::Docpn(e)
    }
}

impl From<dmps_media::MediaError> for DmpsError {
    fn from(e: dmps_media::MediaError) -> Self {
        DmpsError::Media(e)
    }
}

impl From<dmps_cluster::ClusterError> for DmpsError {
    fn from(e: dmps_cluster::ClusterError) -> Self {
        DmpsError::Cluster(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        use std::error::Error as _;
        let e = DmpsError::from(dmps_simnet::SimError::TimeWentBackwards);
        assert!(e.to_string().contains("network simulator"));
        assert!(e.source().is_some());
        let e = DmpsError::UnknownClient(3);
        assert!(e.to_string().contains('3'));
        assert!(e.source().is_none());
        let e = DmpsError::from(dmps_floor::FloorError::MissingDestination);
        assert!(e.to_string().contains("floor control"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync + std::error::Error>() {}
        check::<DmpsError>();
    }
}
