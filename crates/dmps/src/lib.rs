//! # dmps
//!
//! The Distributed Multimedia Presentation System of the paper, assembled
//! from the substrate crates: a **server** hosting the group administration,
//! the global clock and the floor control arbiter; **clients** with their
//! communication windows (message window, whiteboard, annotation overlay) and
//! drifting local clocks; and a **session** that wires them together over the
//! deterministic network simulator.
//!
//! The crate also contains the pieces the experiments need: the presentation
//! driver that broadcasts DOCPN schedules and measures cross-client skew
//! (experiment E4), workload generators for floor-control request traces
//! (E6/E8), textual renderers reproducing the communication windows of
//! Figure 2 and the connection lights of Figure 3, and the metrics used in
//! `EXPERIMENTS.md`.
//!
//! For running whole presentation sessions *sharded* — chat, whiteboard,
//! sub-sessions and synchronized playback executing against the
//! `dmps-cluster` control plane with crash/failover — see
//! [`ClusterSession`].
//!
//! # Example
//!
//! ```
//! use dmps::{Session, SessionConfig};
//! use dmps_floor::{FcmMode, Role};
//! use dmps_simnet::Link;
//!
//! let mut session = Session::new(SessionConfig::new(42, FcmMode::FreeAccess));
//! let teacher = session.add_client("teacher", Role::Chair, Link::lan(), Default::default());
//! let alice = session.add_client("alice", Role::Participant, Link::dsl(), Default::default());
//! session.pump();
//! session.send_chat(teacher, "welcome to the lecture");
//! session.pump();
//! assert!(session.client(alice).message_window().iter().any(|l| l.contains("welcome")));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod cluster_session;
pub mod error;
pub mod message;
pub mod metrics;
pub mod presentation;
pub mod render;
pub mod server;
pub mod session;
pub mod workload;

pub use client::DmpsClient;
pub use cluster_session::{ClusterSession, ClusterSessionConfig};
pub use error::{DmpsError, Result};
pub use message::DmpsMessage;
pub use metrics::{GrantLatencyStats, SkewStats};
pub use presentation::{PlaybackSkewReport, PresentationDriver};
pub use server::DmpsServer;
pub use session::{Session, SessionConfig};
pub use workload::{Workload, WorkloadEvent, WorkloadKind};
