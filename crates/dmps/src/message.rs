//! The DMPS wire protocol carried over the simulated network.

use serde::{Deserialize, Serialize};

use dmps_floor::{ArbitrationOutcome, FloorRequest, GroupId, MemberId, Role};
use dmps_media::ChannelKind;
use dmps_simnet::SimTime;

/// Messages exchanged between the DMPS server and its clients.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum DmpsMessage {
    /// Client → server: request the current global clock.
    ClockSyncRequest {
        /// The client's local clock reading when it sent the request.
        client_local: SimTime,
    },
    /// Server → client: the global clock at the moment the request was
    /// handled.
    ClockSyncResponse {
        /// The global time.
        server_global: SimTime,
    },
    /// Client → server: join the session.
    Join {
        /// Display name.
        name: String,
        /// Session role (teacher = chair, student = participant).
        role: Role,
        /// The channels the client enabled in its communication window.
        channels: Vec<ChannelKind>,
    },
    /// Server → client: the join was accepted.
    JoinAccepted {
        /// The member id assigned by the group administration.
        member: MemberId,
        /// The main session group.
        group: GroupId,
    },
    /// Client → server: a floor control request.
    Floor(FloorRequest),
    /// Server → client: the arbitration outcome for a request the client
    /// made.
    FloorDecision {
        /// The member whose request was arbitrated.
        member: MemberId,
        /// The outcome.
        outcome: ArbitrationOutcome,
    },
    /// A text message for the message window.
    Chat {
        /// Sender.
        from: MemberId,
        /// The text.
        text: String,
    },
    /// A whiteboard stroke batch.
    Whiteboard {
        /// Sender.
        from: MemberId,
        /// Encoded stroke data.
        stroke: String,
    },
    /// A teacher annotation (Figure 3a).
    Annotation {
        /// Sender.
        from: MemberId,
        /// The annotation text.
        text: String,
    },
    /// Server → clients: start presenting a media object at the given global
    /// time (the DOCPN schedule broadcast).
    MediaStart {
        /// Name of the media object.
        media: String,
        /// The global time at which every client should start it.
        scheduled_global: SimTime,
    },
    /// Client → server: report that a media object was started (used by the
    /// skew measurement).
    MediaStarted {
        /// The reporting member.
        member: MemberId,
        /// Name of the media object.
        media: String,
        /// The client's estimate of global time when it started the object.
        estimated_global: SimTime,
    },
    /// Client → server: periodic liveness heartbeat (drives the connection
    /// lights of Figure 3).
    Heartbeat {
        /// The reporting member.
        member: MemberId,
    },
    /// A denial notice for a delivery attempt that floor control rejected.
    DeliveryRejected {
        /// The member whose delivery was rejected.
        member: MemberId,
        /// Human-readable reason.
        reason: String,
    },
}

impl DmpsMessage {
    /// The approximate wire size of the message in bytes, used by the
    /// simulator to compute transmission delays.
    pub fn size_bytes(&self) -> u64 {
        match self {
            DmpsMessage::ClockSyncRequest { .. } | DmpsMessage::ClockSyncResponse { .. } => 48,
            DmpsMessage::Join { name, channels, .. } => 64 + name.len() as u64 + channels.len() as u64 * 4,
            DmpsMessage::JoinAccepted { .. } => 32,
            DmpsMessage::Floor(_) => 64,
            DmpsMessage::FloorDecision { outcome, .. } => {
                48 + outcome.suspensions().len() as u64 * 16
            }
            DmpsMessage::Chat { text, .. } => 32 + text.len() as u64,
            DmpsMessage::Whiteboard { stroke, .. } => 32 + stroke.len() as u64,
            DmpsMessage::Annotation { text, .. } => 32 + text.len() as u64,
            DmpsMessage::MediaStart { media, .. } => 48 + media.len() as u64,
            DmpsMessage::MediaStarted { media, .. } => 48 + media.len() as u64,
            DmpsMessage::Heartbeat { .. } => 16,
            DmpsMessage::DeliveryRejected { reason, .. } => 32 + reason.len() as u64,
        }
    }

    /// Whether this message is part of the control plane (clock sync, floor
    /// control, membership) rather than user content.
    pub fn is_control(&self) -> bool {
        !matches!(
            self,
            DmpsMessage::Chat { .. }
                | DmpsMessage::Whiteboard { .. }
                | DmpsMessage::Annotation { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_positive_and_scale_with_content() {
        let short = DmpsMessage::Chat {
            from: MemberId(0),
            text: "hi".into(),
        };
        let long = DmpsMessage::Chat {
            from: MemberId(0),
            text: "a much longer chat message with plenty of text".into(),
        };
        assert!(short.size_bytes() > 0);
        assert!(long.size_bytes() > short.size_bytes());
        assert!(DmpsMessage::Heartbeat { member: MemberId(0) }.size_bytes() < 32);
    }

    #[test]
    fn control_plane_classification() {
        assert!(DmpsMessage::ClockSyncRequest {
            client_local: SimTime::ZERO
        }
        .is_control());
        assert!(DmpsMessage::Heartbeat { member: MemberId(1) }.is_control());
        assert!(!DmpsMessage::Chat {
            from: MemberId(1),
            text: "x".into()
        }
        .is_control());
        assert!(!DmpsMessage::Annotation {
            from: MemberId(1),
            text: "x".into()
        }
        .is_control());
    }

    #[test]
    fn serde_roundtrip() {
        let msg = DmpsMessage::MediaStart {
            media: "intro-video".into(),
            scheduled_global: SimTime::from_secs(5),
        };
        let json = serde_json::to_string(&msg).unwrap();
        let back: DmpsMessage = serde_json::from_str(&json).unwrap();
        assert_eq!(msg, back);
    }
}
