//! The DMPS wire protocol carried over the simulated network.

use serde::{Deserialize, Serialize};

use dmps_floor::{ArbitrationOutcome, FloorRequest, GroupId, MemberId, Role};
use dmps_media::ChannelKind;
use dmps_simnet::SimTime;

/// Messages exchanged between the DMPS server and its clients.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum DmpsMessage {
    /// Client → server: request the current global clock.
    ClockSyncRequest {
        /// The client's local clock reading when it sent the request.
        client_local: SimTime,
    },
    /// Server → client: the global clock at the moment the request was
    /// handled.
    ClockSyncResponse {
        /// The global time.
        server_global: SimTime,
    },
    /// Client → server: join the session.
    Join {
        /// Display name.
        name: String,
        /// Session role (teacher = chair, student = participant).
        role: Role,
        /// The channels the client enabled in its communication window.
        channels: Vec<ChannelKind>,
    },
    /// Server → client: the join was accepted.
    JoinAccepted {
        /// The member id assigned by the group administration.
        member: MemberId,
        /// The main session group.
        group: GroupId,
    },
    /// Client → server: a floor control request.
    Floor(FloorRequest),
    /// Server → client: the arbitration outcome for a request the client
    /// made.
    FloorDecision {
        /// The member whose request was arbitrated.
        member: MemberId,
        /// The outcome.
        outcome: ArbitrationOutcome,
    },
    /// A text message for the message window.
    Chat {
        /// Sender.
        from: MemberId,
        /// The text.
        text: String,
    },
    /// A whiteboard stroke batch.
    Whiteboard {
        /// Sender.
        from: MemberId,
        /// Encoded stroke data.
        stroke: String,
    },
    /// A teacher annotation (Figure 3a).
    Annotation {
        /// Sender.
        from: MemberId,
        /// The annotation text.
        text: String,
    },
    /// Server → clients: start presenting a media object at the given global
    /// time (the DOCPN schedule broadcast).
    MediaStart {
        /// Name of the media object.
        media: String,
        /// The global time at which every client should start it.
        scheduled_global: SimTime,
    },
    /// Client → server: report that a media object was started (used by the
    /// skew measurement).
    MediaStarted {
        /// The reporting member.
        member: MemberId,
        /// Name of the media object.
        media: String,
        /// The client's estimate of global time when it started the object.
        estimated_global: SimTime,
    },
    /// Client → server: periodic liveness heartbeat (drives the connection
    /// lights of Figure 3).
    Heartbeat {
        /// The reporting member.
        member: MemberId,
    },
    /// A denial notice for a delivery attempt that floor control rejected.
    DeliveryRejected {
        /// The member whose delivery was rejected.
        member: MemberId,
        /// Human-readable reason.
        reason: String,
    },
}

impl DmpsMessage {
    /// The approximate wire size of the message in bytes, used by the
    /// simulator to compute transmission delays.
    pub fn size_bytes(&self) -> u64 {
        match self {
            DmpsMessage::ClockSyncRequest { .. } | DmpsMessage::ClockSyncResponse { .. } => 48,
            DmpsMessage::Join { name, channels, .. } => {
                64 + name.len() as u64 + channels.len() as u64 * 4
            }
            DmpsMessage::JoinAccepted { .. } => 32,
            DmpsMessage::Floor(_) => 64,
            DmpsMessage::FloorDecision { outcome, .. } => {
                48 + outcome.suspensions().len() as u64 * 16
            }
            DmpsMessage::Chat { text, .. } => 32 + text.len() as u64,
            DmpsMessage::Whiteboard { stroke, .. } => 32 + stroke.len() as u64,
            DmpsMessage::Annotation { text, .. } => 32 + text.len() as u64,
            DmpsMessage::MediaStart { media, .. } => 48 + media.len() as u64,
            DmpsMessage::MediaStarted { media, .. } => 48 + media.len() as u64,
            DmpsMessage::Heartbeat { .. } => 16,
            DmpsMessage::DeliveryRejected { reason, .. } => 32 + reason.len() as u64,
        }
    }

    /// Whether this message is part of the control plane (clock sync, floor
    /// control, membership) rather than user content.
    pub fn is_control(&self) -> bool {
        !matches!(
            self,
            DmpsMessage::Chat { .. }
                | DmpsMessage::Whiteboard { .. }
                | DmpsMessage::Annotation { .. }
        )
    }
}

impl dmps_wire::Wire for DmpsMessage {
    fn encode(&self, w: &mut dmps_wire::Writer) {
        match self {
            DmpsMessage::ClockSyncRequest { client_local } => {
                0u8.encode(w);
                client_local.encode(w);
            }
            DmpsMessage::ClockSyncResponse { server_global } => {
                1u8.encode(w);
                server_global.encode(w);
            }
            DmpsMessage::Join {
                name,
                role,
                channels,
            } => {
                2u8.encode(w);
                name.encode(w);
                role.encode(w);
                channels.encode(w);
            }
            DmpsMessage::JoinAccepted { member, group } => {
                3u8.encode(w);
                member.encode(w);
                group.encode(w);
            }
            DmpsMessage::Floor(request) => {
                4u8.encode(w);
                request.encode(w);
            }
            DmpsMessage::FloorDecision { member, outcome } => {
                5u8.encode(w);
                member.encode(w);
                outcome.encode(w);
            }
            DmpsMessage::Chat { from, text } => {
                6u8.encode(w);
                from.encode(w);
                text.encode(w);
            }
            DmpsMessage::Whiteboard { from, stroke } => {
                7u8.encode(w);
                from.encode(w);
                stroke.encode(w);
            }
            DmpsMessage::Annotation { from, text } => {
                8u8.encode(w);
                from.encode(w);
                text.encode(w);
            }
            DmpsMessage::MediaStart {
                media,
                scheduled_global,
            } => {
                9u8.encode(w);
                media.encode(w);
                scheduled_global.encode(w);
            }
            DmpsMessage::MediaStarted {
                member,
                media,
                estimated_global,
            } => {
                10u8.encode(w);
                member.encode(w);
                media.encode(w);
                estimated_global.encode(w);
            }
            DmpsMessage::Heartbeat { member } => {
                11u8.encode(w);
                member.encode(w);
            }
            DmpsMessage::DeliveryRejected { member, reason } => {
                12u8.encode(w);
                member.encode(w);
                reason.encode(w);
            }
        }
    }

    fn decode(r: &mut dmps_wire::Reader<'_>) -> dmps_wire::Result<Self> {
        let tag = u8::decode(r)?;
        Ok(match tag {
            0 => DmpsMessage::ClockSyncRequest {
                client_local: SimTime::decode(r)?,
            },
            1 => DmpsMessage::ClockSyncResponse {
                server_global: SimTime::decode(r)?,
            },
            2 => DmpsMessage::Join {
                name: String::decode(r)?,
                role: Role::decode(r)?,
                channels: Vec::<ChannelKind>::decode(r)?,
            },
            3 => DmpsMessage::JoinAccepted {
                member: MemberId::decode(r)?,
                group: GroupId::decode(r)?,
            },
            4 => DmpsMessage::Floor(FloorRequest::decode(r)?),
            5 => DmpsMessage::FloorDecision {
                member: MemberId::decode(r)?,
                outcome: ArbitrationOutcome::decode(r)?,
            },
            6 => DmpsMessage::Chat {
                from: MemberId::decode(r)?,
                text: String::decode(r)?,
            },
            7 => DmpsMessage::Whiteboard {
                from: MemberId::decode(r)?,
                stroke: String::decode(r)?,
            },
            8 => DmpsMessage::Annotation {
                from: MemberId::decode(r)?,
                text: String::decode(r)?,
            },
            9 => DmpsMessage::MediaStart {
                media: String::decode(r)?,
                scheduled_global: SimTime::decode(r)?,
            },
            10 => DmpsMessage::MediaStarted {
                member: MemberId::decode(r)?,
                media: String::decode(r)?,
                estimated_global: SimTime::decode(r)?,
            },
            11 => DmpsMessage::Heartbeat {
                member: MemberId::decode(r)?,
            },
            12 => DmpsMessage::DeliveryRejected {
                member: MemberId::decode(r)?,
                reason: String::decode(r)?,
            },
            other => {
                return Err(dmps_wire::WireError::BadToken {
                    expected: "DmpsMessage tag",
                    token: other.to_string(),
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_positive_and_scale_with_content() {
        let short = DmpsMessage::Chat {
            from: MemberId(0),
            text: "hi".into(),
        };
        let long = DmpsMessage::Chat {
            from: MemberId(0),
            text: "a much longer chat message with plenty of text".into(),
        };
        assert!(short.size_bytes() > 0);
        assert!(long.size_bytes() > short.size_bytes());
        assert!(
            DmpsMessage::Heartbeat {
                member: MemberId(0)
            }
            .size_bytes()
                < 32
        );
    }

    #[test]
    fn control_plane_classification() {
        assert!(DmpsMessage::ClockSyncRequest {
            client_local: SimTime::ZERO
        }
        .is_control());
        assert!(DmpsMessage::Heartbeat {
            member: MemberId(1)
        }
        .is_control());
        assert!(!DmpsMessage::Chat {
            from: MemberId(1),
            text: "x".into()
        }
        .is_control());
        assert!(!DmpsMessage::Annotation {
            from: MemberId(1),
            text: "x".into()
        }
        .is_control());
    }

    #[test]
    fn serde_roundtrip() {
        let msg = DmpsMessage::MediaStart {
            media: "intro-video".into(),
            scheduled_global: SimTime::from_secs(5),
        };
        let encoded = dmps_wire::to_string(&msg);
        let back: DmpsMessage = dmps_wire::from_str(&encoded).unwrap();
        assert_eq!(msg, back);
        // Every variant kind round-trips, including nested outcomes.
        let complex = DmpsMessage::FloorDecision {
            member: MemberId(3),
            outcome: ArbitrationOutcome::Granted {
                speakers: vec![MemberId(3), MemberId(4)],
                suspensions: Vec::new(),
            },
        };
        let back: DmpsMessage = dmps_wire::from_str(&dmps_wire::to_string(&complex)).unwrap();
        assert_eq!(complex, back);
    }
}
