//! Metrics used by the experiment harness.
//!
//! Quantiles come from the cluster's shared log-bucketed
//! [`dmps_telemetry::Histogram`] (one quantile implementation repo-wide),
//! so percentile values carry its ≤ 1/32 relative bucket error while counts,
//! sums, means and extrema stay exact (the histogram tracks those in exact
//! side-registers).

use std::time::Duration;

use dmps_telemetry::Histogram;
use serde::{Deserialize, Serialize};

/// Summary statistics of cross-client presentation skew (experiment E4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct SkewStats {
    /// Largest absolute deviation from the scheduled global start.
    pub max: Duration,
    /// Mean absolute deviation.
    pub mean: Duration,
    /// Largest pairwise difference between any two clients' actual starts
    /// (the skew a viewer would perceive between two screens side by side).
    pub spread: Duration,
    /// Number of samples.
    pub samples: usize,
}

impl SkewStats {
    /// Computes skew statistics from per-client signed deviations
    /// (actual − scheduled) expressed in nanoseconds.
    ///
    /// The absolute deviations are folded through a [`Histogram`]; `max`
    /// comes from its exact extremum register and `mean` from its exact
    /// count/sum registers, rounded to the nearest nanosecond (not
    /// truncated). `spread` is the largest pairwise difference and is
    /// computed on the signed samples directly, since a magnitude histogram
    /// cannot see sign.
    pub fn from_deviations(deviations_nanos: &[i64]) -> Self {
        if deviations_nanos.is_empty() {
            return SkewStats::default();
        }
        let histogram = Histogram::new();
        for deviation in deviations_nanos {
            histogram.record(deviation.unsigned_abs());
        }
        let count = histogram.count();
        let mean = (histogram.sum() + count / 2) / count;
        let spread = (deviations_nanos.iter().max().unwrap_or(&0)
            - deviations_nanos.iter().min().unwrap_or(&0))
        .unsigned_abs();
        SkewStats {
            max: Duration::from_nanos(histogram.max()),
            mean: Duration::from_nanos(mean),
            spread: Duration::from_nanos(spread),
            samples: deviations_nanos.len(),
        }
    }
}

/// Summary statistics of floor-grant latency (experiments E6/E8).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct GrantLatencyStats {
    /// Mean request-to-decision latency.
    pub mean: Duration,
    /// Maximum latency.
    pub max: Duration,
    /// 95th-percentile latency.
    pub p95: Duration,
    /// Number of samples.
    pub samples: usize,
}

impl GrantLatencyStats {
    /// Computes latency statistics from individual samples.
    ///
    /// Samples are folded through a [`Histogram`]: `mean` (exact sum/count,
    /// rounded to the nearest nanosecond) and `max` (exact extremum register)
    /// are exact, while `p95` is the histogram's log-bucketed quantile — at
    /// most 1/32 above the exact order statistic, never below it.
    pub fn from_samples(samples: &[Duration]) -> Self {
        if samples.is_empty() {
            return GrantLatencyStats::default();
        }
        let histogram = Histogram::new();
        for sample in samples {
            histogram.record(dmps_telemetry::saturating_nanos(*sample));
        }
        let count = histogram.count();
        let mean = (histogram.sum() + count / 2) / count;
        GrantLatencyStats {
            mean: Duration::from_nanos(mean),
            max: Duration::from_nanos(histogram.max()),
            p95: Duration::from_nanos(histogram.quantile(0.95)),
            samples: samples.len(),
        }
    }
}

/// Jain's fairness index over per-member counts (1.0 = perfectly fair).
pub fn jain_fairness(counts: &[u64]) -> f64 {
    if counts.is_empty() {
        return 1.0;
    }
    let sum: f64 = counts.iter().map(|&c| c as f64).sum();
    let sum_sq: f64 = counts.iter().map(|&c| (c as f64) * (c as f64)).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (counts.len() as f64 * sum_sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skew_stats_from_deviations() {
        let stats = SkewStats::from_deviations(&[-2_000_000, 1_000_000, 3_000_000]);
        assert_eq!(stats.max, Duration::from_millis(3));
        assert_eq!(stats.mean, Duration::from_millis(2));
        assert_eq!(stats.spread, Duration::from_millis(5));
        assert_eq!(stats.samples, 3);
        assert_eq!(SkewStats::from_deviations(&[]), SkewStats::default());
    }

    #[test]
    fn skew_mean_rounds_instead_of_truncating() {
        // Sum 3 ns over 2 samples: a truncating mean says 1 ns; rounding to
        // the nearest nanosecond says 2 ns.
        let stats = SkewStats::from_deviations(&[1, -2]);
        assert_eq!(stats.mean, Duration::from_nanos(2));
        assert_eq!(stats.spread, Duration::from_nanos(3));
    }

    #[test]
    fn grant_latency_stats() {
        let samples: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        let stats = GrantLatencyStats::from_samples(&samples);
        // Extremum and mean come from the histogram's exact side-registers.
        assert_eq!(stats.max, Duration::from_millis(100));
        assert_eq!(stats.mean, Duration::from_nanos(50_500_000));
        assert_eq!(stats.samples, 100);
        // The quantile is log-bucketed: at most 1/32 above the exact order
        // statistic (95 ms here), never below.
        let exact = Duration::from_millis(95);
        assert!(stats.p95 >= exact, "p95 {:?} below exact", stats.p95);
        assert!(
            stats.p95 <= exact + exact / 32,
            "p95 {:?} too high",
            stats.p95
        );
        assert_eq!(
            GrantLatencyStats::from_samples(&[]),
            GrantLatencyStats::default()
        );
    }

    #[test]
    fn jain_index_bounds() {
        assert!((jain_fairness(&[5, 5, 5, 5]) - 1.0).abs() < 1e-12);
        let skewed = jain_fairness(&[10, 0, 0, 0]);
        assert!((skewed - 0.25).abs() < 1e-12);
        assert!((jain_fairness(&[]) - 1.0).abs() < 1e-12);
        assert!((jain_fairness(&[0, 0]) - 1.0).abs() < 1e-12);
    }
}
