//! Metrics used by the experiment harness.

use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Summary statistics of cross-client presentation skew (experiment E4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct SkewStats {
    /// Largest absolute deviation from the scheduled global start.
    pub max: Duration,
    /// Mean absolute deviation.
    pub mean: Duration,
    /// Largest pairwise difference between any two clients' actual starts
    /// (the skew a viewer would perceive between two screens side by side).
    pub spread: Duration,
    /// Number of samples.
    pub samples: usize,
}

impl SkewStats {
    /// Computes skew statistics from per-client signed deviations
    /// (actual − scheduled) expressed in nanoseconds.
    pub fn from_deviations(deviations_nanos: &[i64]) -> Self {
        if deviations_nanos.is_empty() {
            return SkewStats::default();
        }
        let max = deviations_nanos
            .iter()
            .map(|d| d.unsigned_abs())
            .max()
            .unwrap_or(0);
        let mean = deviations_nanos
            .iter()
            .map(|d| d.unsigned_abs())
            .sum::<u64>()
            / deviations_nanos.len() as u64;
        let spread = (deviations_nanos.iter().max().unwrap_or(&0)
            - deviations_nanos.iter().min().unwrap_or(&0))
        .unsigned_abs();
        SkewStats {
            max: Duration::from_nanos(max),
            mean: Duration::from_nanos(mean),
            spread: Duration::from_nanos(spread),
            samples: deviations_nanos.len(),
        }
    }
}

/// Summary statistics of floor-grant latency (experiments E6/E8).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct GrantLatencyStats {
    /// Mean request-to-decision latency.
    pub mean: Duration,
    /// Maximum latency.
    pub max: Duration,
    /// 95th-percentile latency.
    pub p95: Duration,
    /// Number of samples.
    pub samples: usize,
}

impl GrantLatencyStats {
    /// Computes latency statistics from individual samples.
    pub fn from_samples(samples: &[Duration]) -> Self {
        if samples.is_empty() {
            return GrantLatencyStats::default();
        }
        let mut sorted: Vec<Duration> = samples.to_vec();
        sorted.sort();
        let total: Duration = sorted.iter().sum();
        let mean = total / sorted.len() as u32;
        let max = *sorted.last().expect("non-empty");
        let p95 = sorted[((sorted.len() as f64 * 0.95).ceil() as usize - 1).min(sorted.len() - 1)];
        GrantLatencyStats {
            mean,
            max,
            p95,
            samples: sorted.len(),
        }
    }
}

/// Jain's fairness index over per-member counts (1.0 = perfectly fair).
pub fn jain_fairness(counts: &[u64]) -> f64 {
    if counts.is_empty() {
        return 1.0;
    }
    let sum: f64 = counts.iter().map(|&c| c as f64).sum();
    let sum_sq: f64 = counts.iter().map(|&c| (c as f64) * (c as f64)).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (counts.len() as f64 * sum_sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skew_stats_from_deviations() {
        let stats = SkewStats::from_deviations(&[-2_000_000, 1_000_000, 3_000_000]);
        assert_eq!(stats.max, Duration::from_millis(3));
        assert_eq!(stats.mean, Duration::from_millis(2));
        assert_eq!(stats.spread, Duration::from_millis(5));
        assert_eq!(stats.samples, 3);
        assert_eq!(SkewStats::from_deviations(&[]), SkewStats::default());
    }

    #[test]
    fn grant_latency_stats() {
        let samples: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        let stats = GrantLatencyStats::from_samples(&samples);
        assert_eq!(stats.max, Duration::from_millis(100));
        assert_eq!(stats.p95, Duration::from_millis(95));
        assert_eq!(stats.samples, 100);
        assert!(stats.mean >= Duration::from_millis(50));
        assert_eq!(
            GrantLatencyStats::from_samples(&[]),
            GrantLatencyStats::default()
        );
    }

    #[test]
    fn jain_index_bounds() {
        assert!((jain_fairness(&[5, 5, 5, 5]) - 1.0).abs() < 1e-12);
        let skewed = jain_fairness(&[10, 0, 0, 0]);
        assert!((skewed - 0.25).abs() < 1e-12);
        assert!((jain_fairness(&[]) - 1.0).abs() < 1e-12);
        assert!((jain_fairness(&[0, 0]) - 1.0).abs() < 1e-12);
    }
}
