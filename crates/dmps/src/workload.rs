//! Workload generators: scripted and randomized request traces for the
//! floor-control experiments (E6, E8).

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One event of a workload trace, relative to the trace start.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadEvent {
    /// Offset from the start of the trace.
    pub at: Duration,
    /// The client index performing the action.
    pub client: usize,
    /// The action.
    pub action: WorkloadAction,
}

/// Actions a workload can issue.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadAction {
    /// Request the floor.
    RequestFloor,
    /// Release the floor.
    ReleaseFloor,
    /// Send a chat line.
    Chat(String),
    /// Draw a whiteboard stroke.
    Whiteboard(String),
    /// Send a teacher annotation.
    Annotation(String),
}

/// The distance-learning scenarios of experiment E6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// The teacher lectures: mostly teacher annotations and chats, sparse
    /// student questions.
    Lecture,
    /// Question-and-answer: students take turns requesting the floor.
    QuestionAnswer,
    /// Breakout discussion: every student chats frequently.
    Discussion,
    /// Uniform random mix of all actions (stress / scaling runs).
    Random,
}

/// A generated workload trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// The scenario that produced the trace.
    pub kind: WorkloadKind,
    /// The events in time order.
    pub events: Vec<WorkloadEvent>,
}

impl Workload {
    /// Generates a workload trace.
    ///
    /// * `kind` — the scenario;
    /// * `clients` — number of clients (client 0 is the teacher);
    /// * `duration` — length of the trace;
    /// * `events_per_second` — average event rate across all clients;
    /// * `seed` — RNG seed (the trace is deterministic in the seed).
    pub fn generate(
        kind: WorkloadKind,
        clients: usize,
        duration: Duration,
        events_per_second: f64,
        seed: u64,
    ) -> Self {
        assert!(clients > 0, "a workload needs at least one client");
        let mut rng = StdRng::seed_from_u64(seed);
        let total_events = (duration.as_secs_f64() * events_per_second).round() as usize;
        let mut events = Vec::with_capacity(total_events);
        for i in 0..total_events {
            let at = Duration::from_secs_f64(
                duration.as_secs_f64() * (i as f64 + rng.gen::<f64>()) / total_events.max(1) as f64,
            );
            let (client, action) = match kind {
                WorkloadKind::Lecture => {
                    if rng.gen_bool(0.7) {
                        // The teacher annotates or chats.
                        let action = if rng.gen_bool(0.5) {
                            WorkloadAction::Annotation(format!("annotation-{i}"))
                        } else {
                            WorkloadAction::Chat(format!("lecture-point-{i}"))
                        };
                        (0, action)
                    } else {
                        // A student asks a question in chat.
                        (
                            1 + rng.gen_range(0..clients.max(2) - 1),
                            WorkloadAction::Chat(format!("question-{i}")),
                        )
                    }
                }
                WorkloadKind::QuestionAnswer => {
                    let client = rng.gen_range(0..clients);
                    let action = match rng.gen_range(0..3) {
                        0 => WorkloadAction::RequestFloor,
                        1 => WorkloadAction::Chat(format!("answer-{i}")),
                        _ => WorkloadAction::ReleaseFloor,
                    };
                    (client, action)
                }
                WorkloadKind::Discussion => {
                    let client = rng.gen_range(0..clients);
                    let action = if rng.gen_bool(0.6) {
                        WorkloadAction::Chat(format!("idea-{i}"))
                    } else {
                        WorkloadAction::Whiteboard(format!("sketch-{i}"))
                    };
                    (client, action)
                }
                WorkloadKind::Random => {
                    let client = rng.gen_range(0..clients);
                    let action = match rng.gen_range(0..5) {
                        0 => WorkloadAction::RequestFloor,
                        1 => WorkloadAction::ReleaseFloor,
                        2 => WorkloadAction::Chat(format!("msg-{i}")),
                        3 => WorkloadAction::Whiteboard(format!("stroke-{i}")),
                        _ => WorkloadAction::Annotation(format!("note-{i}")),
                    };
                    (client, action)
                }
            };
            events.push(WorkloadEvent {
                at,
                client: client.min(clients - 1),
                action,
            });
        }
        events.sort_by_key(|e| e.at);
        Workload { kind, events }
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of floor requests in the trace.
    pub fn floor_requests(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.action, WorkloadAction::RequestFloor))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let a = Workload::generate(WorkloadKind::Random, 5, Duration::from_secs(30), 2.0, 9);
        let b = Workload::generate(WorkloadKind::Random, 5, Duration::from_secs(30), 2.0, 9);
        let c = Workload::generate(WorkloadKind::Random, 5, Duration::from_secs(30), 2.0, 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 60);
        assert!(!a.is_empty());
    }

    #[test]
    fn events_are_time_ordered_and_clients_in_range() {
        for kind in [
            WorkloadKind::Lecture,
            WorkloadKind::QuestionAnswer,
            WorkloadKind::Discussion,
            WorkloadKind::Random,
        ] {
            let w = Workload::generate(kind, 4, Duration::from_secs(60), 3.0, 1);
            for pair in w.events.windows(2) {
                assert!(pair[0].at <= pair[1].at);
            }
            assert!(w.events.iter().all(|e| e.client < 4));
            assert!(w.events.iter().all(|e| e.at <= Duration::from_secs(61)));
        }
    }

    #[test]
    fn lecture_workload_is_teacher_heavy() {
        let w = Workload::generate(WorkloadKind::Lecture, 6, Duration::from_secs(120), 4.0, 3);
        let teacher_events = w.events.iter().filter(|e| e.client == 0).count();
        assert!(
            teacher_events * 2 > w.len(),
            "teacher should produce the majority of lecture events"
        );
    }

    #[test]
    fn question_answer_contains_floor_requests() {
        let w = Workload::generate(
            WorkloadKind::QuestionAnswer,
            4,
            Duration::from_secs(60),
            5.0,
            7,
        );
        assert!(w.floor_requests() > 0);
        assert!(w.floor_requests() < w.len());
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn zero_clients_panics() {
        let _ = Workload::generate(WorkloadKind::Random, 0, Duration::from_secs(1), 1.0, 0);
    }
}
