//! Property-based tests over the DMPS session layer.

use std::time::Duration;

use dmps::workload::WorkloadAction;
use dmps::{Session, SessionConfig, Workload, WorkloadKind};
use dmps_floor::{FcmMode, Role};
use dmps_simnet::{Link, LocalClock};
use proptest::prelude::*;

fn build_session(seed: u64, mode: FcmMode, students: usize) -> (Session, Vec<usize>) {
    let mut session = Session::new(SessionConfig::new(seed, mode));
    let teacher = session.add_client("teacher", Role::Chair, Link::lan(), LocalClock::perfect());
    let mut indices = vec![teacher];
    for i in 0..students {
        let link = if i % 2 == 0 { Link::dsl() } else { Link::wan() };
        let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
        indices.push(session.add_client(
            format!("student-{i}"),
            Role::Participant,
            link,
            LocalClock::new(sign * 200.0, sign as i64 * 10_000_000),
        ));
    }
    session.pump();
    (session, indices)
}

fn apply(session: &mut Session, idx: usize, action: &WorkloadAction) {
    match action {
        WorkloadAction::RequestFloor => session.request_floor(idx),
        WorkloadAction::ReleaseFloor => session.release_floor(idx),
        WorkloadAction::Chat(t) => session.send_chat(idx, t.clone()),
        WorkloadAction::Whiteboard(s) => session.send_whiteboard(idx, s.clone()),
        WorkloadAction::Annotation(t) => session.send_annotation(idx, t.clone()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Replaying the same workload on the same seed produces identical server
    /// state (the determinism every experiment relies on).
    #[test]
    fn sessions_are_deterministic(seed in 0u64..200, students in 1usize..5) {
        let workload = Workload::generate(WorkloadKind::Random, students + 1, Duration::from_secs(15), 2.0, seed);
        let run = || {
            let (mut session, indices) = build_session(seed, FcmMode::FreeAccess, students);
            for event in &workload.events {
                apply(&mut session, indices[event.client], &event.action);
            }
            session.pump();
            (
                session.server().chat_log().to_vec(),
                session.server().whiteboard_log().to_vec(),
                session.server().annotation_log().to_vec(),
                session.server().arbiter().stats(),
                session.network().delivered_count(),
            )
        };
        prop_assert_eq!(run(), run());
    }

    /// Under Free Access every content message a joined client sends is
    /// eventually logged by the server or recorded as a network drop — no
    /// message silently disappears.
    #[test]
    fn free_access_conserves_content(seed in 0u64..200, lines in 1usize..30) {
        let (mut session, indices) = build_session(seed, FcmMode::FreeAccess, 3);
        for i in 0..lines {
            let idx = indices[i % indices.len()];
            session.send_chat(idx, format!("line-{i}"));
        }
        session.pump();
        let logged = session.server().chat_log().len();
        let dropped = session
            .network()
            .dropped()
            .iter()
            .filter(|d| !d.payload.is_control())
            .count();
        prop_assert_eq!(logged + dropped, lines);
        prop_assert_eq!(session.server().rejected_deliveries(), 0);
    }

    /// Under Equal Control, at most one client believes it may speak once the
    /// network is quiescent, and the believer matches the server's token
    /// holder.
    #[test]
    fn equal_control_single_speaker_invariant(
        seed in 0u64..200,
        ops in proptest::collection::vec((0usize..5, proptest::bool::ANY), 1..40),
    ) {
        let (mut session, indices) = build_session(seed, FcmMode::EqualControl, 4);
        for (raw, release) in ops {
            let idx = indices[raw % indices.len()];
            if release {
                session.release_floor(idx);
            } else {
                session.request_floor(idx);
            }
            session.pump();
            let speakers: Vec<usize> = (0..session.client_count())
                .filter(|&i| session.client(i).may_speak())
                .collect();
            prop_assert!(speakers.len() <= 1, "multiple clients believe they hold the floor");
            if let Some(&holder_idx) = speakers.first() {
                let holder_member = session.member_of(holder_idx).unwrap();
                let token_holder = session
                    .server()
                    .arbiter()
                    .token(session.server().group())
                    .unwrap()
                    .holder();
                prop_assert_eq!(Some(holder_member), token_holder);
            }
        }
    }

    /// Connection lights: a client whose link stays up is green after any
    /// simulated quiet period shorter than the liveness timeout multiple, and
    /// a client whose link is cut is red after the timeout passes.
    #[test]
    fn connection_lights_track_link_state(seed in 0u64..100, quiet_secs in 6u64..30) {
        let (mut session, indices) = build_session(seed, FcmMode::FreeAccess, 2);
        let victim = indices[1];
        let victim_member = session.member_of(victim).unwrap();
        session.set_client_link_up(victim, false);
        let until = session.now() + Duration::from_secs(quiet_secs);
        session.run_until(until);
        let lights = session.server().connection_lights(session.now());
        for (member, green) in lights {
            if member == victim_member {
                prop_assert!(!green, "cut client must be red after {quiet_secs}s");
            } else {
                prop_assert!(green, "healthy client must stay green");
            }
        }
    }

    /// Floor-control arbitration statistics only ever grow, and granted plus
    /// queued plus denied plus aborted equals the number of floor requests
    /// the server actually received.
    #[test]
    fn arbiter_stats_are_consistent(seed in 0u64..100, requests in 1usize..25) {
        let (mut session, indices) = build_session(seed, FcmMode::EqualControl, 3);
        // A client whose join handshake was lost on its lossy link never
        // joined and silently skips floor requests, so count actual sends.
        let mut sent = 0u64;
        for i in 0..requests {
            let idx = indices[i % indices.len()];
            if session.member_of(idx).is_ok() {
                session.request_floor(idx);
                sent += 1;
            }
        }
        session.pump();
        let stats = session.server().arbiter().stats();
        let total = stats.granted + stats.queued + stats.denied + stats.aborted;
        // Some requests may be lost on lossy links, so the total is at most
        // the number sent, and every delivered request is accounted for.
        prop_assert!(total <= sent);
        let dropped_floor = session
            .network()
            .dropped()
            .iter()
            .filter(|d| matches!(d.payload, dmps::DmpsMessage::Floor(_)))
            .count() as u64;
        prop_assert_eq!(total + dropped_floor, sent);
    }
}
